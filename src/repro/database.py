"""The public engine facade.

:class:`Database` wires together the catalog, storage, SQL front end,
optimizer, executor, audit manager, and trigger manager. Typical use::

    db = Database()
    db.execute("CREATE TABLE patients (patientid INT PRIMARY KEY, "
               "name VARCHAR, age INT, zip VARCHAR)")
    db.execute("INSERT INTO patients VALUES (1, 'Alice', 40, '98101')")
    db.execute(
        "CREATE AUDIT EXPRESSION audit_alice AS "
        "SELECT * FROM patients WHERE name = 'Alice' "
        "FOR SENSITIVE TABLE patients, PARTITION BY patientid"
    )
    db.execute("CREATE TRIGGER log_alice ON ACCESS TO audit_alice AS "
               "INSERT INTO log SELECT now(), user_id(), sql_text(), "
               "patientid FROM accessed")
    result = db.execute("SELECT * FROM patients WHERE age > 30")
    # result.accessed == {'audit_alice': {1}}  and the log has a row

SELECT queries are instrumented with audit operators between logical and
physical optimization (§IV-B); after execution (even an aborted one), the
SELECT triggers of every audit expression with recorded accesses fire as
their own system transaction (§II-C).
"""

from __future__ import annotations

import datetime
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.audit.manager import AuditManager
from repro.concurrency import (
    DEFAULT_QUEUE_CAPACITY,
    DEFAULT_RETRY_LIMIT,
    EMPTY_STATS,
    ReadWriteLock,
    TriggerBatch,
    TriggerPipeline,
)
from repro.audit.placement import HEURISTIC_HCN
from repro.catalog.catalog import Catalog, IndexDefinition
from repro.catalog.schema import Column, ForeignKey, TableSchema
from repro.datatypes import type_from_name
from repro.errors import (
    AuditUnavailableError,
    CatalogError,
    ConstraintError,
    DurabilityError,
    ExecutionError,
    PipelineClosedError,
    ReadOnlyReplicaError,
    ReproError,
    UnsupportedSqlError,
)
from repro.durability.journal import encode_id
from repro.testing.faults import NO_FAULTS, FaultInjector
from repro.exec.context import DEFAULT_BATCH_SIZE, ExecutionContext, Session
from repro.exec.operators.base import PhysicalOperator, collect_rows
from repro.expr.evaluator import evaluate
from repro.expr.nodes import Expression
from repro.optimizer.optimizer import Optimizer
from repro.plan.builder import PlanBuilder, Scope
from repro.plancache import CachedPlan, PlanCache
from repro.plan.logical import LogicalPlan, PlanColumn
from repro.sql import ast
from repro.sql.parser import parse_statement, parse_statements_with_text
from repro.storage.blocks import DEFAULT_BLOCK_CAPACITY
from repro.storage.table import Table
from repro.triggers.definitions import DmlTrigger, SelectTrigger
from repro.triggers.manager import TriggerManager


@dataclass
class QueryResult:
    """Materialized result of a SELECT (or the row count of a DML)."""

    columns: tuple[str, ...] = ()
    rows: list[tuple] = field(default_factory=list)
    #: audit expression name -> accessed partition-by IDs (ACCESSED state)
    accessed: dict[str, frozenset] = field(default_factory=dict)
    rowcount: int = 0

    def rows_list(self) -> list[tuple]:
        return self.rows

    def scalar(self) -> object:
        """First column of the first row (None for empty results)."""
        if not self.rows:
            return None
        return self.rows[0][0]

    def column(self, index: int = 0) -> list[object]:
        return [row[index] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)


class Database:
    """An in-memory relational database with SELECT-trigger auditing."""

    def __init__(
        self,
        user_id: str = "admin",
        audit_heuristic: str = HEURISTIC_HCN,
        clock: Callable[[], datetime.datetime] | None = None,
        journal_path: str | None = None,
        journal_fsync: str = "batch",
        audit_policy: str = "fail_open",
        fault_injector: FaultInjector | None = None,
        read_only: bool = False,
    ) -> None:
        self.catalog = Catalog()
        self.session = Session(user_id=user_id, clock=clock)
        self._builder = PlanBuilder(self.catalog)
        self.audit_manager = AuditManager(
            self.catalog, self._materialize_ids, heuristic=audit_heuristic
        )
        self._optimizer = Optimizer(
            self.catalog, self.audit_manager.resolve_view
        )
        self.trigger_manager = TriggerManager(self)
        #: set False to execute queries without audit instrumentation
        self.audit_enabled = True
        #: execution mode: 'batch' (tuple batches, default), 'row' (the
        #: classic Volcano loop), or 'columnar' (ColumnBatch exchange
        #: with selection vectors and one-pass audit probes); all three
        #: produce identical results, ACCESSED sets, and audit probe
        #: counts
        self.exec_mode = "batch"
        #: rows per batch in batch mode
        self.batch_size = DEFAULT_BATCH_SIZE
        #: rows per storage block in tables created after the change
        #: (each block keeps zone maps + a sensitive-ID sketch)
        self.block_size = DEFAULT_BLOCK_CAPACITY
        #: consult block zone maps / ID sketches to skip blocks during
        #: scans and audit probes; skips are conservative, so results,
        #: ACCESSED sets, and audit verdicts are knob-independent
        self.skipping = True
        #: offline-auditor strategy: 'auto' (one lineage-capturing run
        #: when the plan shape is certifiable, deletion tests otherwise),
        #: 'lineage' (same, kept as an explicit request), or 'deletion'
        #: (always the literal Definition-2.3 re-runs)
        self.offline_audit_mode = "auto"
        #: thread-pool width for deletion-test fallback batches (1 =
        #: serial; the pool shares one compiled plan across workers)
        self.offline_audit_workers = 1
        self._offline_auditor = None
        #: compiled-plan cache keyed on SQL text + engine version tags
        self.plan_cache = PlanCache()
        #: messages emitted by SEND EMAIL / NOTIFY trigger actions
        self.notifications: list[str] = []
        self._trigger_local = threading.local()
        # transaction state: the active undo log (explicit transaction or
        # per-statement autocommit scope) and whether BEGIN is open.
        # Transactions are *session*-scoped: statements from any thread
        # join the open transaction (all undo manipulation happens under
        # the engine write lock, so the structures stay consistent).
        self._active_undo = None
        self._in_explicit_transaction = False
        # concurrency: SELECTs share the read side, mutating statements
        # and trigger actions take the write side (DESIGN.md §7)
        self._engine_lock = ReadWriteLock()
        #: SELECT-trigger firing: 'sync' runs AFTER-timing actions on the
        #: caller's thread before execute() returns (the seed semantics);
        #: 'async' defers them to the background trigger pipeline.
        #: BEFORE-timing triggers always run synchronously — they gate
        #: the query's results (DENY).
        self._trigger_mode = "sync"
        #: bound of the async trigger queue (backpressure when full);
        #: read when the pipeline is first created
        self.trigger_queue_capacity = DEFAULT_QUEUE_CAPACITY
        self._trigger_pipeline: TriggerPipeline | None = None
        self._pipeline_init_lock = threading.Lock()
        # close() serialization: signal handlers and server shutdown may
        # race; the lock keeps the drain -> journal-close order intact
        # under concurrent callers
        self._close_lock = threading.Lock()
        #: retries before an async trigger batch is dead-lettered; read
        #: when the pipeline is first created
        self.trigger_retry_limit = DEFAULT_RETRY_LIMIT
        #: first retry delay (doubles per attempt)
        self.trigger_backoff_base_s = 0.01
        # durability (DESIGN.md §8): the write-ahead audit journal, its
        # dead-letter companion, and the degraded-mode policy
        self.faults = fault_injector or NO_FAULTS
        self._journal = None
        self._dead_letter_journal = None
        self._audit_policy = "fail_open"
        self.audit_policy = audit_policy  # validates
        #: fail-open degradation events: audit work the engine could not
        #: make durable (site, error, sql, user)
        self.audit_gaps: list[dict] = []
        # journal sequence numbers whose firings completed in this
        # process — the dedup set for at-least-once recovery replay
        self._applied_seqs: set[int] = set()
        self._seq_lock = threading.Lock()
        # audit_trail_health() baseline set by acknowledge_audit_failures
        self._acknowledged_failures: dict[str, int] = {}
        # replication (DESIGN.md §13): a read-only engine refuses
        # depth-0 mutations (replicas mutate only through journal
        # replay); ``replicate_statements`` makes the journal a full
        # statement WAL by also appending 'statement' records for
        # depth-0 DML/DDL; ``intent_forwarder`` reroutes a replica's
        # SELECT-trigger firings to its primary
        self.read_only = read_only
        #: journal a 'statement' record for every depth-0 DML/DDL so
        #: replicas (and full-WAL recovery) can replay data, not just
        #: firings; off by default — it changes journal sequence layout
        self.replicate_statements = False
        #: callable(accessed, sql_text, user_id) a replica installs to
        #: ship firing intents to its primary instead of firing locally
        self.intent_forwarder: Callable[[dict, str, str], None] | None = None
        self._replication_local = threading.local()
        # DML statement records buffered during an explicit transaction;
        # flushed to the journal at COMMIT, dropped at ROLLBACK
        self._pending_statement_records: list[dict] = []
        if journal_path is not None:
            self.attach_journal(journal_path, fsync=journal_fsync)

    @property
    def join_strategy(self) -> str:
        """Join strategy knob: ``'auto'`` (cost-based), ``'hash'``, or
        ``'index-nl'`` (force apply-style index nested-loop joins)."""
        return self._optimizer.join_strategy

    @join_strategy.setter
    def join_strategy(self, strategy: str) -> None:
        self._optimizer.join_strategy = strategy

    @property
    def exec_mode(self) -> str:
        """Execution mode knob: ``'row'``, ``'batch'``, or ``'columnar'``."""
        return self._exec_mode

    @exec_mode.setter
    def exec_mode(self, mode: str) -> None:
        if mode not in ("row", "batch", "columnar"):
            raise ValueError(
                "exec_mode must be 'row', 'batch', or 'columnar', "
                f"got {mode!r}"
            )
        self._exec_mode = mode
        # the cost model discounts fused audit probes under the columnar
        # sweep, so 'cost' placement can shift between modes
        self.audit_manager.columnar_mode = mode == "columnar"

    # ------------------------------------------------------------------
    # concurrency: trigger pipeline and serving knobs

    @property
    def trigger_mode(self) -> str:
        """SELECT-trigger firing mode: ``'sync'`` or ``'async'``."""
        return self._trigger_mode

    @trigger_mode.setter
    def trigger_mode(self, mode: str) -> None:
        if mode not in ("sync", "async"):
            raise ValueError(
                f"trigger_mode must be 'sync' or 'async', got {mode!r}"
            )
        if mode == "sync":
            # pending deferred batches must land before sync firings can
            # interleave behind them, or the audit log loses its order
            self.drain_triggers()
        self._trigger_mode = mode

    @property
    def _trigger_depth(self) -> int:
        """Per-thread nesting depth of trigger-body statement execution."""
        return getattr(self._trigger_local, "depth", 0)

    def _pipeline(self) -> TriggerPipeline:
        pipeline = self._trigger_pipeline
        if pipeline is None:
            with self._pipeline_init_lock:
                pipeline = self._trigger_pipeline
                if pipeline is None:
                    pipeline = TriggerPipeline(
                        self._fire_trigger_batch,
                        capacity=self.trigger_queue_capacity,
                        retry_limit=self.trigger_retry_limit,
                        backoff_base_s=self.trigger_backoff_base_s,
                        dead_letter=self._spill_dead_letter,
                        faults=self.faults,
                    )
                    self._trigger_pipeline = pipeline
        return pipeline

    def drain_triggers(self) -> dict[str, int]:
        """Block until every deferred trigger batch has fired.

        Flush point for tests, shutdown, and audit-log readers in async
        mode; a no-op returning zeroed stats when nothing was deferred.
        """
        pipeline = self._trigger_pipeline
        if pipeline is None:
            return dict(EMPTY_STATS)
        pipeline.drain()
        return pipeline.stats()

    @property
    def trigger_errors(self) -> list:
        """(batch, exception) records of failed async trigger firings."""
        pipeline = self._trigger_pipeline
        if pipeline is None:
            return []
        return list(pipeline.errors)

    def close(self) -> None:
        """Shut the engine's background machinery down, in order.

        Ordering is the durability contract: the trigger pipeline is
        drained and stopped *first* (its firings append commit records),
        then the audit journal and its dead-letter companion are closed.
        Safe from a signal-handler path: idempotent, and concurrent
        callers serialize on an internal lock — the second caller blocks
        until the first close completes, then returns.
        """
        with self._close_lock:
            pipeline = self._trigger_pipeline
            if pipeline is not None:
                pipeline.close()
                self._trigger_pipeline = None
            if self._journal is not None:
                self._journal.close()
            if self._dead_letter_journal is not None:
                self._dead_letter_journal.close()

    def serve(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        **kwargs,
    ):
        """Start a network server over this database (not yet accepting
        until ``.start()`` — or use it as a context manager).

        Returns a :class:`repro.server.Server`; see that class for the
        admission/timeout/authentication knobs. The server's graceful
        shutdown closes this database (pipeline drain, then journal
        close) unless ``close_database=False`` is passed.
        """
        from repro.server import Server

        return Server(self, host=host, port=port, **kwargs)

    def serve_async(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        **kwargs,
    ):
        """Like :meth:`serve`, but returns the asyncio front end.

        :class:`repro.server.AsyncServer` speaks the same wire protocol
        from one event loop: thousands of idle connections cost a file
        descriptor and a coroutine each, statements are pipelined per
        connection, and execution bridges onto this (threaded) engine
        through a bounded worker pool.
        """
        from repro.server import AsyncServer

        return AsyncServer(self, host=host, port=port, **kwargs)

    # ------------------------------------------------------------------
    # durability: the audit journal, policies, and recovery

    @property
    def audit_policy(self) -> str:
        """Degraded-mode policy when the audit trail cannot be made
        durable: ``'fail_closed'`` (queries raise
        :class:`AuditUnavailableError`) or ``'fail_open'`` (serve the
        results, record the gap in :attr:`audit_gaps`)."""
        return self._audit_policy

    @audit_policy.setter
    def audit_policy(self, policy: str) -> None:
        if policy not in ("fail_open", "fail_closed"):
            raise ValueError(
                "audit_policy must be 'fail_open' or 'fail_closed', "
                f"got {policy!r}"
            )
        self._audit_policy = policy

    @property
    def journal(self):
        """The attached :class:`~repro.durability.AuditJournal` (or None)."""
        return self._journal

    @property
    def dead_letter_journal(self):
        """The attached :class:`~repro.durability.DeadLetterJournal`
        (or None)."""
        return self._dead_letter_journal

    def attach_journal(self, path, fsync: str = "batch"):
        """Attach a write-ahead audit journal at directory ``path``.

        From this point every audited query appends an *intent* record
        before its results are returned and a *commit* record when its
        AFTER-timing trigger actions complete; permanently-failed async
        batches spill to ``<path>/dead-letter.jsonl``. Appending to an
        existing journal continues its sequence numbers.
        """
        from repro.durability import AuditJournal, DeadLetterJournal
        import pathlib

        if self._journal is not None:
            raise DurabilityError("an audit journal is already attached")
        self._journal = AuditJournal(path, fsync=fsync, faults=self.faults)
        self._dead_letter_journal = DeadLetterJournal(
            pathlib.Path(path) / "dead-letter.jsonl", faults=self.faults
        )
        return self._journal

    def recover(
        self,
        journal_path=None,
        strict: bool = True,
        apply_statements: bool = False,
    ):
        """Rebuild the audit trail from a journal after a crash.

        Scans the journal's segments (verifying every CRC; a torn final
        line is tolerated, interior corruption raises
        :class:`~repro.errors.JournalCorruptionError` unless
        ``strict=False``), then re-fires each intent's AFTER-timing
        trigger actions under the originating query's
        ``sql_text``/``user_id``. Delivery is at-least-once, deduplicated
        by journal sequence number — see
        :mod:`repro.durability.recovery`. The database must already hold
        the crashed instance's schema, audit expressions, and triggers.

        ``journal_path`` defaults to the attached journal's directory, so
        a database constructed with ``journal_path=...`` over a surviving
        journal recovers in place and keeps journaling into it. With
        ``apply_statements=True``, 'statement' records (written under
        ``replicate_statements``) are replayed too — a journal written
        that way rebuilds schema *and* data into a fresh database.
        Returns a :class:`~repro.durability.RecoveryReport`.
        """
        from repro.durability.recovery import recover_database

        path = journal_path
        if path is None:
            if self._journal is None:
                raise DurabilityError(
                    "no journal attached and no journal_path given"
                )
            path = self._journal.path
        return recover_database(
            self, path, strict=strict, apply_statements=apply_statements
        )

    def is_seq_applied(self, seq: int) -> bool:
        with self._seq_lock:
            return seq in self._applied_seqs

    def mark_seq_applied(self, seq: int, recovered: bool = False) -> None:
        """Record that intent ``seq``'s firing completed in this process.

        During recovery (``recovered=True``) a commit record is also
        journaled when a journal is attached, so post-crash verification
        tools see the replay.
        """
        with self._seq_lock:
            self._applied_seqs.add(seq)
        if recovered and self._journal is not None:
            try:
                self._journal.append(
                    "commit", {"intent": seq, "recovered": True}
                )
            except (DurabilityError, OSError) as error:
                self._note_gap("journal-commit", error)

    def audit_trail_health(self) -> dict[str, int]:
        """Unacknowledged audit-trail damage counters.

        Non-zero values mean the in-memory audit log may be missing
        disclosures; :class:`~repro.audit.logging.AuditLog` readers raise
        (``fail_closed``) or warn (``fail_open``) on them.
        """
        pipeline = self._trigger_pipeline
        stats = pipeline.stats() if pipeline is not None else EMPTY_STATS
        current = {
            "failed_batches": stats["failed"],
            "lost_batches": stats["lost"],
            "retried_batches": stats["retried"],
            "dead_letters": stats["dead_letter_count"],
            "audit_gaps": len(self.audit_gaps),
        }
        return {
            key: max(0, value - self._acknowledged_failures.get(key, 0))
            for key, value in current.items()
        }

    def acknowledge_audit_failures(self) -> dict[str, int]:
        """Mark current trail damage as handled by the admin.

        Returns the counters that were acknowledged; subsequent
        :meth:`audit_trail_health` calls report only *new* damage.
        """
        acknowledged = self.audit_trail_health()
        for key, value in acknowledged.items():
            self._acknowledged_failures[key] = (
                self._acknowledged_failures.get(key, 0) + value
            )
        return acknowledged

    # -- internal durability plumbing ----------------------------------

    def _journal_intent(self, accessed: dict) -> int | None:
        """Append the intent record for one query's ACCESSED state.

        Returns the sequence number, or None when no journal is attached
        or the append failed under ``fail_open`` (the gap is recorded);
        raises :class:`AuditUnavailableError` under ``fail_closed``.
        """
        journal = self._journal
        if journal is None:
            return None
        try:
            # encode_id raises DurabilityError on IDs that cannot be
            # journaled losslessly, feeding the same policy as a failed
            # disk write — a lossy stand-in would replay wrong IDs
            payload = {
                "accessed": {
                    name: [
                        encode_id(value)
                        for value in sorted(ids, key=repr)
                    ]
                    for name, ids in accessed.items()
                },
                "sql": self.session.sql_text,
                "user": self.session.user_id,
            }
            return journal.append("intent", payload)
        except (DurabilityError, OSError) as error:
            self._record_audit_gap("journal-intent", error)
            return None

    def _journal_commit(self, seq: int | None) -> None:
        """Append the commit record matching intent ``seq`` (if any)."""
        if seq is None:
            return
        self.mark_seq_applied(seq)
        journal = self._journal
        if journal is None:
            return
        try:
            journal.append("commit", {"intent": seq})
        except (DurabilityError, OSError) as error:
            self._record_audit_gap("journal-commit", error)

    def _record_audit_gap(self, site: str, error: BaseException) -> None:
        """Apply the degraded-mode policy to one durability failure."""
        if self._audit_policy == "fail_closed":
            raise AuditUnavailableError(
                f"audit trail unavailable at {site}: {error}"
            ) from error
        self._note_gap(site, error)

    def _note_gap(self, site: str, error: BaseException) -> None:
        self.audit_gaps.append({
            "site": site,
            "error": repr(error),
            "sql": self.session.sql_text,
            "user": self.session.user_id,
        })

    def _spill_dead_letter(self, batch, error, reason, attempts) -> None:
        """Pipeline dead-letter sink: durable when a journal is attached."""
        journal = self._dead_letter_journal
        if journal is None:
            return
        try:
            journal.spill(batch, error, reason=reason, attempts=attempts)
        except (DurabilityError, OSError) as spill_error:
            # the pipeline swallows sink exceptions (a worker must not
            # die over bookkeeping), so a failed spill would otherwise
            # vanish — record it as trail damage
            self._note_gap("dead-letter-spill", spill_error)

    # ------------------------------------------------------------------
    # replication (DESIGN.md §13)

    @property
    def replaying(self) -> bool:
        """True while this thread is applying replicated journal records."""
        return getattr(self._replication_local, "applying", False)

    @contextmanager
    def replication_apply(self):
        """Mark this thread as applying the primary's journal stream.

        Inside the context, depth-0 statements bypass the read-only
        check (replay is the one legitimate mutation path on a replica)
        and suppress their own trigger dispatch — the stream carries the
        primary's intent records, which are replayed separately, so
        re-firing or re-forwarding here would double the audit trail.
        """
        previous = getattr(self._replication_local, "applying", False)
        self._replication_local.applying = True
        try:
            yield self
        finally:
            self._replication_local.applying = previous

    def apply_forwarded_intent(
        self, accessed: dict, sql_text: str, user_id: str
    ) -> int | None:
        """Journal and fire a replica-computed ACCESSED set (primary side).

        The replica ran the SELECT and computed what it disclosed; the
        primary owns the audit trail, so the intent is journaled and the
        AFTER-timing actions fire *here*, under the originating query's
        ``sql_text``/``user_id`` — attribution is identical to a
        single-node run. Returns the intent's journal sequence number.

        Replicas forward unconditionally (their trigger catalog may lag
        this primary's DDL), so the no-AFTER-trigger check lives here,
        against the authoritative catalog: with nothing armed, a
        single-node run would neither journal nor fire, and neither
        does the forwarded intent.
        """
        if not self.trigger_manager.has_select_triggers("after"):
            return None
        with self.session.override(sql_text, user_id):
            seq = self._journal_intent(accessed)
            self._fire_accessed(accessed, timing="after")
            self._journal_commit(seq)
        return seq

    def replication_token(self) -> int | None:
        """Read-your-writes token: the journal position after your write.

        A replica has caught up to this write once it has applied every
        record below the token (``ReplicaDatabase.wait_for(token)``).
        None when no journal is attached (nothing to wait for).
        """
        journal = self._journal
        if journal is None:
            return None
        return journal.next_seq

    def _journal_statement(
        self,
        statement: ast.Statement,
        source_sql: str,
        parameters: dict[str, object] | None,
    ) -> None:
        """Append (or buffer) one statement-replication record.

        Runs with the engine write lock held, right after the statement
        succeeded. DML inside an explicit transaction is buffered and
        flushed at COMMIT (dropped at ROLLBACK) so replicas never apply
        rolled-back changes; DDL is journaled immediately — it is not
        undo-logged, so it survives ROLLBACK and replicas must apply it
        regardless of the enclosing transaction's fate.
        """
        if isinstance(statement, ast.TransactionStatement):
            if statement.action == "commit":
                pending = self._pending_statement_records
                self._pending_statement_records = []
                for payload in pending:
                    self._append_statement_record(payload)
            elif statement.action == "rollback":
                self._pending_statement_records = []
            return
        if isinstance(
            statement,
            (ast.IfStatement, ast.NotifyStatement, ast.DenyStatement),
        ):
            return  # trigger-body constructs; never top-level state
        payload: dict = {
            "sql": source_sql,
            "user": self.session.user_id,
        }
        if parameters:
            try:
                payload["params"] = {
                    name: encode_id(value)
                    for name, value in parameters.items()
                }
            except DurabilityError as error:
                self._record_audit_gap("journal-statement", error)
                return
        is_dml = isinstance(
            statement,
            (ast.InsertStatement, ast.UpdateStatement, ast.DeleteStatement),
        )
        if is_dml and self._in_explicit_transaction:
            self._pending_statement_records.append(payload)
            return
        self._append_statement_record(payload)

    def _append_statement_record(self, payload: dict) -> None:
        try:
            self._journal.append("statement", payload)
        except (DurabilityError, OSError) as error:
            self._record_audit_gap("journal-statement", error)

    # ------------------------------------------------------------------
    # public execution API

    def execute(
        self,
        sql: str,
        parameters: dict[str, object] | None = None,
    ) -> QueryResult:
        """Parse and execute one SQL statement (plan-cache aware)."""
        text = sql.strip()
        if self._trigger_depth == 0:
            self.session.sql_text = text
        entry = self.plan_cache.lookup(text, self._plan_cache_tags())
        if entry is not None:
            # warm hit: skip lexing, parsing, binding, rewriting, audit
            # placement, and physical planning entirely
            return self._run_select(
                entry.column_names, entry.physical, parameters, None
            )
        statement = parse_statement(sql)
        return self._execute_statement(
            statement, parameters, sql_key=text, source_sql=text
        )

    def execute_script(self, sql: str) -> list[QueryResult]:
        """Execute a semicolon-separated script; returns per-statement results."""
        results = []
        for statement, text in parse_statements_with_text(sql):
            results.append(
                self._execute_statement(statement, None, source_sql=text)
            )
        return results

    def explain(self, sql: str, parameters: dict[str, object] | None = None
                ) -> str:
        """Logical (instrumented) and physical plan of a SELECT, as text."""
        from repro.plan.logical import format_plan
        from repro.exec.operators.base import format_physical

        statement = parse_statement(sql)
        if not isinstance(statement, ast.SelectStatement):
            raise UnsupportedSqlError("EXPLAIN supports only SELECT")
        with self._engine_lock.read():
            logical = self._optimizer.optimize_logical(
                self._builder.build_select(statement),
                instrument=self._instrument_hook(),
            )
            physical = self._optimizer.compile(logical)
        return (
            "-- logical --\n"
            + format_plan(logical)
            + "\n-- physical --\n"
            + format_physical(physical)
        )

    # ------------------------------------------------------------------
    # engine services used by the audit / trigger subsystems

    def make_context(
        self,
        parameters: dict[str, object] | None = None,
        base_outer_rows: tuple[tuple, ...] = (),
        tombstones: dict[str, set] | None = None,
    ) -> ExecutionContext:
        context = ExecutionContext(
            session=self.session,
            parameters=parameters,
            compile_subquery=self._optimizer.compile,
            base_outer_rows=base_outer_rows,
            batch_size=self.batch_size,
        )
        if tombstones:
            context.tombstones = tombstones
        context.data_skipping = self.skipping
        return context

    def plan_query(
        self, sql: str, parameters: dict[str, object] | None = None
    ) -> LogicalPlan:
        """Rewritten (uninstrumented) logical plan of a SELECT."""
        statement = parse_statement(sql)
        if not isinstance(statement, ast.SelectStatement):
            raise UnsupportedSqlError("plan_query supports only SELECT")
        with self._engine_lock.read():
            return self._optimizer.optimize_logical(
                self._builder.build_select(statement)
            )

    def offline_audit(
        self,
        sql: str,
        audit_expression: str,
        parameters: dict[str, object] | None = None,
    ) -> set:
        """Exact accessed-ID set of ``audit_expression`` for one query.

        Runs the offline auditor (Definition 2.3 ground truth) under the
        ``offline_audit_mode`` / ``offline_audit_workers`` knobs, reusing
        one auditor instance so compiled audit plans persist across
        calls. The instance is exposed as :attr:`offline_auditor` for
        telemetry (``last_mode``, ``last_deletion_runs``, ...).
        """
        return self.offline_auditor.audit(sql, audit_expression, parameters)

    @property
    def offline_auditor(self):
        """The database's shared :class:`~repro.audit.offline.OfflineAuditor`."""
        if self._offline_auditor is None:
            from repro.audit.offline import OfflineAuditor

            self._offline_auditor = OfflineAuditor(self)
        return self._offline_auditor

    def run_physical(
        self,
        physical: PhysicalOperator,
        parameters: dict[str, object] | None = None,
        tombstones: dict[str, set] | None = None,
    ) -> QueryResult:
        """Run a compiled plan without trigger side effects (auditor use)."""
        context = self.make_context(parameters, tombstones=tombstones)
        with self._engine_lock.read():
            rows = collect_rows(physical, context, mode=self.exec_mode)
        return QueryResult(
            rows=rows,
            accessed={
                name: frozenset(ids)
                for name, ids in context.accessed.items()
            },
            rowcount=len(rows),
        )

    def execute_trigger_statement(
        self,
        statement: ast.Statement,
        scope_columns: tuple[PlanColumn, ...] | None = None,
        pseudo_row: tuple | None = None,
    ) -> QueryResult:
        """Execute one trigger-body statement (NEW/OLD row optional)."""
        self._trigger_local.depth = self._trigger_depth + 1
        try:
            return self._execute_statement(
                statement,
                None,
                scope_columns=scope_columns,
                pseudo_row=pseudo_row,
            )
        finally:
            self._trigger_local.depth = self._trigger_depth - 1

    # ------------------------------------------------------------------
    # statement dispatch

    def _execute_statement(
        self,
        statement: ast.Statement,
        parameters: dict[str, object] | None,
        scope_columns: tuple[PlanColumn, ...] | None = None,
        pseudo_row: tuple | None = None,
        sql_key: str | None = None,
        source_sql: str | None = None,
    ) -> QueryResult:
        if isinstance(statement, ast.SelectStatement):
            # SELECTs run under the shared (read) side of the engine
            # lock, acquired inside the select path so trigger firing
            # can happen after the lock is released
            return self._execute_select(
                statement, parameters, scope_columns, pseudo_row,
                sql_key=sql_key,
            )
        if (
            self.read_only
            and self._trigger_depth == 0
            and not self.replaying
        ):
            # trigger-body DML (depth > 0) and journal replay still
            # mutate: the replica's audit-log tables are rebuilt through
            # exactly those two paths
            raise ReadOnlyReplicaError(
                f"{type(statement).__name__} refused: this engine is a "
                "read-only replica (writes go to the primary)"
            )
        # every other statement mutates engine state (tables, catalog,
        # audit configuration, transaction scope): exclusive write side.
        # Reentrant: trigger bodies and cascades already hold it.
        with self._engine_lock.write():
            result = self._execute_write_statement(
                statement, parameters, scope_columns, pseudo_row
            )
            if (
                self.replicate_statements
                and self._journal is not None
                and self._trigger_depth == 0
                and source_sql is not None
                and not self.replaying
            ):
                # append while still holding the write lock, so journal
                # order is apply order and replicas replay a serial
                # history equivalent to the primary's
                self._journal_statement(statement, source_sql, parameters)
            return result

    def _execute_write_statement(
        self,
        statement: ast.Statement,
        parameters: dict[str, object] | None,
        scope_columns: tuple[PlanColumn, ...] | None = None,
        pseudo_row: tuple | None = None,
    ) -> QueryResult:
        if isinstance(statement, ast.InsertStatement):
            return self._atomic_dml(
                lambda: self._execute_insert(
                    statement, parameters, scope_columns, pseudo_row
                )
            )
        if isinstance(statement, ast.UpdateStatement):
            return self._atomic_dml(
                lambda: self._execute_update(statement, parameters)
            )
        if isinstance(statement, ast.DeleteStatement):
            return self._atomic_dml(
                lambda: self._execute_delete(statement, parameters)
            )
        if isinstance(statement, ast.TransactionStatement):
            return self._execute_transaction_control(statement)
        if isinstance(statement, ast.CreateTableStatement):
            return self._execute_create_table(statement)
        if isinstance(statement, ast.CreateIndexStatement):
            return self._execute_create_index(statement)
        if isinstance(statement, ast.DropTableStatement):
            self._check_drop_table_dependencies(statement.name)
            self.catalog.drop_table(statement.name)
            return QueryResult()
        if isinstance(statement, ast.AnalyzeStatement):
            return self._execute_analyze(statement)
        if isinstance(statement, ast.CreateAuditExpressionStatement):
            self.audit_manager.create_expression(statement)
            return QueryResult()
        if isinstance(statement, ast.DropAuditExpressionStatement):
            self.audit_manager.drop_expression(statement.name)
            return QueryResult()
        if isinstance(statement, ast.CreateSelectTriggerStatement):
            self.trigger_manager.add_select_trigger(
                SelectTrigger(
                    statement.name.lower(),
                    statement.audit_expression.lower(),
                    statement.body,
                    statement.timing,
                )
            )
            return QueryResult()
        if isinstance(statement, ast.CreateDmlTriggerStatement):
            self.trigger_manager.add_dml_trigger(
                DmlTrigger(
                    statement.name.lower(),
                    statement.table.lower(),
                    statement.event,
                    statement.body,
                )
            )
            return QueryResult()
        if isinstance(statement, ast.DropTriggerStatement):
            self.trigger_manager.drop_trigger(statement.name)
            return QueryResult()
        if isinstance(statement, ast.IfStatement):
            return self._execute_if(
                statement, parameters, scope_columns, pseudo_row
            )
        if isinstance(statement, ast.NotifyStatement):
            return self._execute_notify(
                statement, parameters, scope_columns, pseudo_row
            )
        if isinstance(statement, ast.DenyStatement):
            return self._execute_deny(
                statement, parameters, scope_columns, pseudo_row
            )
        raise UnsupportedSqlError(
            f"cannot execute {type(statement).__name__}"
        )

    # ------------------------------------------------------------------
    # SELECT

    def _instrument_hook(self):
        if not self.audit_enabled:
            return None
        if not self.audit_manager.expressions():
            return None
        return self.audit_manager.instrument

    def _plan_cache_tags(self) -> tuple:
        """Version tags a cached plan must match to stay servable.

        Catalog DDL version and audit configuration version cover CREATE /
        DROP of tables, indexes, triggers, and audit expressions; the
        statistics epoch covers DML that materially moves cardinalities
        (a plan costed against an empty table must not survive a bulk
        load); the knob values cover instrumentation and physical-planning
        choices baked into the compiled tree.
        """
        return (
            self.catalog.version,
            self.catalog.refresh_stats_version(),
            self.audit_manager.config_version,
            self.audit_enabled,
            self.audit_manager.heuristic,
            self.join_strategy,
            self._optimizer.join_reorder,
            # row and batch modes share compiled plans; columnar is
            # tagged apart because costed audit placement may differ
            # under the columnar probe discount
            self.exec_mode == "columnar",
        )

    def _execute_select(
        self,
        statement: ast.SelectStatement,
        parameters: dict[str, object] | None,
        scope_columns: tuple[PlanColumn, ...] | None = None,
        pseudo_row: tuple | None = None,
        sql_key: str | None = None,
    ) -> QueryResult:
        outer_scope = Scope(scope_columns) if scope_columns else None
        # compile under the read side: binding and planning read the
        # catalog, statistics, and audit configuration
        with self._engine_lock.read():
            logical = self._builder.build_select(statement, outer_scope)
            column_names = tuple(column.name for column in logical.columns)
            logical = self._optimizer.optimize_logical(
                logical, instrument=self._instrument_hook()
            )
            physical = self._optimizer.compile(logical)
            # Top-level SELECTs are cacheable; trigger-body selects see
            # NEW/OLD pseudo-rows through their scope and are compiled
            # fresh each time.
            if sql_key is not None and scope_columns is None \
                    and pseudo_row is None:
                self.plan_cache.store(
                    CachedPlan(
                        sql=sql_key,
                        column_names=column_names,
                        logical=logical,
                        physical=physical,
                        tags=self._plan_cache_tags(),
                    )
                )
        return self._run_select(column_names, physical, parameters, pseudo_row)

    def _run_select(
        self,
        column_names: tuple[str, ...],
        physical: PhysicalOperator,
        parameters: dict[str, object] | None,
        pseudo_row: tuple | None,
    ) -> QueryResult:
        base_rows = (pseudo_row,) if pseudo_row is not None else ()
        context = self.make_context(parameters, base_outer_rows=base_rows)
        rows: list[tuple] = []
        try:
            # snapshot execution: N threads share the read side; the
            # lock is released *before* trigger firing, which needs the
            # write side for the actions' audit-log INSERTs
            with self._engine_lock.read():
                if self.exec_mode == "batch":
                    for batch in physical.rows_batched(context):
                        rows.extend(batch)
                elif self.exec_mode == "columnar":
                    for column_batch in physical.rows_columnar(context):
                        rows.extend(column_batch.to_rows())
                else:
                    for row in physical.rows(context):
                        rows.append(row)
        except BaseException:
            # §II: the (AFTER) action executes even if the query aborts,
            # to account for readers that consume a prefix of the result
            self._dispatch_after_triggers(context)
            raise
        # BEFORE-timing triggers gate the results: a DENY action raises
        # AccessDeniedError and the rows never reach the caller — but the
        # AFTER-timing audit actions still record the (attempted) access.
        # BEFORE actions run synchronously in every trigger mode. During
        # journal replay the depth-0 gate is skipped: the primary already
        # adjudicated this statement, and a replayed DENY would wedge the
        # replica's apply loop.
        try:
            if not (self.replaying and self._trigger_depth == 0):
                self._fire_accessed(context.accessed, timing="before")
        finally:
            self._dispatch_after_triggers(context)
        return QueryResult(
            columns=column_names,
            rows=rows,
            accessed={
                name: frozenset(ids)
                for name, ids in context.accessed.items()
            },
            rowcount=len(rows),
        )

    def _dispatch_after_triggers(self, context: ExecutionContext) -> None:
        """Fire or defer the AFTER-timing SELECT triggers of one query.

        With a journal attached, the query's *intent* is journaled here —
        synchronously, before ``execute`` returns its results — so a
        firing lost anywhere downstream (a crash, a dead pipeline worker,
        an exhausted retry budget) is detectable and replayable.
        """
        accessed = context.accessed
        if not accessed:
            return
        if self.replaying and self._trigger_depth == 0:
            # journal replay: the stream carries this statement's own
            # intent record (replayed separately), so journaling,
            # forwarding, or firing here would double the trail. Depth>0
            # cascades still dispatch — they are part of an intent
            # replay already in progress.
            return
        has_after = self.trigger_manager.has_select_triggers("after")
        if self.intent_forwarder is not None and self._trigger_depth == 0:
            # replica path: ACCESSED was computed here, but the firing
            # belongs to the primary — it journals the intent and runs
            # the actions under this query's attribution, and the
            # journal stream loops the result back to every replica.
            # Forwarding is NOT gated on this replica's trigger catalog:
            # between the primary running CREATE TRIGGER and this
            # replica applying that DDL record, the local catalog lags,
            # and skipping here would silently drop evidence the
            # primary's triggers should have recorded. The primary's
            # apply_forwarded_intent consults *its* catalog — the truth
            # — and no-ops when no AFTER trigger is armed.
            try:
                self.intent_forwarder(
                    {
                        name: frozenset(ids)
                        for name, ids in accessed.items()
                    },
                    self.session.sql_text,
                    self.session.user_id,
                )
            except (ReproError, OSError) as error:
                # fail_closed: refuse the rows rather than serve an
                # unattributable disclosure; fail_open: record the gap
                self._record_audit_gap("intent-forward", error)
            return
        seq = None
        if has_after and self._trigger_depth == 0:
            # cascaded firings (depth > 0) are part of their parent
            # intent; journaling them too would double-replay cascades
            seq = self._journal_intent(accessed)
        if (
            self._trigger_mode == "async"
            and self._trigger_depth == 0
            and has_after
        ):
            # capture ACCESSED plus the metadata the actions read
            # (sql_text() / user_id()); blocks when the queue is full —
            # backpressure instead of dropped audit records. Cascaded
            # firings (depth > 0) stay synchronous so the pipeline
            # worker never deadlocks submitting to its own queue.
            batch = TriggerBatch(
                accessed={
                    name: frozenset(ids)
                    for name, ids in accessed.items()
                },
                sql_text=self.session.sql_text,
                user_id=self.session.user_id,
                journal_seq=seq,
            )
            try:
                self._pipeline().submit(batch)
            except PipelineClosedError as error:
                if self._audit_policy == "fail_closed":
                    raise AuditUnavailableError(
                        "trigger pipeline is closed; the access cannot "
                        "be audited asynchronously"
                    ) from error
                # fail_open degraded mode: fire on the caller's thread so
                # the trail stays complete; note the degradation
                self._note_gap("pipeline-closed", error)
                self._fire_accessed(accessed, timing="after")
                self._journal_commit(seq)
            return
        self._fire_accessed(accessed, timing="after")
        self._journal_commit(seq)

    def _fire_trigger_batch(self, batch: TriggerBatch) -> None:
        """Pipeline-worker entry: fire one deferred batch's actions."""
        with self.session.override(batch.sql_text, batch.user_id):
            self._fire_accessed(batch.accessed, timing="after")
        # the firing succeeded: a commit-append failure must NOT bubble
        # into the pipeline's retry loop (re-firing would duplicate the
        # audit rows) — record it as a gap instead, whatever the policy
        try:
            self._journal_commit(batch.journal_seq)
        except AuditUnavailableError as error:
            self._note_gap("journal-commit", error)

    def _fire_accessed(self, accessed: dict, timing: str) -> None:
        if not accessed:
            return
        if not self.trigger_manager.has_select_triggers(timing):
            return
        self.faults.fire("trigger-action")
        # trigger actions mutate state (audit-log INSERTs, the transient
        # ``accessed`` relation): exclusive write side
        with self._engine_lock.write():
            # §II-C: the action executes as its own *system transaction*
            # — its writes commit independently of any enclosing user
            # transaction (a later ROLLBACK must not erase the audit
            # trail)
            previous_undo = self._active_undo
            self._active_undo = None
            try:
                self.trigger_manager.fire_select_triggers(accessed, timing)
            finally:
                self._active_undo = previous_undo

    # ------------------------------------------------------------------
    # transactions

    def _record_change(self, change) -> None:
        """Table observer feeding the active undo log."""
        if self._active_undo is not None:
            self._active_undo.record(change)

    def _atomic_dml(self, action) -> QueryResult:
        """Run a DML statement atomically.

        Inside an explicit transaction the statement rolls back to its own
        savepoint on failure (the transaction stays open); in autocommit a
        fresh per-statement undo scope is created and dropped.
        """
        from repro.storage.undo import UndoLog

        created_scope = self._active_undo is None
        if created_scope:
            self._active_undo = UndoLog(self.catalog)
        savepoint = self._active_undo.savepoint()
        try:
            return action()
        except BaseException:
            self._active_undo.rollback(savepoint)
            raise
        finally:
            if created_scope:
                self._active_undo = None

    def _execute_transaction_control(
        self, statement: ast.TransactionStatement
    ) -> QueryResult:
        from repro.errors import TransactionError
        from repro.storage.undo import UndoLog

        if statement.action == "begin":
            if self._in_explicit_transaction:
                raise TransactionError("a transaction is already open")
            self._active_undo = UndoLog(self.catalog)
            self._in_explicit_transaction = True
            return QueryResult()
        if not self._in_explicit_transaction:
            raise TransactionError(
                f"{statement.action.upper()} without an open transaction"
            )
        if statement.action == "rollback":
            assert self._active_undo is not None
            undone = self._active_undo.rollback(0)
            self._active_undo = None
            self._in_explicit_transaction = False
            return QueryResult(rowcount=undone)
        # commit: the changes are already applied; drop the undo log
        self._active_undo = None
        self._in_explicit_transaction = False
        return QueryResult()

    def transaction(self):
        """Context manager: BEGIN on entry, COMMIT on clean exit,
        ROLLBACK when the body raises."""
        database = self

        class _Transaction:
            def __enter__(self):
                database.execute("BEGIN")
                return database

            def __exit__(self, exc_type, exc, traceback) -> bool:
                if database._in_explicit_transaction:
                    database.execute(
                        "ROLLBACK" if exc_type is not None else "COMMIT"
                    )
                return False

        return _Transaction()

    @property
    def in_transaction(self) -> bool:
        return self._in_explicit_transaction

    # ------------------------------------------------------------------
    # DML

    def _execute_insert(
        self,
        statement: ast.InsertStatement,
        parameters: dict[str, object] | None,
        scope_columns: tuple[PlanColumn, ...] | None = None,
        pseudo_row: tuple | None = None,
    ) -> QueryResult:
        table = self.catalog.table(statement.table)
        schema = table.schema
        if statement.select is not None:
            source = self._execute_select(
                statement.select, parameters, scope_columns, pseudo_row
            )
            value_rows: Iterable[tuple] = source.rows
        else:
            outer_scope = Scope(scope_columns) if scope_columns else None
            base_rows = (pseudo_row,) if pseudo_row is not None else ()
            context = self.make_context(parameters, base_outer_rows=base_rows)
            scope = outer_scope or Scope(())
            value_rows = [
                tuple(
                    evaluate(
                        self._builder.bind_expression(expression, scope),
                        pseudo_row or (),
                        context,
                    )
                    for expression in row
                )
                for row in statement.rows
            ]
        count = 0
        for values in value_rows:
            full_row = self._arrange_insert_row(schema, statement.columns, values)
            self._check_foreign_keys(schema, full_row)
            table.insert(full_row)
            count += 1
        return QueryResult(rowcount=count)

    def _arrange_insert_row(
        self,
        schema: TableSchema,
        columns: tuple[str, ...],
        values: tuple,
    ) -> tuple:
        if not columns:
            if len(values) != len(schema.columns):
                raise ExecutionError(
                    f"INSERT supplies {len(values)} values but table "
                    f"{schema.name!r} has {len(schema.columns)} columns"
                )
            return tuple(values)
        if len(columns) != len(values):
            raise ExecutionError(
                "INSERT column list and VALUES length differ"
            )
        row: list[object] = [None] * len(schema.columns)
        for name, value in zip(columns, values):
            row[schema.position_of(name)] = value
        return tuple(row)

    def _check_foreign_keys(self, schema: TableSchema, row: tuple) -> None:
        for foreign_key in schema.foreign_keys:
            values = tuple(
                row[schema.position_of(column)]
                for column in foreign_key.columns
            )
            if any(value is None for value in values):
                continue
            try:
                referenced = self.catalog.table(foreign_key.ref_table)
            except CatalogError:
                continue
            ref_columns = foreign_key.ref_columns or \
                referenced.schema.primary_key
            if tuple(ref_columns) != tuple(referenced.schema.primary_key):
                continue  # only PK-backed foreign keys are checked
            if referenced.lookup_pk(values) is None:
                raise ConstraintError(
                    f"foreign key violation: {schema.name}."
                    f"{foreign_key.columns} = {values!r} has no match in "
                    f"{foreign_key.ref_table}"
                )

    def _table_scope(self, table: Table) -> Scope:
        columns = tuple(
            PlanColumn(
                column.name,
                table.schema.name,
                (table.schema.name, column.name),
            )
            for column in table.schema.columns
        )
        return Scope(columns)

    def _execute_update(
        self,
        statement: ast.UpdateStatement,
        parameters: dict[str, object] | None,
    ) -> QueryResult:
        table = self.catalog.table(statement.table)
        scope = self._table_scope(table)
        predicate = (
            self._builder.bind_expression(statement.where, scope)
            if statement.where is not None
            else None
        )
        assignments = [
            (
                table.schema.position_of(column),
                self._builder.bind_expression(expression, scope),
            )
            for column, expression in statement.assignments
        ]
        context = self.make_context(parameters)
        pending: list[tuple[int, tuple]] = []
        for rid, row in table.rows_with_rids():
            if predicate is not None and evaluate(
                predicate, row, context
            ) is not True:
                continue
            new_row = list(row)
            for position, expression in assignments:
                new_row[position] = evaluate(expression, row, context)
            pending.append((rid, tuple(new_row)))
        for rid, new_row in pending:
            table.update_rid(rid, new_row)
        return QueryResult(rowcount=len(pending))

    def _execute_delete(
        self,
        statement: ast.DeleteStatement,
        parameters: dict[str, object] | None,
    ) -> QueryResult:
        table = self.catalog.table(statement.table)
        scope = self._table_scope(table)
        predicate = (
            self._builder.bind_expression(statement.where, scope)
            if statement.where is not None
            else None
        )
        context = self.make_context(parameters)
        doomed = [
            rid
            for rid, row in table.rows_with_rids()
            if predicate is None
            or evaluate(predicate, row, context) is True
        ]
        for rid in doomed:
            table.delete_rid(rid)
        return QueryResult(rowcount=len(doomed))

    # ------------------------------------------------------------------
    # DDL

    def _execute_create_table(
        self, statement: ast.CreateTableStatement
    ) -> QueryResult:
        columns = tuple(
            Column(
                definition.name,
                type_from_name(definition.type_name),
                nullable=not definition.not_null,
            )
            for definition in statement.columns
        )
        foreign_keys = tuple(
            ForeignKey(local, ref_table.lower(), refs)
            for local, ref_table, refs in statement.foreign_keys
        )
        schema = TableSchema(
            name=statement.name.lower(),
            columns=columns,
            primary_key=statement.primary_key,
            foreign_keys=foreign_keys,
        )
        table = Table(schema, block_capacity=self.block_size)
        self.catalog.add_table(table)
        table.add_observer(self._record_change)  # transaction undo feed
        if len(schema.primary_key) >= 1:
            # clustered-index companion: a secondary ordered index on the
            # PK so the planner can seek by key (the paper's partition-by
            # keys coincide with the clustered index, §IV-A.1)
            index_name = f"{schema.name}_pk"
            table.create_secondary_index(index_name, schema.primary_key)
            self.catalog.add_index(
                IndexDefinition(
                    index_name, schema.name, schema.primary_key, unique=True
                )
            )
        return QueryResult()

    def _check_drop_table_dependencies(self, table_name: str) -> None:
        """Refuse to drop a table that auditing objects still reference."""
        from repro.audit.expression import _referenced_tables
        from repro.triggers.definitions import DmlTrigger

        key = table_name.lower()
        for expression in self.audit_manager.expressions():
            if key in _referenced_tables(expression.select):
                raise CatalogError(
                    f"cannot drop table {table_name!r}: audit expression "
                    f"{expression.name!r} references it "
                    "(drop the expression first)"
                )
        for trigger in self.catalog.triggers():
            if isinstance(trigger, DmlTrigger) and trigger.table == key:
                raise CatalogError(
                    f"cannot drop table {table_name!r}: trigger "
                    f"{trigger.name!r} is defined on it"
                )

    def _execute_create_index(
        self, statement: ast.CreateIndexStatement
    ) -> QueryResult:
        table = self.catalog.table(statement.table)
        table.create_secondary_index(
            statement.name.lower(), statement.columns,
            unique=statement.unique,
        )
        self.catalog.add_index(
            IndexDefinition(
                statement.name.lower(),
                statement.table.lower(),
                statement.columns,
                statement.unique,
            )
        )
        return QueryResult()

    def _execute_analyze(self, statement: ast.AnalyzeStatement) -> QueryResult:
        if statement.table is not None:
            self.catalog.statistics(statement.table)
        else:
            for table in self.catalog.tables():
                self.catalog.statistics(table.schema.name)
        # fresh statistics can change cost-based plan choices, so cached
        # physical plans may no longer be the ones the planner would pick
        self.plan_cache.clear()
        return QueryResult()

    # ------------------------------------------------------------------
    # trigger-body statements

    def _execute_if(
        self,
        statement: ast.IfStatement,
        parameters: dict[str, object] | None,
        scope_columns: tuple[PlanColumn, ...] | None,
        pseudo_row: tuple | None,
    ) -> QueryResult:
        scope = Scope(scope_columns or ())
        condition = self._builder.bind_expression(statement.condition, scope)
        context = self.make_context(parameters)
        row = pseudo_row or ()
        if evaluate(condition, row, context) is True:
            return self._execute_statement(
                statement.then, parameters, scope_columns, pseudo_row
            )
        return QueryResult()

    def _execute_notify(
        self,
        statement: ast.NotifyStatement,
        parameters: dict[str, object] | None,
        scope_columns: tuple[PlanColumn, ...] | None,
        pseudo_row: tuple | None,
    ) -> QueryResult:
        message = "notification"
        if statement.message is not None:
            scope = Scope(scope_columns or ())
            bound = self._builder.bind_expression(statement.message, scope)
            context = self.make_context(parameters)
            value = evaluate(bound, pseudo_row or (), context)
            message = str(value)
        self.notifications.append(message)
        return QueryResult()

    def _execute_deny(
        self,
        statement: ast.DenyStatement,
        parameters: dict[str, object] | None,
        scope_columns: tuple[PlanColumn, ...] | None,
        pseudo_row: tuple | None,
    ) -> QueryResult:
        from repro.errors import AccessDeniedError

        message = "access denied by SELECT trigger"
        if statement.message is not None:
            scope = Scope(scope_columns or ())
            bound = self._builder.bind_expression(statement.message, scope)
            context = self.make_context(parameters)
            message = str(evaluate(bound, pseudo_row or (), context))
        raise AccessDeniedError(message)

    # ------------------------------------------------------------------
    # audit support

    def _materialize_ids(self, expression) -> set:
        """Execute an audit expression's ID select (view materialization)."""
        statement = expression.id_select()
        with self._engine_lock.read():
            logical = self._builder.build_select(statement)
            logical = self._optimizer.optimize_logical(logical)
            physical = self._optimizer.compile(logical)
            context = self.make_context()
            return {
                row[0]
                for row in physical.rows(context)
                if row[0] is not None
            }


def connect(**kwargs) -> Database:
    """Convenience constructor mirroring DB-API style."""
    return Database(**kwargs)


__all__ = ["Database", "QueryResult", "connect"]
