"""ReplicaDatabase: an audit-consistent read replica (DESIGN.md §13).

A replica is a read-only :class:`~repro.database.Database` kept current
by an applier thread replaying the primary's journal stream:

* ``statement`` records (committed DML + DDL the primary journaled
  under ``replicate_statements``) replay through the recovery path
  (:func:`~repro.durability.recovery.apply_statement_record`), so the
  replica's tables and catalog converge on the primary's;
* ``intent`` records — firings the primary journaled, including ones
  this very replica forwarded — replay their AFTER trigger actions
  locally (:func:`~repro.durability.recovery.apply_intent_record`)
  under the original attribution, so the replica's *audit-log tables*
  converge too.

The audit invariant: **SELECT-trigger evidence is never dropped by
reading from a replica.** A replica SELECT computes its ACCESSED set
locally, fires BEFORE triggers locally (a ``DENY`` guard refuses rows
exactly as the primary would), and *forwards* the AFTER firing intent
to the primary — which journals it, fires it, and streams it back —
rather than firing into a local log the auditor would never scan.
Forwarding failures go through the engine's audit-degradation contract
(``fail_closed`` withholds the rows, ``fail_open`` records a gap); a
replica dying mid-stream therefore loses nothing: either the intent
reached the primary's journal, or the client never got the rows.

Staleness is observable, not hidden: :meth:`replication_lag` reports
applied vs primary head, and :meth:`wait_for` blocks on a
read-your-writes token (the ``token`` field on the primary's ``done``
frames, = :meth:`~repro.database.Database.replication_token`).
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.concurrency import SequenceBarrier
from repro.database import Database
from repro.durability.recovery import (
    apply_intent_record,
    apply_statement_record,
)
from repro.errors import ReplicationError, ReproError
from repro.replication.tailer import JournalFileTailer, JournalSocketTailer

#: applier idle sleep between empty polls (file tailer; the socket
#: tailer's poll_timeout already paces the loop)
DEFAULT_POLL_INTERVAL = 0.02


class ReplicaDatabase:
    """A read-only engine continuously replaying a primary's journal.

    ``tailer`` supplies the record stream (file or socket — see
    :mod:`repro.replication.tailer`); ``intent_sink`` is where locally
    computed AFTER firings go: ``(accessed, sql, user) -> seq | None``,
    either the primary :class:`~repro.database.Database`'s
    ``apply_forwarded_intent`` in-process or a
    :class:`~repro.server.client.Connection`'s ``forward_intent`` over
    the wire. Prefer the :meth:`from_journal` / :meth:`from_primary`
    constructors, which wire both up.
    """

    def __init__(
        self,
        tailer,
        intent_sink: Callable[[dict, str, str], object] | None,
        *,
        audit_policy: str = "fail_closed",
        poll_interval: float = DEFAULT_POLL_INTERVAL,
        name: str = "replica",
        _owned: tuple = (),
    ) -> None:
        self.name = name
        self._tailer = tailer
        self._poll_interval = poll_interval
        self._owned = _owned  # resources close() must release
        # fail_closed by default: a replica that cannot forward its
        # firing intent must withhold rows, not leak an unaudited read
        self.database = Database(
            user_id=name, audit_policy=audit_policy, read_only=True
        )
        if intent_sink is not None:
            self.database.intent_forwarder = (
                lambda accessed, sql, user: intent_sink(accessed, sql, user)
            )
        self.barrier = SequenceBarrier()
        self.primary_seq = 0
        self.records_applied = 0
        self.intents_replayed = 0
        self.apply_errors: list[str] = []
        self._stop = threading.Event()
        self._applier = threading.Thread(
            target=self._apply_loop, name=f"repro-{name}-applier", daemon=True
        )
        self._applier.start()

    # ------------------------------------------------------------------
    # constructors

    @classmethod
    def from_journal(
        cls,
        path,
        primary: Database | None = None,
        from_seq: int = 0,
        **kwargs,
    ) -> "ReplicaDatabase":
        """Tail the primary's journal directory on shared storage.

        With ``primary`` given, firing intents are handed to it
        in-process; without one the replica is *detached* (pure replay —
        useful for offline reconstruction, but armed SELECTs against it
        will degrade per ``audit_policy``).
        """
        sink = primary.apply_forwarded_intent if primary is not None else None
        return cls(JournalFileTailer(path, from_seq=from_seq), sink, **kwargs)

    @classmethod
    def from_primary(
        cls,
        host: str,
        port: int,
        from_seq: int = 0,
        user_id: str = "replica",
        password: str | None = None,
        **kwargs,
    ) -> "ReplicaDatabase":
        """Subscribe to a running server over the wire.

        Opens two connections: a ``subscribe`` stream for the journal
        and an ordinary :class:`~repro.server.client.Connection` for
        forwarding intents back.
        """
        from repro.server.client import Connection

        tailer = JournalSocketTailer(
            host, port, from_seq=from_seq,
            user_id=user_id, password=password,
        )
        try:
            intents = Connection(
                host, port, user_id=user_id, password=password
            )
        except BaseException:
            tailer.close()
            raise
        return cls(
            tailer, intents.forward_intent, _owned=(intents,), **kwargs
        )

    # ------------------------------------------------------------------
    # the applier

    def _apply_loop(self) -> None:
        while not self._stop.is_set():
            try:
                records, primary_seq = self._tailer.poll()
            except ReproError as error:
                # fail-stop: a broken stream must surface as stalled
                # lag, not as silently frozen reads
                self.apply_errors.append(f"tail: {error}")
                return
            self.primary_seq = max(self.primary_seq, primary_seq)
            for record in records:
                try:
                    self._apply_record(record)
                except ReproError as error:
                    self.apply_errors.append(
                        f"seq {record.seq} ({record.kind}): {error}"
                    )
                    return  # fail-stop; replaying past a failure would
                    # diverge the replica from the primary
                self.records_applied += 1
                self.barrier.advance(record.seq)
            if not records:
                self._stop.wait(self._poll_interval)

    def _apply_record(self, record) -> None:
        if record.kind == "statement":
            apply_statement_record(self.database, record)
        elif record.kind == "intent":
            # re-fire the AFTER actions locally so the replica's audit
            # tables match the primary's, attribution included; the
            # stream carries every intent the primary journaled —
            # including the ones this replica itself forwarded
            applied = apply_intent_record(self.database, record)
            if applied:
                self.intents_replayed += 1
            self.database.mark_seq_applied(record.seq, recovered=True)
        # 'commit' / 'gap' / 'dead-letter' records carry no replayable
        # state; they still advance the barrier in the caller

    # ------------------------------------------------------------------
    # serving reads

    def execute(
        self,
        sql: str,
        parameters: dict | None = None,
        user_id: str | None = None,
    ):
        """Run a SELECT locally, attributed to ``user_id``.

        BEFORE triggers fire here (guards deny exactly as on the
        primary); the AFTER firing intent is forwarded to the primary.
        Mutating statements raise
        :class:`~repro.errors.ReadOnlyReplicaError`.
        """
        if self.stalled:
            raise ReplicationError(
                f"replica {self.name!r} is stalled: {self.apply_errors[-1]}"
            )
        with self.database.session.override(
            sql, user_id or self.database.session.user_id
        ):
            return self.database.execute(sql, parameters)

    # ------------------------------------------------------------------
    # staleness surfaces

    @property
    def applied_seq(self) -> int:
        return self.barrier.value

    @property
    def stalled(self) -> bool:
        return bool(self.apply_errors)

    def wait_for(self, token: int, timeout: float | None = None) -> bool:
        """Block until this replica has applied a write's token.

        ``token`` is the primary's ``replication_token()`` (the journal
        seq *after* the write), so applying every record below it means
        the write — and everything before it — is visible here.
        """
        return self.barrier.wait_for(token - 1, timeout)

    def replication_lag(self) -> dict:
        """How far behind the primary this replica is, observably."""
        applied = self.barrier.value
        primary_seq = max(self.primary_seq, applied + 1)
        return {
            "applied_seq": applied,
            "primary_seq": primary_seq,
            "lag_records": max(0, primary_seq - 1 - applied),
            "records_applied": self.records_applied,
            "intents_replayed": self.intents_replayed,
            "stalled": self.stalled,
            "errors": list(self.apply_errors),
        }

    # ------------------------------------------------------------------
    # lifecycle

    def close(self) -> None:
        self._stop.set()
        self._applier.join(timeout=5.0)
        self._tailer.close()
        for resource in self._owned:
            try:
                resource.close()
            except (ReproError, OSError):
                pass
        self.database.close()

    def __enter__(self) -> "ReplicaDatabase":
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        self.close()
        return False


__all__ = ["ReplicaDatabase", "DEFAULT_POLL_INTERVAL"]
