"""Journal tailers: where a replica's record stream comes from.

Both tailers present one interface — ``poll() -> (records, primary_seq)``
— so :class:`~repro.replication.replica.ReplicaDatabase` does not care
whether it follows the primary's journal directory on shared storage
(:class:`JournalFileTailer`) or subscribes over the wire
(:class:`JournalSocketTailer`, the ``subscribe`` protocol frame against
a running server). ``records`` are
:class:`~repro.durability.journal.JournalRecord` instances in strict
seq order; ``primary_seq`` is the primary's next append position as of
this poll (the lag metric's other half).
"""

from __future__ import annotations

import select
import socket as socket_module

from repro.durability.journal import JournalCursor, JournalRecord
from repro.errors import (
    ConnectionClosedError,
    ProtocolError,
    ReplicationError,
)
from repro.server import protocol


class JournalFileTailer:
    """Tail the primary's journal directory directly (shared storage).

    The fallback path when no server is running (or for tests): a
    :class:`~repro.durability.JournalCursor` follows segment rotation
    and stalls politely on a torn tail. ``primary_seq`` is inferred
    from the records seen, so the lag metric reads ~0 here — honest,
    since file tailing has no independent view of the primary's head.
    """

    def __init__(self, path, from_seq: int = 0) -> None:
        self._cursor = JournalCursor(path, from_seq=from_seq)

    def poll(
        self, max_records: int = 512
    ) -> tuple[list[JournalRecord], int]:
        records = self._cursor.poll(max_records=max_records)
        return records, self._cursor.last_seq + 1

    def close(self) -> None:  # interface parity
        pass


class JournalSocketTailer:
    """Subscribe to a running server's journal stream (DESIGN.md §13).

    Speaks the ordinary wire handshake, then sends ``subscribe`` and
    consumes ``journal`` frames. :meth:`poll` blocks for at most
    ``poll_timeout`` seconds; a dead stream raises
    :class:`~repro.errors.ConnectionClosedError` so the applier can
    fail-stop instead of silently serving ever-staler reads.
    """

    def __init__(
        self,
        host: str,
        port: int,
        from_seq: int = 0,
        user_id: str = "replica",
        password: str | None = None,
        connect_timeout: float = 10.0,
        poll_timeout: float = 0.05,
        frame_timeout: float = 10.0,
    ) -> None:
        self._poll_timeout = poll_timeout
        # once bytes are available, a whole frame must arrive within
        # this bound — far above the server's 1s idle heartbeat, so a
        # trip means a wedged primary, not a slow one
        self._frame_timeout = frame_timeout
        self._closed = False
        try:
            self._sock = socket_module.create_connection(
                (host, port), timeout=connect_timeout
            )
        except OSError as error:
            raise ConnectionClosedError(
                f"cannot connect to {host}:{port}: {error}"
            ) from error
        self._sock.setsockopt(
            socket_module.IPPROTO_TCP, socket_module.TCP_NODELAY, 1
        )
        try:
            protocol.send_frame(self._sock, {
                "type": "hello",
                "protocol": protocol.PROTOCOL_VERSION,
                "user": user_id,
                "password": password,
            })
            frame = protocol.recv_frame(self._sock)
            if frame is None:
                raise ConnectionClosedError(
                    "server closed the connection during handshake"
                )
            if frame.get("type") == "error":
                protocol.raise_error_frame(frame)
            if frame.get("type") != "hello_ok":
                raise ProtocolError(
                    f"expected hello_ok, got {frame.get('type')!r}"
                )
            protocol.send_frame(
                self._sock, {"type": "subscribe", "from_seq": from_seq}
            )
            frame = protocol.recv_frame(self._sock)
            if frame is None:
                raise ConnectionClosedError(
                    "server closed the connection during subscribe"
                )
            if frame.get("type") == "error":
                protocol.raise_error_frame(frame)
            if frame.get("type") != "subscribe_ok":
                raise ProtocolError(
                    f"expected subscribe_ok, got {frame.get('type')!r}"
                )
            self.primary_seq = int(frame.get("next_seq", 0))
        except BaseException:
            self.close()
            raise
        self._sock.settimeout(self._frame_timeout)

    def poll(
        self, max_records: int = 512  # noqa: ARG002 — server batches
    ) -> tuple[list[JournalRecord], int]:
        if self._closed:
            raise ConnectionClosedError("journal subscription is closed")
        # Idleness is detected by select(), never by a recv timeout: a
        # timeout firing inside recv_frame would discard the partial
        # header/body bytes already read and desynchronize the
        # length-prefixed stream. recv_frame only runs once bytes are
        # available, then blocks until the frame completes (bounded by
        # frame_timeout; the server's idle heartbeat keeps it short).
        try:
            readable, _, _ = select.select(
                [self._sock], [], [], self._poll_timeout
            )
        except OSError as error:
            self.close()
            raise ConnectionClosedError(
                f"journal stream failed: {error}"
            ) from error
        if not readable:
            return [], self.primary_seq  # quiet stream: nothing new
        try:
            frame = protocol.recv_frame(self._sock)
        except socket_module.timeout as error:
            # mid-frame stall past frame_timeout: stream position is
            # lost, so fail-stop rather than risk a desynchronized read
            self.close()
            raise ConnectionClosedError(
                "journal stream stalled mid-frame "
                f"(no complete frame within {self._frame_timeout}s)"
            ) from error
        except OSError as error:
            self.close()
            raise ConnectionClosedError(
                f"journal stream failed: {error}"
            ) from error
        if frame is None:
            self.close()
            raise ConnectionClosedError("journal stream ended (server EOF)")
        kind = frame.get("type")
        if kind == "goodbye":
            self.close()
            raise ConnectionClosedError(
                f"journal stream ended: {frame.get('reason')}"
            )
        if kind != "journal":
            raise ReplicationError(
                f"unexpected frame type {kind!r} on a journal stream"
            )
        self.primary_seq = int(frame.get("primary_seq", self.primary_seq))
        records = [
            JournalRecord(
                seq=int(entry["seq"]),
                kind=entry["kind"],
                data=entry.get("data", {}),
                segment="<wire>",
            )
            for entry in frame.get("records", [])
        ]
        return records, self.primary_seq

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass


__all__ = ["JournalFileTailer", "JournalSocketTailer"]
