"""repro.replication — audit-consistent read replicas (DESIGN.md §13).

The primary ships its :class:`~repro.durability.AuditJournal` — which,
under ``Database.replicate_statements``, records committed DML/DDL
*statements* alongside the audit intents — and a
:class:`ReplicaDatabase` replays that stream into a read-only engine
that serves SELECTs locally. Two stream sources
(:class:`JournalFileTailer` over shared storage,
:class:`JournalSocketTailer` over the wire ``subscribe`` frame), one
invariant: reading from a replica produces exactly the audit evidence
reading from the primary would — BEFORE guards fire locally, AFTER
firing intents are forwarded to the primary's journal and fired there
under the original attribution, and staleness is observable
(``replication_lag()``, read-your-writes tokens + ``wait_for``).
"""

from repro.replication.replica import DEFAULT_POLL_INTERVAL, ReplicaDatabase
from repro.replication.tailer import JournalFileTailer, JournalSocketTailer

__all__ = [
    "ReplicaDatabase",
    "JournalFileTailer",
    "JournalSocketTailer",
    "DEFAULT_POLL_INTERVAL",
]
