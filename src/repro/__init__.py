"""repro — reproduction of "SELECT Triggers for Data Auditing" (ICDE 2013).

A pure-Python relational database engine with the paper's auditing stack:

* audit expressions compiled to materialized sensitive-ID views;
* the audit operator — a no-op data viewer probing IDs during execution;
* placement heuristics (leaf-node / highest-node / highest-commutative-node);
* SELECT triggers with the ACCESSED internal state and cascading actions;
* an offline auditor (the ground truth) with a one-pass lineage fast
  path, parallel deletion-test fallback, and an Oracle-FGA style
  static-analysis baseline;
* a concurrent serving layer — snapshot SELECTs under a read-write lock
  with an asynchronous audit-trigger pipeline (``trigger_mode='async'``);
* a TPC-H workload generator and the paper's benchmark harness.

Quickstart::

    from repro import Database
    db = Database()
"""

from repro.concurrency import ReadWriteLock, TriggerBatch, TriggerPipeline
from repro.database import Database, QueryResult, connect
from repro.durability import (
    AuditJournal,
    DeadLetterJournal,
    RecoveryReport,
    scan_journal,
)
from repro.errors import ReproError
from repro.testing import CrashError, FaultInjector
from repro.audit import (
    HEURISTIC_HCN,
    HEURISTIC_HIGHEST,
    HEURISTIC_LEAF,
    AuditLog,
    LineageAuditor,
    OfflineAuditor,
    StaticAnalysisAuditor,
    install_audit_log,
)

__version__ = "1.0.0"

__all__ = [
    "Database",
    "QueryResult",
    "connect",
    "ReproError",
    "HEURISTIC_HCN",
    "HEURISTIC_HIGHEST",
    "HEURISTIC_LEAF",
    "LineageAuditor",
    "OfflineAuditor",
    "StaticAnalysisAuditor",
    "AuditLog",
    "install_audit_log",
    "ReadWriteLock",
    "TriggerBatch",
    "TriggerPipeline",
    "AuditJournal",
    "DeadLetterJournal",
    "RecoveryReport",
    "scan_journal",
    "FaultInjector",
    "CrashError",
    "__version__",
]
