"""Triggers: classical row-level DML triggers and the paper's SELECT triggers."""

from repro.triggers.definitions import DmlTrigger, SelectTrigger
from repro.triggers.manager import TriggerManager, MAX_TRIGGER_DEPTH

__all__ = ["DmlTrigger", "SelectTrigger", "TriggerManager", "MAX_TRIGGER_DEPTH"]
