"""Trigger definition objects."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sql import ast


@dataclass(frozen=True)
class SelectTrigger:
    """``CREATE TRIGGER name ON ACCESS TO expr AS body`` (§II).

    The body executes after any query whose ACCESSED state contains IDs for
    ``audit_expression``; inside the body, ``ACCESSED`` is a queryable
    relation holding the partition-by IDs.

    ``timing``: ``"after"`` (the paper's default — the action runs as its
    own system transaction once the query completes) or ``"before"`` (the
    §II future-work variant: the action runs before results reach the
    caller and may ``DENY`` them).
    """

    name: str
    audit_expression: str
    body: tuple[ast.Statement, ...]
    timing: str = "after"


@dataclass(frozen=True)
class DmlTrigger:
    """``CREATE TRIGGER name ON table AFTER INSERT|UPDATE|DELETE AS body``.

    Row-level AFTER trigger: the body runs once per modified row with the
    ``NEW`` and ``OLD`` pseudo-rows in scope.
    """

    name: str
    table: str
    event: str
    body: tuple[ast.Statement, ...]
