"""Trigger manager: registration, firing, cascading (§II-C).

SELECT-trigger actions run *after* the reading query finishes (or aborts),
as their own system transaction, with the ACCESSED internal state exposed
as a relation named ``accessed`` whose single column is the audit
expression's partition-by key. DML triggers fire per modified row with the
``NEW``/``OLD`` pseudo-rows in scope.

Cascades are bounded by :data:`MAX_TRIGGER_DEPTH` (32, as in SQL Server):
a SELECT trigger's INSERT can fire an AFTER INSERT trigger whose body runs
a SELECT that fires further SELECT triggers, and so on.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.catalog.schema import Column, TableSchema
from repro.errors import AccessDeniedError, TriggerError
from repro.storage.table import RowChange, Table
from repro.triggers.definitions import DmlTrigger, SelectTrigger

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.database import Database

MAX_TRIGGER_DEPTH = 32


class TriggerManager:
    """Owns trigger definitions and drives their execution."""

    def __init__(self, database: "Database") -> None:
        self._database = database
        self._select_triggers: dict[str, SelectTrigger] = {}
        self._dml_triggers: dict[str, DmlTrigger] = {}
        self._observed_tables: set[str] = set()
        # cascade depth is per-thread: the async pipeline worker fires
        # triggers concurrently with serving threads' own cascades
        self._local = threading.local()

    # ------------------------------------------------------------------
    # registration

    def add_select_trigger(self, trigger: SelectTrigger) -> None:
        self._database.audit_manager.expression(trigger.audit_expression)
        self._database.catalog.add_trigger(trigger.name, trigger)
        self._select_triggers[trigger.name.lower()] = trigger

    def add_dml_trigger(self, trigger: DmlTrigger) -> None:
        table = self._database.catalog.table(trigger.table)  # validates
        self._database.catalog.add_trigger(trigger.name, trigger)
        self._dml_triggers[trigger.name.lower()] = trigger
        key = table.schema.name
        if key not in self._observed_tables:
            table.add_observer(self._on_row_change)
            self._observed_tables.add(key)

    def drop_trigger(self, name: str) -> None:
        key = name.lower()
        if key in self._select_triggers:
            del self._select_triggers[key]
        elif key in self._dml_triggers:
            del self._dml_triggers[key]
        else:
            raise TriggerError(f"trigger {name!r} does not exist")
        self._database.catalog.drop_trigger(name)

    def select_triggers_for(self, audit_expression: str
                            ) -> list[SelectTrigger]:
        return [
            trigger
            for trigger in self._select_triggers.values()
            if trigger.audit_expression == audit_expression.lower()
        ]

    def has_select_triggers(self, timing: str | None = None) -> bool:
        if timing is None:
            return bool(self._select_triggers)
        return any(
            trigger.timing == timing
            for trigger in self._select_triggers.values()
        )

    # ------------------------------------------------------------------
    # SELECT trigger firing (§II: after the query, own transaction)

    def fire_select_triggers(
        self, accessed: dict[str, set], timing: str = "after"
    ) -> None:
        """Run the actions of matching triggers with the given timing."""
        for audit_name, ids in accessed.items():
            if not ids:
                continue
            for trigger in self.select_triggers_for(audit_name):
                if trigger.timing != timing:
                    continue
                self._run_select_trigger(trigger, audit_name, ids)

    def _run_select_trigger(
        self, trigger: SelectTrigger, audit_name: str, ids: set
    ) -> None:
        database = self._database
        expression = database.audit_manager.expression(audit_name)
        sensitive = database.catalog.table(expression.sensitive_table)
        id_column = sensitive.schema.column(expression.partition_by)

        if database.catalog.has_table("accessed"):
            raise TriggerError(
                "a relation named 'accessed' already exists; it is "
                "reserved for SELECT trigger actions"
            )
        schema = TableSchema(
            name="accessed",
            columns=(Column(id_column.name, id_column.data_type),),
        )
        accessed_table = Table(schema)
        accessed_table.bulk_load((value,) for value in sorted(ids, key=repr))
        # transient: the firing-scoped system relation must not bump the
        # catalog DDL version, or every firing would flush the plan cache
        database.catalog.add_table(accessed_table, transient=True)
        try:
            self._enter()
            try:
                for statement in trigger.body:
                    database.execute_trigger_statement(statement)
            except AccessDeniedError:
                if trigger.timing != "before":
                    raise TriggerError(
                        f"trigger {trigger.name!r}: DENY is only valid in "
                        "BEFORE SELECT triggers"
                    ) from None
                raise
            finally:
                self._leave()
        finally:
            database.catalog.drop_table("accessed", transient=True)

    # ------------------------------------------------------------------
    # DML trigger firing (row-level AFTER)

    def _on_row_change(self, change: RowChange) -> None:
        if change.compensating:
            return  # rollback repairs state; it is not a business event
        triggers = [
            trigger
            for trigger in self._dml_triggers.values()
            if trigger.table == change.table
            and trigger.event.lower() == change.kind
        ]
        if not triggers:
            return
        table = self._database.catalog.table(change.table)
        scope_columns, pseudo_row = _trigger_row(table, change)
        for trigger in triggers:
            self._enter()
            try:
                for statement in trigger.body:
                    self._database.execute_trigger_statement(
                        statement, scope_columns, pseudo_row
                    )
            finally:
                self._leave()

    # ------------------------------------------------------------------
    # cascade depth

    def _enter(self) -> None:
        depth = getattr(self._local, "depth", 0)
        if depth >= MAX_TRIGGER_DEPTH:
            raise TriggerError(
                f"trigger cascade exceeded depth {MAX_TRIGGER_DEPTH}"
            )
        self._local.depth = depth + 1

    def _leave(self) -> None:
        self._local.depth = getattr(self._local, "depth", 1) - 1


def _trigger_row(table: Table, change: RowChange):
    """Build the NEW/OLD pseudo-scope and pseudo-row for a change."""
    from repro.plan.logical import PlanColumn

    width = len(table.schema.columns)
    new_row = change.new_row or (None,) * width
    old_row = change.old_row or (None,) * width
    columns = tuple(
        PlanColumn(column.name, "new", (table.schema.name, column.name))
        for column in table.schema.columns
    ) + tuple(
        PlanColumn(column.name, "old", (table.schema.name, column.name))
        for column in table.schema.columns
    )
    return columns, tuple(new_row) + tuple(old_row)
