"""Date interval arithmetic for SQL ``INTERVAL`` literals.

TPC-H query templates use expressions such as ``DATE '1995-01-01' +
INTERVAL '3' MONTH``. We implement the small calendar algebra those
templates need: year/month/day intervals added to (or subtracted from)
dates, with end-of-month clamping as in the SQL standard.
"""

from __future__ import annotations

import calendar
import datetime
from dataclasses import dataclass

from repro.errors import ExecutionError

_UNITS = ("YEAR", "MONTH", "DAY")


@dataclass(frozen=True)
class Interval:
    """A calendar interval of ``count`` units (YEAR, MONTH, or DAY)."""

    count: int
    unit: str

    def __post_init__(self) -> None:
        if self.unit not in _UNITS:
            raise ExecutionError(f"unsupported interval unit: {self.unit!r}")

    def negated(self) -> "Interval":
        return Interval(-self.count, self.unit)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"INTERVAL '{self.count}' {self.unit}"


def _add_months(day: datetime.date, months: int) -> datetime.date:
    """Add months with day-of-month clamped to the target month's length."""
    month_index = day.year * 12 + (day.month - 1) + months
    year, month0 = divmod(month_index, 12)
    month = month0 + 1
    last_day = calendar.monthrange(year, month)[1]
    return datetime.date(year, month, min(day.day, last_day))


def add_interval(day: object, interval: Interval) -> datetime.date | None:
    """Return ``day + interval`` (NULL propagates)."""
    if day is None:
        return None
    if not isinstance(day, datetime.date):
        raise ExecutionError(f"cannot add interval to non-date {day!r}")
    if interval.unit == "DAY":
        return day + datetime.timedelta(days=interval.count)
    if interval.unit == "MONTH":
        return _add_months(day, interval.count)
    return _add_months(day, interval.count * 12)
