"""SQL type descriptors used by the catalog, binder, and expression engine.

Types are deliberately lightweight: a :class:`DataType` is an immutable
descriptor with a name and a "family" used for coercion decisions. Values are
plain Python objects (``int``, ``float``, ``str``, ``bool``,
``datetime.date``); the type layer only records declared column types and
answers questions such as "what is the common type of INTEGER and FLOAT?".
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass

from repro.errors import BindError

#: type families, ordered by numeric-coercion priority
_FAMILY_BOOLEAN = "boolean"
_FAMILY_NUMERIC = "numeric"
_FAMILY_STRING = "string"
_FAMILY_DATE = "date"
_FAMILY_NULL = "null"


@dataclass(frozen=True)
class DataType:
    """An immutable SQL type descriptor.

    Attributes:
        name: canonical upper-case SQL name, e.g. ``"INTEGER"``.
        family: coercion family (numeric, string, date, boolean, null).
        priority: within a family, the wider type has higher priority.
    """

    name: str
    family: str
    priority: int = 0

    def is_numeric(self) -> bool:
        return self.family == _FAMILY_NUMERIC

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


BOOLEAN = DataType("BOOLEAN", _FAMILY_BOOLEAN)
INTEGER = DataType("INTEGER", _FAMILY_NUMERIC, priority=1)
DECIMAL = DataType("DECIMAL", _FAMILY_NUMERIC, priority=2)
FLOAT = DataType("FLOAT", _FAMILY_NUMERIC, priority=3)
VARCHAR = DataType("VARCHAR", _FAMILY_STRING)
DATE = DataType("DATE", _FAMILY_DATE)
#: the type of a bare NULL literal before coercion
NULL_TYPE = DataType("NULL", _FAMILY_NULL)

_NAME_ALIASES = {
    "INT": INTEGER,
    "INTEGER": INTEGER,
    "BIGINT": INTEGER,
    "SMALLINT": INTEGER,
    "DECIMAL": DECIMAL,
    "NUMERIC": DECIMAL,
    "FLOAT": FLOAT,
    "REAL": FLOAT,
    "DOUBLE": FLOAT,
    "VARCHAR": VARCHAR,
    "CHAR": VARCHAR,
    "TEXT": VARCHAR,
    "STRING": VARCHAR,
    "DATE": DATE,
    "BOOLEAN": BOOLEAN,
    "BOOL": BOOLEAN,
}


def type_from_name(name: str) -> DataType:
    """Resolve a SQL type name (case-insensitive, aliases allowed)."""
    try:
        return _NAME_ALIASES[name.upper()]
    except KeyError:
        raise BindError(f"unknown SQL type: {name!r}") from None


def type_of_value(value: object) -> DataType:
    """Infer the :class:`DataType` of a Python runtime value."""
    if value is None:
        return NULL_TYPE
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return INTEGER
    if isinstance(value, float):
        return FLOAT
    if isinstance(value, str):
        return VARCHAR
    if isinstance(value, datetime.date):
        return DATE
    raise BindError(f"unsupported runtime value type: {type(value).__name__}")


def common_type(left: DataType, right: DataType) -> DataType:
    """Return the common supertype for a binary operation, or raise.

    NULL unifies with anything; numerics widen by priority; otherwise the
    two types must be identical.
    """
    if left.family == _FAMILY_NULL:
        return right
    if right.family == _FAMILY_NULL:
        return left
    if left.family != right.family:
        raise BindError(f"incompatible types: {left} vs {right}")
    if left.priority >= right.priority:
        return left
    return right
