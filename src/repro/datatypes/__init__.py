"""SQL data types, NULL-aware value semantics, and date/interval arithmetic."""

from repro.datatypes.types import (
    DataType,
    BOOLEAN,
    INTEGER,
    FLOAT,
    DECIMAL,
    VARCHAR,
    DATE,
    NULL_TYPE,
    type_from_name,
    common_type,
)
from repro.datatypes.values import (
    NULL,
    is_null,
    sql_equals,
    sql_compare,
    sql_and,
    sql_or,
    sql_not,
    sql_like,
    coerce_value,
    value_sort_key,
)
from repro.datatypes.intervals import Interval, add_interval

__all__ = [
    "DataType",
    "BOOLEAN",
    "INTEGER",
    "FLOAT",
    "DECIMAL",
    "VARCHAR",
    "DATE",
    "NULL_TYPE",
    "type_from_name",
    "common_type",
    "NULL",
    "is_null",
    "sql_equals",
    "sql_compare",
    "sql_and",
    "sql_or",
    "sql_not",
    "sql_like",
    "coerce_value",
    "value_sort_key",
    "Interval",
    "add_interval",
]
