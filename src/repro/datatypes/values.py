"""NULL-aware value operations: SQL three-valued logic and comparisons.

SQL truth values are represented as ``True``, ``False``, and ``None``
(UNKNOWN). Every helper here treats ``None`` as SQL NULL and propagates it
the way the standard requires: comparisons with NULL yield UNKNOWN, AND/OR
follow Kleene logic, and predicates only accept rows whose condition is
exactly ``True``.
"""

from __future__ import annotations

import datetime
import re
from functools import lru_cache

from repro.datatypes.types import (
    DataType,
    BOOLEAN,
    DATE,
    FLOAT,
    INTEGER,
    DECIMAL,
    VARCHAR,
)
from repro.errors import ExecutionError

#: canonical NULL value (aliased for readability at call sites)
NULL = None


def is_null(value: object) -> bool:
    """True iff ``value`` is SQL NULL."""
    return value is None


def sql_equals(left: object, right: object) -> bool | None:
    """SQL ``=``: UNKNOWN if either side is NULL."""
    if left is None or right is None:
        return None
    return left == right


def sql_compare(left: object, right: object) -> int | None:
    """Three-way comparison: -1/0/+1, or None if either side is NULL."""
    if left is None or right is None:
        return None
    if left < right:
        return -1
    if left > right:
        return 1
    return 0


def sql_and(left: bool | None, right: bool | None) -> bool | None:
    """Kleene AND."""
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def sql_or(left: bool | None, right: bool | None) -> bool | None:
    """Kleene OR."""
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def sql_not(value: bool | None) -> bool | None:
    """Kleene NOT."""
    if value is None:
        return None
    return not value


@lru_cache(maxsize=512)
def _like_regex(pattern: str) -> re.Pattern[str]:
    """Compile a SQL LIKE pattern (``%`` and ``_`` wildcards) to a regex."""
    parts = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return re.compile("".join(parts), re.DOTALL)


def sql_like(value: object, pattern: object) -> bool | None:
    """SQL ``LIKE``: UNKNOWN if either operand is NULL."""
    if value is None or pattern is None:
        return None
    if not isinstance(value, str) or not isinstance(pattern, str):
        raise ExecutionError("LIKE requires string operands")
    return _like_regex(pattern).fullmatch(value) is not None


def coerce_value(value: object, target: DataType) -> object:
    """Coerce a Python value to the representation of ``target``.

    NULL passes through. Numeric widening converts int to float for FLOAT
    columns; DECIMAL is stored as float for simplicity (documented in
    DESIGN.md). Strings are kept verbatim; dates must already be
    :class:`datetime.date` or an ISO string.
    """
    if value is None:
        return None
    if target is INTEGER:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ExecutionError(f"cannot store {value!r} in INTEGER column")
        return int(value)
    if target in (FLOAT, DECIMAL):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ExecutionError(f"cannot store {value!r} in {target} column")
        return float(value)
    if target is VARCHAR:
        if not isinstance(value, str):
            raise ExecutionError(f"cannot store {value!r} in VARCHAR column")
        return value
    if target is DATE:
        if isinstance(value, datetime.date):
            return value
        if isinstance(value, str):
            try:
                return datetime.date.fromisoformat(value)
            except ValueError as exc:
                raise ExecutionError(f"invalid DATE literal: {value!r}") from exc
        raise ExecutionError(f"cannot store {value!r} in DATE column")
    if target is BOOLEAN:
        if not isinstance(value, bool):
            raise ExecutionError(f"cannot store {value!r} in BOOLEAN column")
        return value
    return value


#: sort rank that places NULLs first, mirroring "NULLS FIRST" ascending order
_NULL_RANK = 0
_VALUE_RANK = 1


def value_sort_key(value: object) -> tuple[int, object]:
    """Total-order sort key over nullable values (NULLs sort first)."""
    if value is None:
        return (_NULL_RANK, False)
    return (_VALUE_RANK, value)
