"""Crash-safe durability for the audit trail (DESIGN.md §8).

Three pieces:

* :class:`AuditJournal` — segmented, CRC-checked, append-only JSONL
  write-ahead journal of audit *intents* and *commits*, with a
  configurable fsync policy (``always`` / ``batch`` / ``off``);
* :class:`DeadLetterJournal` — durable sink for trigger batches the
  pipeline permanently failed to fire;
* :func:`recover_database` — scan, verify, and replay a journal into a
  reconstructed database (at-least-once, deduplicated by sequence
  number), surfaced as ``Database.recover``.
"""

from repro.durability.deadletter import DeadLetterJournal
from repro.durability.journal import (
    DEFAULT_BATCH_INTERVAL,
    DEFAULT_SEGMENT_BYTES,
    FSYNC_POLICIES,
    AuditJournal,
    JournalCursor,
    JournalRecord,
    ScanResult,
    decode_id,
    encode_id,
    repair_torn_tail,
    scan_journal,
    segment_paths,
)
from repro.durability.recovery import (
    RecoveryReport,
    recover_database,
    uncommitted_intents,
)

__all__ = [
    "AuditJournal",
    "DeadLetterJournal",
    "JournalCursor",
    "JournalRecord",
    "ScanResult",
    "RecoveryReport",
    "scan_journal",
    "segment_paths",
    "repair_torn_tail",
    "encode_id",
    "decode_id",
    "recover_database",
    "uncommitted_intents",
    "FSYNC_POLICIES",
    "DEFAULT_SEGMENT_BYTES",
    "DEFAULT_BATCH_INTERVAL",
]
