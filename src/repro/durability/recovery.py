"""Crash recovery: rebuild the audit trail from the intent journal.

The engine is in-memory, so a process crash loses the audit-log *table*
entirely — committed firings included. What survives is the journal:
every returned query that touched sensitive data left an **intent**
record. :func:`recover_database` replays those intents in sequence order
against a freshly-reconstructed database (same schema, audit
expressions, and triggers), re-firing each one's AFTER-timing actions
under the originating query's ``sql_text``/``user_id``.

Delivery is **at-least-once, deduplicated by journal sequence number**:
the database remembers which sequence numbers it has applied in this
process (``Database._applied_seqs``), so

* running ``recover`` twice is a no-op the second time;
* ``recover`` on a *live* database that wrote the journal itself replays
  only the intents whose firings never completed (lost async batches);
* a crash *during* recovery is survivable — re-running ``recover`` on
  the same database skips the intents already replayed, and a fresh
  process simply replays everything again.

Commit records do not gate replay (the in-memory rows they vouch for
died with the process); they are the *verification* signal —
:func:`uncommitted_intents` lists firings the crashed process provably
never completed, which is what the fault-injection tests assert on.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.durability.journal import JournalRecord, decode_id, scan_journal

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.database import Database


@dataclass
class RecoveryReport:
    """What one :func:`recover_database` pass found and did."""

    segments: int = 0
    records: int = 0
    intents: int = 0
    commits: int = 0
    #: intents re-fired by this pass
    replayed: int = 0
    #: 'statement' records applied (``apply_statements=True`` only)
    statements_applied: int = 0
    #: intents skipped because this process already applied their seq
    skipped_applied: int = 0
    #: intents naming at least one audit expression that no longer
    #: exists (the known expressions of such an intent still replay)
    skipped_unknown: int = 0
    #: intents with no commit record (firings the writer never finished)
    uncommitted: int = 0
    torn_tail: int = 0
    corrupt: int = 0
    #: partition IDs replayed per audit expression (diagnostics)
    replayed_ids: dict = field(default_factory=dict)


def uncommitted_intents(path: os.PathLike | str, strict: bool = True
                        ) -> list[int]:
    """Sequence numbers of intents with no matching commit record."""
    scan = scan_journal(path, strict=strict)
    commits = {
        record.data.get("intent")
        for record in scan.records
        if record.kind == "commit"
    }
    return [
        record.seq
        for record in scan.records
        if record.kind == "intent" and record.seq not in commits
    ]


def apply_statement_record(
    database: "Database", record: JournalRecord
) -> None:
    """Replay one 'statement' journal record into ``database``.

    Runs under :meth:`~repro.database.Database.replication_apply` and the
    originating query's attribution, so the replayed statement bypasses
    the replica's read-only check and suppresses its own trigger
    dispatch — the stream's intent records carry the firings.
    """
    sql = record.data.get("sql", "")
    raw_params = record.data.get("params") or None
    parameters = None
    if raw_params is not None:
        parameters = {
            name: decode_id(value) for name, value in raw_params.items()
        }
    with database.replication_apply(), database.session.override(
        sql, record.data.get("user", "")
    ):
        database.execute(sql, parameters)


def apply_intent_record(
    database: "Database", record: JournalRecord
) -> dict[str, set]:
    """Re-fire one intent record's AFTER-timing actions.

    Returns the decoded accessed map that was fired (empty when every
    named audit expression is unknown to this database). The caller is
    responsible for sequence bookkeeping (``mark_seq_applied``).
    """
    manager = database.audit_manager
    accessed: dict[str, set] = {}
    for name, ids in record.data.get("accessed", {}).items():
        if manager.has_expression(name):
            accessed[name] = {decode_id(value) for value in ids}
    if accessed:
        with database.replication_apply(), database.session.override(
            record.data.get("sql", ""), record.data.get("user", "")
        ):
            database._fire_accessed(accessed, timing="after")
    return accessed


def recover_database(
    database: "Database",
    path: os.PathLike | str,
    strict: bool = True,
    apply_statements: bool = False,
) -> RecoveryReport:
    """Replay the journal at ``path`` into ``database``.

    See the module docstring for the delivery semantics. By default the
    database must already hold the schema, audit expressions, and
    triggers of the crashed instance (recovery replays *firings*, not
    DDL); intents naming audit expressions that no longer exist are
    counted in ``skipped_unknown`` and otherwise ignored.

    With ``apply_statements=True`` the journal's 'statement' records
    (written when the primary ran with ``replicate_statements``) are
    replayed too, interleaved with intents in sequence order — a journal
    written that way is a complete WAL, and a *fresh* database recovers
    schema, data, and audit trail from it alone. This is also the
    bootstrap path a :class:`~repro.replication.ReplicaDatabase` uses.
    """
    scan = scan_journal(path, strict=strict)
    commits = {
        record.data.get("intent")
        for record in scan.records
        if record.kind == "commit"
    }
    replayable = sorted(
        (
            record
            for record in scan.records
            if record.kind == "intent"
            or (apply_statements and record.kind == "statement")
        ),
        key=lambda record: record.seq,
    )
    intents = [
        record for record in replayable if record.kind == "intent"
    ]
    report = RecoveryReport(
        segments=scan.segments,
        records=len(scan.records),
        intents=len(intents),
        commits=len(commits - {None}),
        uncommitted=sum(
            1 for record in intents if record.seq not in commits
        ),
        torn_tail=scan.torn_tail,
        corrupt=scan.corrupt,
    )
    for record in replayable:
        if database.is_seq_applied(record.seq):
            report.skipped_applied += 1
            continue
        if record.kind == "statement":
            apply_statement_record(database, record)
            report.statements_applied += 1
            database.mark_seq_applied(record.seq)
            continue
        names_unknown = any(
            not database.audit_manager.has_expression(name)
            for name in record.data.get("accessed", {})
        )
        if names_unknown:
            report.skipped_unknown += 1
        # mid-recovery crash site: fires before the intent is applied, so
        # a killed recovery never half-counts the current intent
        database.faults.fire("recovery-replay")
        accessed = apply_intent_record(database, record)
        if accessed:
            for name, ids in accessed.items():
                report.replayed_ids.setdefault(name, set()).update(ids)
            report.replayed += 1
        database.mark_seq_applied(record.seq, recovered=True)
    return report


__all__ = [
    "RecoveryReport",
    "recover_database",
    "uncommitted_intents",
    "apply_statement_record",
    "apply_intent_record",
]
