"""The append-only audit journal: segmented JSONL with per-record CRC.

The journal is the durable half of the paper's no-false-negatives
guarantee (Claim 3.6). The engine appends an **intent** record — the
query's ACCESSED map plus the session metadata its trigger actions read —
synchronously inside ``Database.execute`` *before* results are returned,
and a matching **commit** record once the AFTER-timing actions complete.
An intent with no commit is a firing the process lost (crash, dead
worker, dropped batch); :func:`repro.durability.recovery.recover_database`
re-fires it.

On-disk format, chosen so a journal is greppable and a torn tail is
detectable without framing metadata:

* a journal is a *directory* of segments ``audit-NNNNNN.jsonl``;
* each record is one line: ``<crc32:08x> <compact-json>\n``, the CRC
  taken over the JSON bytes;
* segments rotate at :data:`DEFAULT_SEGMENT_BYTES`; sequence numbers are
  global and strictly increasing across segments.

Durability knob (``fsync``):

* ``'always'`` — flush + ``os.fsync`` after every append (group-0 loss);
* ``'batch'``  — flush every append, fsync every
  :data:`DEFAULT_BATCH_INTERVAL` appends and on close (bounded loss,
  near-``off`` throughput — the default);
* ``'off'``    — flush only; the OS decides when bytes reach the platter.

:func:`scan_journal` is the read side shared by recovery, verification,
and the tests: it validates every CRC, tolerates a torn final line of the
*final* segment (the expected artifact of a crash mid-append), and treats
corruption anywhere else as :class:`~repro.errors.JournalCorruptionError`
(or skips it when ``strict=False``).
"""

from __future__ import annotations

import datetime
import decimal
import json
import os
import pathlib
import threading
import zlib
from dataclasses import dataclass

from repro.errors import DurabilityError, JournalCorruptionError
from repro.testing.faults import NO_FAULTS, FaultInjector

SEGMENT_PREFIX = "audit-"
SEGMENT_SUFFIX = ".jsonl"

#: rotate segments at ~1 MiB so recovery never holds one huge file
DEFAULT_SEGMENT_BYTES = 1 << 20

#: ``fsync='batch'``: appends between fsyncs
DEFAULT_BATCH_INTERVAL = 32

FSYNC_POLICIES = ("always", "batch", "off")


@dataclass(frozen=True)
class JournalRecord:
    """One decoded journal line."""

    seq: int
    kind: str  # 'intent' | 'commit' | 'gap' | 'dead-letter'
    data: dict
    segment: str = ""
    line: int = 0


@dataclass
class ScanResult:
    """Outcome of a full journal scan."""

    records: list[JournalRecord]
    segments: int = 0
    #: torn (undecodable) lines dropped from the tail of the last segment
    torn_tail: int = 0
    #: corrupt interior records skipped (``strict=False`` only)
    corrupt: int = 0


def encode_record(payload: dict) -> bytes:
    """One journal line: crc32 of the compact JSON, then the JSON.

    The payload must be JSON-native; anything else raises
    :class:`DurabilityError` so the append fails loudly into the
    ``fail_open``/``fail_closed`` policy instead of silently journaling a
    lossy stand-in. Rich partition-ID types go through
    :func:`encode_id` first.
    """
    try:
        data = json.dumps(
            payload, separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise DurabilityError(
            f"journal payload is not JSON-serializable: {error}"
        ) from error
    return b"%08x " % zlib.crc32(data) + data + b"\n"


#: tag key marking a non-JSON-native partition ID in a journal payload
ID_TAG = "$id"


def encode_id(value: object) -> object:
    """JSON-safe encoding of one partition ID, round-trippable.

    JSON-native scalars pass through untouched; dates, datetimes,
    Decimals, and composite (tuple/list) keys become ``{"$id": tag,
    "v": ...}`` wrappers that :func:`decode_id` inverts exactly. Any
    other type raises :class:`DurabilityError` — recovery replaying a
    lossy stand-in would corrupt the reconstructed trail.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, datetime.datetime):  # before date: a subclass
        return {ID_TAG: "datetime", "v": value.isoformat()}
    if isinstance(value, datetime.date):
        return {ID_TAG: "date", "v": value.isoformat()}
    if isinstance(value, decimal.Decimal):
        return {ID_TAG: "decimal", "v": str(value)}
    if isinstance(value, (tuple, list)):
        return {ID_TAG: "tuple", "v": [encode_id(item) for item in value]}
    raise DurabilityError(
        f"partition ID of type {type(value).__name__} cannot be "
        f"journaled losslessly: {value!r}"
    )


def decode_id(value: object) -> object:
    """Inverse of :func:`encode_id`."""
    if isinstance(value, dict) and ID_TAG in value:
        tag, raw = value[ID_TAG], value.get("v")
        if tag == "datetime":
            return datetime.datetime.fromisoformat(raw)
        if tag == "date":
            return datetime.date.fromisoformat(raw)
        if tag == "decimal":
            return decimal.Decimal(raw)
        if tag == "tuple":
            return tuple(decode_id(item) for item in raw)
        raise JournalCorruptionError(f"unknown partition-ID tag {tag!r}")
    return value


def decode_line(line: bytes) -> dict:
    """Inverse of :func:`encode_record`; raises ``ValueError`` on damage."""
    crc_hex, _, data = line.rstrip(b"\n").partition(b" ")
    if not data:
        raise ValueError("truncated journal line")
    if int(crc_hex, 16) != zlib.crc32(data):
        raise ValueError("journal line CRC mismatch")
    return json.loads(data)


def _segment_name(index: int) -> str:
    return f"{SEGMENT_PREFIX}{index:06d}{SEGMENT_SUFFIX}"


def repair_torn_tail(path: os.PathLike | str) -> int:
    """Truncate a crash's torn tail off one journal file; return bytes cut.

    A torn tail is the trailing run of undecodable lines left by a crash
    mid-append. Reopening such a file in append mode would glue the next
    record onto the partial line — silently losing that record and turning
    the journal corrupt once another follows — so writers call this before
    opening for append. Only the *trailing* invalid run is cut: a bad line
    with a good one after it is interior corruption and is left in place
    for :func:`scan_journal` to report. A final line whose record decodes
    but lost its newline is repaired in place rather than dropped.
    """
    segment = pathlib.Path(path)
    if not segment.exists():
        return 0
    raw = segment.read_bytes()
    valid_end = 0  # offset just past the last decodable record
    pending_bad = False
    needs_newline = False
    offset = 0
    for line in raw.splitlines(keepends=True):
        offset += len(line)
        if not line.strip():
            if not pending_bad:
                valid_end = offset
            continue
        try:
            decode_line(line)
        except ValueError:
            pending_bad = True
            continue
        pending_bad = False
        valid_end = offset
        needs_newline = not line.endswith(b"\n")
    dropped = len(raw) - valid_end
    if dropped or needs_newline:
        with open(segment, "r+b") as handle:
            handle.truncate(valid_end)
            if needs_newline:
                handle.seek(0, os.SEEK_END)
                handle.write(b"\n")
            handle.flush()
            os.fsync(handle.fileno())
    return dropped


def segment_paths(path: os.PathLike | str) -> list[pathlib.Path]:
    """The journal directory's segment files, in rotation order."""
    directory = pathlib.Path(path)
    if not directory.exists():
        return []
    return sorted(
        entry
        for entry in directory.iterdir()
        if entry.name.startswith(SEGMENT_PREFIX)
        and entry.name.endswith(SEGMENT_SUFFIX)
    )


def scan_journal(path: os.PathLike | str, strict: bool = True) -> ScanResult:
    """Read and verify every record of the journal at ``path``.

    A run of undecodable lines at the very end of the *last* segment is a
    torn write (crash mid-append): those lines are dropped and counted in
    ``torn_tail``. A bad line anywhere else — or a bad line *followed by
    a good one* in the last segment — is corruption:
    :class:`JournalCorruptionError` under ``strict`` (the default), else
    skipped and counted in ``corrupt``.
    """
    segments = segment_paths(path)
    result = ScanResult(records=[], segments=len(segments))
    for position, segment in enumerate(segments):
        last_segment = position == len(segments) - 1
        pending_bad: list[tuple[int, ValueError]] = []
        with open(segment, "rb") as handle:
            for line_no, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                try:
                    payload = decode_line(line)
                except ValueError as error:
                    if last_segment:
                        # may be the torn tail — decided once we know
                        # whether any good record follows
                        pending_bad.append((line_no, error))
                        continue
                    if strict:
                        raise JournalCorruptionError(
                            f"{segment.name}:{line_no}: {error}"
                        ) from error
                    result.corrupt += 1
                    continue
                if pending_bad:
                    # a good record after a bad one: not a torn tail
                    bad_line, bad_error = pending_bad[0]
                    if strict:
                        raise JournalCorruptionError(
                            f"{segment.name}:{bad_line}: {bad_error}"
                        ) from bad_error
                    result.corrupt += len(pending_bad)
                    pending_bad.clear()
                result.records.append(
                    JournalRecord(
                        seq=payload.get("seq", -1),
                        kind=payload.get("kind", ""),
                        data=payload.get("data", {}),
                        segment=segment.name,
                        line=line_no,
                    )
                )
        result.torn_tail += len(pending_bad)
    return result


class JournalCursor:
    """Incremental, restartable reader over a live journal directory.

    Where :func:`scan_journal` reads everything in one pass, a cursor
    remembers its position (segment + byte offset) and each
    :meth:`poll` returns only the records appended since the last call
    — the streaming read side replication tails. Semantics match the
    scanner's crash model:

    * a *partial* final line (no newline yet) or an undecodable final
      line of the last segment is an append in progress or a torn tail:
      the cursor stops short of it and re-reads it next poll;
    * an undecodable line **followed by more data** — or in any segment
      but the last — is interior corruption and raises
      :class:`~repro.errors.JournalCorruptionError`;
    * segment rotation is followed transparently.

    ``from_seq`` skips records below it, so a replica resuming from a
    known position does not replay history it already applied.
    """

    def __init__(self, path: os.PathLike | str, from_seq: int = 0) -> None:
        self.path = pathlib.Path(path)
        self.from_seq = from_seq
        self._segment_pos = 0  # index into segment_paths(self.path)
        self._offset = 0       # byte offset within the current segment
        #: highest sequence number this cursor has returned (or -1)
        self.last_seq = from_seq - 1

    def poll(self, max_records: int = 512) -> list[JournalRecord]:
        """Records appended since the last poll (may be empty)."""
        out: list[JournalRecord] = []
        while len(out) < max_records:
            segments = segment_paths(self.path)
            if self._segment_pos >= len(segments):
                break
            segment = segments[self._segment_pos]
            last_segment = self._segment_pos == len(segments) - 1
            with open(segment, "rb") as handle:
                handle.seek(self._offset)
                data = handle.read()
            if not data:
                if last_segment:
                    break  # caught up; wait for the writer
                self._segment_pos += 1
                self._offset = 0
                continue
            lines = data.splitlines(keepends=True)
            consumed = 0
            stalled = False
            for index, line in enumerate(lines):
                if not line.endswith(b"\n"):
                    stalled = True  # append in progress; retry next poll
                    break
                if not line.strip():
                    consumed += len(line)
                    continue
                try:
                    payload = decode_line(line)
                except ValueError as error:
                    trailing = last_segment and all(
                        not later.strip() for later in lines[index + 1:]
                    )
                    if trailing:
                        # torn tail of a crashed (or crashing) writer:
                        # stop here; the writer's restart repairs it
                        stalled = True
                        break
                    raise JournalCorruptionError(
                        f"{segment.name}: {error}"
                    ) from error
                consumed += len(line)
                seq = payload.get("seq", -1)
                if seq >= self.from_seq:
                    out.append(
                        JournalRecord(
                            seq=seq,
                            kind=payload.get("kind", ""),
                            data=payload.get("data", {}),
                            segment=segment.name,
                        )
                    )
                    self.last_seq = max(self.last_seq, seq)
                    if len(out) >= max_records:
                        break
            self._offset += consumed
            if stalled or len(out) >= max_records:
                break
            if last_segment:
                break  # consumed everything currently on disk
            self._segment_pos += 1
            self._offset = 0
        return out


class AuditJournal:
    """Thread-safe append side of a segmented audit journal."""

    def __init__(
        self,
        path: os.PathLike | str,
        fsync: str = "batch",
        segment_max_bytes: int = DEFAULT_SEGMENT_BYTES,
        batch_interval: int = DEFAULT_BATCH_INTERVAL,
        faults: FaultInjector = NO_FAULTS,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise DurabilityError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        self.path = pathlib.Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self._segment_max_bytes = max(1, segment_max_bytes)
        self._batch_interval = max(1, batch_interval)
        self._faults = faults
        self._lock = threading.Lock()
        self._unsynced = 0
        self._closed = False
        #: appends that reached the file (telemetry for benchmarks)
        self.appended = 0
        self.fsyncs = 0
        #: torn-tail bytes truncated off the last segment at open
        self.repaired_tail_bytes = 0

        existing = segment_paths(self.path)
        if existing:
            # a crash mid-append leaves a torn tail on the last segment;
            # cut it before opening for append, or the first post-restart
            # record glues onto the partial line and is lost
            self.repaired_tail_bytes = repair_torn_tail(existing[-1])
            # continue the global sequence after the last decodable record
            scan = scan_journal(self.path, strict=True)
            self._next_seq = max(
                (record.seq for record in scan.records), default=-1
            ) + 1
            self._segment_index = int(
                existing[-1].name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
            )
            self._segment_path = existing[-1]
        else:
            self._next_seq = 0
            self._segment_index = 0
            self._segment_path = self.path / _segment_name(0)
        self._handle = open(self._segment_path, "ab")

    # ------------------------------------------------------------------
    # append side

    def append(self, kind: str, data: dict) -> int:
        """Durably append one record; returns its sequence number."""
        with self._lock:
            if self._closed:
                raise DurabilityError("audit journal is closed")
            self._faults.fire("journal-write")
            seq = self._next_seq
            line = encode_record({"seq": seq, "kind": kind, "data": data})
            if self._handle.tell() + len(line) > self._segment_max_bytes \
                    and self._handle.tell() > 0:
                self._rotate()
            self._handle.write(line)
            self._next_seq = seq + 1
            self.appended += 1
            self._handle.flush()
            if self.fsync == "always":
                self._fsync()
            elif self.fsync == "batch":
                self._unsynced += 1
                if self._unsynced >= self._batch_interval:
                    self._fsync()
            return seq

    def _rotate(self) -> None:
        if self.fsync != "off":
            self._handle.flush()
            self._fsync()
        self._handle.close()
        self._segment_index += 1
        self._segment_path = self.path / _segment_name(self._segment_index)
        self._handle = open(self._segment_path, "ab")

    def _fsync(self) -> None:
        self._faults.fire("journal-fsync")
        os.fsync(self._handle.fileno())
        self.fsyncs += 1
        self._unsynced = 0

    def flush(self) -> None:
        """Flush buffers; fsync unless the policy is ``'off'``."""
        with self._lock:
            if self._closed:
                return
            self._handle.flush()
            if self.fsync != "off":
                self._fsync()

    @property
    def next_seq(self) -> int:
        return self._next_seq

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._handle.flush()
            if self.fsync != "off" and self._unsynced:
                try:
                    self._fsync()
                except BaseException:  # noqa: BLE001 — best-effort close
                    pass
            self._closed = True
            self._handle.close()

    # ------------------------------------------------------------------
    # read side

    def scan(self, strict: bool = True) -> ScanResult:
        with self._lock:
            if not self._closed:
                self._handle.flush()
        return scan_journal(self.path, strict=strict)


__all__ = [
    "AuditJournal",
    "JournalCursor",
    "JournalRecord",
    "ScanResult",
    "scan_journal",
    "segment_paths",
    "repair_torn_tail",
    "encode_record",
    "decode_line",
    "encode_id",
    "decode_id",
    "DEFAULT_SEGMENT_BYTES",
    "DEFAULT_BATCH_INTERVAL",
    "FSYNC_POLICIES",
]
