"""The dead-letter journal: durable parking lot for failed trigger batches.

When the trigger pipeline exhausts its retries on a batch — or a worker
crash strands one mid-flight — the batch must not evaporate into a
bounded in-memory error deque. It is spilled here: a single append-only
JSONL file using the same CRC line format as the audit journal, holding
everything needed to re-fire the batch by hand (:meth:`replay`) or to
reconcile the trail against the intent journal.
"""

from __future__ import annotations

import os
import pathlib
import threading
from typing import TYPE_CHECKING, Callable

from repro.durability.journal import decode_line, encode_record
from repro.errors import DurabilityError
from repro.testing.faults import NO_FAULTS, FaultInjector

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.concurrency.pipeline import TriggerBatch


class DeadLetterJournal:
    """Append-only file of permanently-failed trigger batches."""

    def __init__(
        self,
        path: os.PathLike | str,
        faults: FaultInjector = NO_FAULTS,
    ) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._faults = faults
        self._lock = threading.Lock()
        self._closed = False
        self._count = sum(1 for _ in self._iter_payloads()) \
            if self.path.exists() else 0
        self._handle = open(self.path, "ab")

    @property
    def count(self) -> int:
        return self._count

    def spill(
        self,
        batch: "TriggerBatch",
        error: BaseException,
        reason: str = "retries-exhausted",
        attempts: int = 0,
    ) -> None:
        """Durably record one failed batch."""
        payload = {
            "accessed": {
                name: sorted(ids, key=repr)
                for name, ids in batch.accessed.items()
            },
            "sql": batch.sql_text,
            "user": batch.user_id,
            "journal_seq": batch.journal_seq,
            "error": repr(error),
            "reason": reason,
            "attempts": attempts,
        }
        with self._lock:
            if self._closed:
                raise DurabilityError("dead-letter journal is closed")
            self._handle.write(
                encode_record({"kind": "dead-letter", "data": payload})
            )
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._count += 1

    def _iter_payloads(self):
        with open(self.path, "rb") as handle:
            for line in handle:
                if not line.strip():
                    continue
                try:
                    yield decode_line(line)["data"]
                except ValueError:
                    # torn tail of the dead-letter file itself
                    return

    def entries(self) -> list[dict]:
        """All dead-lettered batch payloads, oldest first."""
        with self._lock:
            if not self._closed:
                self._handle.flush()
        if not self.path.exists():
            return []
        return list(self._iter_payloads())

    def replay(self, fire: Callable[[dict], None]) -> int:
        """Hand every entry to ``fire`` (admin-driven re-delivery).

        Returns the number of entries replayed; ``fire`` raising aborts
        the replay at that entry.
        """
        entries = self.entries()
        for payload in entries:
            fire(payload)
        return len(entries)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._handle.close()


__all__ = ["DeadLetterJournal"]
