"""The dead-letter journal: durable parking lot for failed trigger batches.

When the trigger pipeline exhausts its retries on a batch — or a worker
crash strands one mid-flight — the batch must not evaporate into a
bounded in-memory error deque. It is spilled here: a single append-only
JSONL file using the same CRC line format as the audit journal, holding
everything needed to re-fire the batch by hand (:meth:`replay`) or to
reconcile the trail against the intent journal.

Failure semantics mirror the audit journal's: a torn tail left by a
crash mid-spill is truncated when the file is reopened (so the next
spill never glues onto a partial line), while an undecodable line with
good records *after* it is interior corruption and raises
:class:`~repro.errors.JournalCorruptionError` — a dead-letter file that
silently under-reports lost firings would defeat its whole purpose.
"""

from __future__ import annotations

import os
import pathlib
import threading
from typing import TYPE_CHECKING, Callable

from repro.durability.journal import (
    decode_id,
    decode_line,
    encode_id,
    encode_record,
    repair_torn_tail,
)
from repro.errors import DurabilityError, JournalCorruptionError
from repro.testing.faults import NO_FAULTS, FaultInjector

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.concurrency.pipeline import TriggerBatch


class DeadLetterJournal:
    """Append-only file of permanently-failed trigger batches."""

    def __init__(
        self,
        path: os.PathLike | str,
        faults: FaultInjector = NO_FAULTS,
    ) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._faults = faults
        self._lock = threading.Lock()
        self._closed = False
        #: torn-tail bytes truncated off the file at open
        self.repaired_tail_bytes = repair_torn_tail(self.path)
        self._count = len(self._read_payloads()) if self.path.exists() else 0
        self._handle = open(self.path, "ab")

    @property
    def count(self) -> int:
        return self._count

    def spill(
        self,
        batch: "TriggerBatch",
        error: BaseException,
        reason: str = "retries-exhausted",
        attempts: int = 0,
    ) -> None:
        """Durably record one failed batch."""
        payload = {
            "accessed": {
                name: [encode_id(value) for value in sorted(ids, key=repr)]
                for name, ids in batch.accessed.items()
            },
            "sql": batch.sql_text,
            "user": batch.user_id,
            "journal_seq": batch.journal_seq,
            "error": repr(error),
            "reason": reason,
            "attempts": attempts,
        }
        with self._lock:
            if self._closed:
                raise DurabilityError("dead-letter journal is closed")
            self._handle.write(
                encode_record({"kind": "dead-letter", "data": payload})
            )
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._count += 1

    def _read_payloads(self) -> list[dict]:
        """Decode every entry; tolerate only a torn *tail*.

        A trailing run of undecodable lines is the expected artifact of a
        crash mid-spill and is dropped. An undecodable line followed by a
        good one is interior corruption: raise rather than silently hide
        the later entries (and undercount lost failures).
        """
        payloads: list[dict] = []
        pending_bad: tuple[int, ValueError] | None = None
        with open(self.path, "rb") as handle:
            for line_no, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                try:
                    payload = decode_line(line)
                except ValueError as error:
                    if pending_bad is None:
                        pending_bad = (line_no, error)
                    continue
                if pending_bad is not None:
                    bad_line, bad_error = pending_bad
                    raise JournalCorruptionError(
                        f"{self.path.name}:{bad_line}: {bad_error}"
                    ) from bad_error
                payloads.append(payload["data"])
        return payloads

    def entries(self) -> list[dict]:
        """All dead-lettered batch payloads, oldest first.

        Partition IDs in each payload's ``accessed`` map are decoded back
        to their original types (see
        :func:`repro.durability.journal.decode_id`).
        """
        with self._lock:
            if not self._closed:
                self._handle.flush()
        if not self.path.exists():
            return []
        payloads = self._read_payloads()
        for payload in payloads:
            payload["accessed"] = {
                name: [decode_id(value) for value in ids]
                for name, ids in payload.get("accessed", {}).items()
            }
        return payloads

    def replay(self, fire: Callable[[dict], None]) -> int:
        """Hand every entry to ``fire`` (admin-driven re-delivery).

        Returns the number of entries replayed; ``fire`` raising aborts
        the replay at that entry.
        """
        entries = self.entries()
        for payload in entries:
            fire(payload)
        return len(entries)

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._handle.close()


__all__ = ["DeadLetterJournal"]
