"""Constant folding for bound expressions.

Folds subtrees whose operands are all literals — arithmetic, comparisons,
boolean connectives with dominant operands (``FALSE AND x``,
``TRUE OR x``), BETWEEN/IN-list over constants, and NOT. Folding is
best-effort: anything that would raise at runtime (division by zero) is
left in place so execution reports the error at the right moment.

Audit note (the paper's Examples 4.1/4.2): folding never crosses an
``Audit`` plan node because audit operators are separate operators here,
not IN-predicates spliced into user WHERE clauses — the class of
miscompilations the paper had to patch SQL Server rules for cannot arise.
Tests in ``tests/test_paper_examples.py`` pin that down.
"""

from __future__ import annotations

from repro.expr.nodes import (
    Between,
    Binary,
    Expression,
    InList,
    IntervalLiteral,
    IsNull,
    Like,
    Literal,
    Unary,
    transform,
)

_FOLDABLE = (Binary, Unary, Between, InList, IsNull, Like)
_CONSTANTS = (Literal, IntervalLiteral)


def fold_constants(expression: Expression) -> Expression:
    """Return ``expression`` with constant subtrees replaced by literals."""

    def visit(node: Expression) -> Expression:
        if isinstance(node, Binary):
            simplified = _boolean_shortcuts(node)
            if simplified is not None:
                return simplified
        if not isinstance(node, _FOLDABLE):
            return node
        if not all(
            isinstance(child, _CONSTANTS) for child in node.children()
        ):
            return node
        return _try_evaluate(node)

    return transform(expression, visit)


def _boolean_shortcuts(node: Binary) -> Expression | None:
    """Dominant-operand simplification for AND/OR (Kleene-correct).

    ``FALSE AND x`` is FALSE and ``TRUE OR x`` is TRUE for every x
    including UNKNOWN; ``TRUE AND x`` / ``FALSE OR x`` reduce to x.
    """
    if node.op == "AND":
        for side, other in ((node.left, node.right), (node.right, node.left)):
            if isinstance(side, Literal) and side.value is False:
                return Literal(False)
            if isinstance(side, Literal) and side.value is True:
                return other
        return None
    if node.op == "OR":
        for side, other in ((node.left, node.right), (node.right, node.left)):
            if isinstance(side, Literal) and side.value is True:
                return Literal(True)
            if isinstance(side, Literal) and side.value is False:
                return other
        return None
    return None


def _try_evaluate(node: Expression) -> Expression:
    from repro.exec.context import ExecutionContext
    from repro.expr.evaluator import evaluate

    try:
        value = evaluate(node, (), ExecutionContext())
    except Exception:
        return node  # fails at runtime, on purpose: keep it there
    return Literal(value)
