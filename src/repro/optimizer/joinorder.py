"""Greedy join-order selection for inner-join clusters.

The binder builds joins left-deep in FROM order; real queries (TPC-H Q8
starts its FROM list with ``part``) need reordering to avoid cross
products and huge intermediates. This pass:

1. flattens each maximal inner-join cluster into *leaves* (scans, derived
   tables, outer/semi/anti joins — anything that is not an inner join)
   and *conjuncts* normalized to the cluster-global row layout (the
   in-order concatenation of leaf outputs);
2. greedily orders the leaves: start from the smallest estimated leaf,
   repeatedly join the connected leaf (one sharing an applicable
   conjunct) with the smallest estimated result — falling back to the
   smallest disconnected leaf when the predicate graph is disconnected;
3. rebuilds a left-deep tree, attaching each conjunct at the lowest join
   where all its columns are available, and caps the cluster with a
   projection restoring the *original* column order — so no expression
   above the cluster ever needs rebasing.

Clusters whose conjuncts contain subqueries are left untouched: moving a
subquery across join levels would require shifting the outer-reference
levels inside its plan, which this pass deliberately avoids.
"""

from __future__ import annotations

from dataclasses import replace

from repro.expr.nodes import (
    Binary,
    ColumnRef,
    Expression,
    conjoin,
    conjuncts,
    contains_subquery,
)
from repro.optimizer.cost import CostModel
from repro.plan import logical as L
from repro.plan.logical import LogicalPlan, PlanColumn


def reorder_joins(plan: LogicalPlan, cost: CostModel) -> LogicalPlan:
    """Reorder every inner-join cluster in the plan.

    Clusters are flattened top-down — a cluster must be seen whole before
    any of its members is rewritten, else the restoring projection of an
    inner cluster would fragment its parent — and the recursion then
    descends into the cluster's leaves.
    """
    if isinstance(plan, L.Join) and plan.kind == L.JOIN_INNER:
        return _reorder_cluster(plan, cost)
    children = tuple(
        reorder_joins(child, cost) for child in plan.children()
    )
    if children:
        plan = plan.replace_children(children)
    return plan


# ---------------------------------------------------------------------------
# cluster flattening


def _collect(
    node: LogicalPlan,
    offset: int,
    leaves: list[LogicalPlan],
    parts: list[Expression],
) -> int:
    """Flatten an inner-join subtree; returns the subtree's width.

    Conditions are rebased to cluster-global coordinates: a condition at
    a join node binds over the in-order concatenation of its subtree's
    leaves, which starts at the global offset of its leftmost leaf.
    """
    if isinstance(node, L.Join) and node.kind == L.JOIN_INNER:
        left_width = _collect(node.left, offset, leaves, parts)
        right_width = _collect(node.right, offset + left_width, leaves, parts)
        if node.condition is not None:
            for part in conjuncts(node.condition):
                parts.append(_shift(part, offset))
        return left_width + right_width
    leaves.append(node)
    return node.arity


def _shift(expression: Expression, offset: int) -> Expression:
    if offset == 0:
        return expression
    from repro.plan.rebase import remap_slots

    return remap_slots(expression, lambda slot: slot + offset)


def _rebuild_in_order(
    node: LogicalPlan, leaves: list[LogicalPlan]
) -> LogicalPlan:
    """Splice (possibly rewritten) leaves back into the original tree."""
    iterator = iter(leaves)

    def splice(current: LogicalPlan) -> LogicalPlan:
        if isinstance(current, L.Join) and current.kind == L.JOIN_INNER:
            left = splice(current.left)
            right = splice(current.right)
            return replace(current, left=left, right=right)
        return next(iterator)

    return splice(node)


# ---------------------------------------------------------------------------
# greedy ordering


def _reorder_cluster(root: L.Join, cost: CostModel) -> LogicalPlan:
    leaves: list[LogicalPlan] = []
    parts: list[Expression] = []
    _collect(root, 0, leaves, parts)
    # recurse into the leaves (their internal clusters reorder on their
    # own; a restoring projection keeps each leaf's arity/layout stable)
    leaves = [reorder_joins(leaf, cost) for leaf in leaves]
    rebuilt_root = _rebuild_in_order(root, leaves)
    if len(leaves) <= 2:
        return rebuilt_root
    if any(contains_subquery(part) for part in parts):
        return rebuilt_root  # conservative: see module docstring

    # global layout bookkeeping
    widths = [leaf.arity for leaf in leaves]
    starts: list[int] = []
    position = 0
    for width in widths:
        starts.append(position)
        position += width

    def leaf_of_slot(slot: int) -> int:
        for index in range(len(leaves) - 1, -1, -1):
            if slot >= starts[index]:
                return index
        raise AssertionError("slot out of range")

    from repro.plan.rebase import deep_referenced_slots

    part_leaves = [
        frozenset(
            leaf_of_slot(slot) for slot in deep_referenced_slots(part)
        )
        for part in parts
    ]

    estimates = [max(cost.estimate_rows(leaf), 1.0) for leaf in leaves]
    distincts = _distinct_lookup(leaves, parts, cost)

    remaining = set(range(len(leaves)))
    order: list[int] = []
    placed: set[int] = set()
    current_rows = 0.0

    def join_selectivity(candidate: int) -> float:
        selectivity = 1.0
        for index, needed in enumerate(part_leaves):
            if candidate in needed and needed - {candidate} <= placed \
                    and needed - {candidate}:
                selectivity *= distincts[index]
        return selectivity

    first = min(remaining, key=lambda index: estimates[index])
    order.append(first)
    placed.add(first)
    remaining.discard(first)
    current_rows = estimates[first]

    while remaining:
        connected = [
            index
            for index in remaining
            if any(
                index in needed and (needed - {index}) & placed
                for needed in part_leaves
            )
        ]
        pool = connected or sorted(remaining)
        best = min(
            pool,
            key=lambda index: current_rows
            * estimates[index]
            * join_selectivity(index),
        )
        current_rows = max(
            1.0, current_rows * estimates[best] * join_selectivity(best)
        )
        order.append(best)
        placed.add(best)
        remaining.discard(best)

    if order == sorted(order):
        return rebuilt_root  # already in the best order found

    return _rebuild(leaves, parts, part_leaves, order, starts, widths)


def _distinct_lookup(
    leaves: list[LogicalPlan],
    parts: list[Expression],
    cost: CostModel,
) -> list[float]:
    """Per-conjunct selectivity estimate (equi: 1/max distinct, else 0.5)."""
    global_columns: list[PlanColumn] = []
    for leaf in leaves:
        global_columns.extend(leaf.columns)

    def distinct_of(expression: Expression) -> float:
        if not isinstance(expression, ColumnRef) \
                or expression.index is None \
                or expression.index >= len(global_columns):
            return 10.0
        origin = global_columns[expression.index].origin
        if origin is None:
            return 10.0
        try:
            stats = cost._catalog.statistics(origin[0])
        except Exception:
            return 10.0
        column = stats.columns.get(origin[1])
        if column is None or column.distinct_count <= 0:
            return 10.0
        return float(column.distinct_count)

    selectivities = []
    for part in parts:
        if isinstance(part, Binary) and part.op == "=":
            denominator = max(
                distinct_of(part.left), distinct_of(part.right), 1.0
            )
            selectivities.append(1.0 / denominator)
        else:
            selectivities.append(0.5)
    return selectivities


# ---------------------------------------------------------------------------
# rebuilding


def _rebuild(
    leaves: list[LogicalPlan],
    parts: list[Expression],
    part_leaves: list[frozenset],
    order: list[int],
    starts: list[int],
    widths: list[int],
) -> LogicalPlan:
    # new global slot of each old global slot
    new_starts: dict[int, int] = {}
    position = 0
    for leaf_index in order:
        new_starts[leaf_index] = position
        position += widths[leaf_index]

    def slot_fn(slot: int) -> int:
        leaf_index = _owner(slot, starts, widths)
        return new_starts[leaf_index] + (slot - starts[leaf_index])

    def remap(expression: Expression) -> Expression:
        from repro.plan.rebase import remap_slots

        return remap_slots(expression, slot_fn)

    unattached = list(range(len(parts)))
    plan: LogicalPlan = leaves[order[0]]
    placed: set[int] = {order[0]}
    for leaf_index in order[1:]:
        placed.add(leaf_index)
        applicable = [
            index
            for index in unattached
            if part_leaves[index] <= placed
        ]
        unattached = [i for i in unattached if i not in applicable]
        condition = conjoin(
            [remap(parts[index]) for index in applicable]
        )
        plan = L.Join(plan, leaves[leaf_index], L.JOIN_INNER, condition)
    if unattached:  # pragma: no cover - every part references some leaves
        plan = L.Filter(
            plan, conjoin([remap(parts[index]) for index in unattached])
        )

    # restoring projection: original global layout order
    expressions: list[Expression] = []
    columns: list[PlanColumn] = []
    for leaf_index, leaf in enumerate(leaves):
        for offset, column in enumerate(leaf.columns):
            expressions.append(
                ColumnRef(
                    column.name,
                    index=new_starts[leaf_index] + offset,
                )
            )
            columns.append(column)
    return L.Project(plan, tuple(expressions), tuple(columns))


def _owner(slot: int, starts: list[int], widths: list[int]) -> int:
    for index in range(len(starts) - 1, -1, -1):
        if slot >= starts[index]:
            return index
    raise AssertionError("slot out of range")
