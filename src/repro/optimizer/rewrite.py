"""Logical rewrite rules: decorrelation and predicate pushdown.

The rewrites run bottom-up through every plan, including the plans embedded
in subquery expressions. They preserve bound slot coordinates by rebasing
column references whenever a predicate crosses a join boundary.

Rules:

* **decorrelation** — an *uncorrelated* ``IN (SELECT ...)`` conjunct in a
  WHERE filter becomes a semi join; an uncorrelated ``NOT EXISTS`` becomes
  an anti join. Correlated subqueries stay as expressions and are handled
  by the executor's per-correlation memoization.
* **predicate pushdown** — filter conjuncts sink to the lowest operator
  that can evaluate them: through projections (by substitution), inner
  joins (splitting per side; cross-side conjuncts become the join
  condition), the preserved side of left joins, sorts, distincts, group-by
  keys of aggregates, and finally into scans, where the physical planner
  can turn them into index seeks.
"""

from __future__ import annotations

from dataclasses import replace

from repro.expr.nodes import (
    Binary,
    ColumnRef,
    Exists,
    Expression,
    InSubquery,
    SubqueryExpression,
    conjoin,
    conjuncts,
    referenced_slots,
    transform,
)
from repro.plan import logical as L
from repro.plan.builder import OneRow


def rewrite_plan(
    plan: L.LogicalPlan,
    cost_model=None,
) -> L.LogicalPlan:
    """Apply all logical rewrites and return the new plan.

    ``cost_model`` (a :class:`repro.optimizer.cost.CostModel`) enables the
    greedy join-reordering pass; without it, joins keep FROM order.
    """
    plan = _rewrite_subquery_plans(plan, cost_model)
    plan = _fold_plan(plan)
    plan = _decorrelate(plan)
    plan = _pushdown(plan, [])
    if cost_model is not None:
        from repro.optimizer.joinorder import reorder_joins

        plan = reorder_joins(plan, cost_model)
    return plan


# ---------------------------------------------------------------------------
# recursion into subquery expressions


def _rewrite_expression_plans(
    expression: Expression, cost_model=None
) -> Expression:
    def visit(node: Expression) -> Expression:
        if isinstance(node, SubqueryExpression) and node.plan is not None:
            return replace(node, plan=rewrite_plan(node.plan, cost_model))
        return node

    return transform(expression, visit)


def _rewrite_subquery_plans(
    plan: L.LogicalPlan, cost_model=None
) -> L.LogicalPlan:
    """Rewrite the plans inside every subquery expression of ``plan``."""

    def fix(expression: Expression) -> Expression:
        return _rewrite_expression_plans(expression, cost_model)

    if isinstance(plan, L.Scan):
        if plan.predicate is None:
            return plan
        return replace(plan, predicate=fix(plan.predicate))
    children = tuple(
        _rewrite_subquery_plans(child, cost_model)
        for child in plan.children()
    )
    if isinstance(plan, L.Filter):
        plan = replace(plan, predicate=fix(plan.predicate))
    elif isinstance(plan, L.Project):
        plan = replace(
            plan,
            expressions=tuple(fix(e) for e in plan.expressions),
        )
    elif isinstance(plan, L.Join) and plan.condition is not None:
        plan = replace(plan, condition=fix(plan.condition))
    elif isinstance(plan, L.Aggregate):
        plan = replace(
            plan,
            group_expressions=tuple(
                fix(e) for e in plan.group_expressions
            ),
            aggregates=tuple(
                replace(
                    spec,
                    argument=fix(spec.argument)
                    if spec.argument is not None
                    else None,
                )
                for spec in plan.aggregates
            ),
        )
    if children:
        plan = plan.replace_children(children)
    return plan


# ---------------------------------------------------------------------------
# constant folding


def _fold_plan(plan: L.LogicalPlan) -> L.LogicalPlan:
    from repro.optimizer.folding import fold_constants
    from repro.plan.logical import map_expressions

    return map_expressions(plan, fold_constants)


# ---------------------------------------------------------------------------
# decorrelation


def _is_uncorrelated(subplan: L.LogicalPlan) -> bool:
    from repro.exec.context import _free_outer_refs

    return not _free_outer_refs(subplan)


def _decorrelate(plan: L.LogicalPlan) -> L.LogicalPlan:
    children = tuple(_decorrelate(child) for child in plan.children())
    if children:
        plan = plan.replace_children(children)
    if not isinstance(plan, L.Filter):
        return plan

    child = plan.child
    remaining: list[Expression] = []
    for conjunct in conjuncts(plan.predicate):
        converted = _try_convert_conjunct(conjunct, child)
        if converted is None:
            remaining.append(conjunct)
        else:
            child = converted
    if child is plan.child:
        return plan
    predicate = conjoin(remaining)
    if predicate is None:
        return child
    return L.Filter(child, predicate)


def _try_convert_conjunct(
    conjunct: Expression, child: L.LogicalPlan
) -> L.LogicalPlan | None:
    """Convert one WHERE conjunct to a semi/anti join if possible."""
    from repro.expr.nodes import Unary

    if isinstance(conjunct, Unary) and conjunct.op == "NOT" \
            and isinstance(conjunct.operand, Exists):
        # normalize NOT (EXISTS ...) into a negated Exists node
        conjunct = replace(conjunct.operand, negated=not conjunct.operand.negated)
    if isinstance(conjunct, InSubquery) and not conjunct.negated:
        subplan = conjunct.plan
        if subplan is None or subplan.arity != 1:
            return None
        if not _is_uncorrelated(subplan):
            return None
        condition = Binary(
            "=",
            conjunct.operand,
            ColumnRef("__subquery_value", index=child.arity),
        )
        return L.Join(child, subplan, L.JOIN_SEMI, condition)
    if isinstance(conjunct, Exists) and conjunct.negated:
        subplan = conjunct.plan
        if subplan is None or not _is_uncorrelated(subplan):
            return None
        return L.Join(child, subplan, L.JOIN_ANTI, None)
    return None


# ---------------------------------------------------------------------------
# predicate pushdown


def _rebase(expression: Expression, offset: int) -> Expression:
    """Shift slot ordinals referencing this row by ``offset``.

    Follows references into subquery plans (a correlated subquery pushed
    across a join boundary addresses the same row via its outer levels).
    """
    from repro.plan.rebase import remap_slots

    return remap_slots(expression, lambda slot: slot + offset)


def _substitutable(
    expression: Expression, replacements: tuple[Expression, ...]
) -> bool:
    """Can every referenced slot be replaced by a plain column reference?"""
    from repro.plan.rebase import deep_referenced_slots

    return all(
        slot < len(replacements)
        and isinstance(replacements[slot], ColumnRef)
        and replacements[slot].outer_level == 0
        and replacements[slot].index is not None
        for slot in deep_referenced_slots(expression)
    )


def _substitute(
    expression: Expression, replacements: tuple[Expression, ...]
) -> Expression:
    """Remap slot references through column-reference replacements.

    Only valid when :func:`_substitutable` holds — i.e. the substitution
    is a pure slot renaming, safe to apply inside subquery plans too.
    """
    from repro.plan.rebase import remap_slots

    return remap_slots(
        expression, lambda slot: replacements[slot].index
    )


def _pushdown(
    plan: L.LogicalPlan, pending: list[Expression]
) -> L.LogicalPlan:
    """Sink ``pending`` conjuncts (bound over ``plan``'s output) into it."""
    if isinstance(plan, L.Filter):
        return _pushdown(plan.child, pending + conjuncts(plan.predicate))

    if isinstance(plan, L.Scan):
        if pending:
            merged = conjoin(
                conjuncts(plan.predicate) + pending
                if plan.predicate is not None
                else pending
            )
            return replace(plan, predicate=merged)
        return plan

    if isinstance(plan, OneRow):
        return _wrap(plan, pending)

    if isinstance(plan, L.Join):
        return _pushdown_join(plan, pending)

    if isinstance(plan, L.Project):
        sinkable: list[Expression] = []
        stuck: list[Expression] = []
        for conjunct in pending:
            if _substitutable(conjunct, plan.expressions):
                sinkable.append(_substitute(conjunct, plan.expressions))
            else:
                stuck.append(conjunct)
        child = _pushdown(plan.child, sinkable)
        return _wrap(plan.replace_children((child,)), stuck)

    if isinstance(plan, (L.Sort, L.Distinct)):
        # deterministic filters commute with sorting and duplicate removal
        child = _pushdown(plan.children()[0], pending)
        return plan.replace_children((child,))

    if isinstance(plan, L.Aggregate):
        from repro.plan.rebase import deep_referenced_slots

        group_count = len(plan.group_expressions)
        replacements = plan.group_expressions + tuple(
            ColumnRef("__agg") for __ in plan.aggregates
        )
        sinkable = []
        stuck = []
        for conjunct in pending:
            slots = deep_referenced_slots(conjunct)
            if slots and all(slot < group_count for slot in slots) \
                    and _substitutable(conjunct, replacements):
                sinkable.append(_substitute(conjunct, replacements))
            else:
                stuck.append(conjunct)
        child = _pushdown(plan.child, sinkable)
        return _wrap(plan.replace_children((child,)), stuck)

    if isinstance(plan, (L.Limit, L.Audit)):
        # filters do NOT commute below a limit; audit nodes are placed
        # post-rewrite and must not be disturbed
        child = _pushdown(plan.children()[0], [])
        return _wrap(plan.replace_children((child,)), pending)

    return _wrap(plan, pending)


def _references_child(expression: Expression) -> bool:
    return bool(referenced_slots(expression))


def _pushdown_join(plan: L.Join, pending: list[Expression]) -> L.LogicalPlan:
    from repro.plan.rebase import deep_referenced_slots

    left_arity = plan.left.arity
    left_parts: list[Expression] = []
    right_parts: list[Expression] = []
    condition_parts: list[Expression] = []
    above_parts: list[Expression] = []

    candidates = list(pending)
    if plan.kind == L.JOIN_INNER and plan.condition is not None:
        candidates += conjuncts(plan.condition)

    for conjunct in candidates:
        slots = deep_referenced_slots(conjunct)
        only_left = all(slot < left_arity for slot in slots)
        only_right = bool(slots) and all(slot >= left_arity for slot in slots)
        if plan.kind == L.JOIN_INNER:
            if only_left:
                left_parts.append(conjunct)
            elif only_right:
                right_parts.append(_rebase(conjunct, -left_arity))
            else:
                condition_parts.append(conjunct)
        elif plan.kind in (L.JOIN_SEMI, L.JOIN_ANTI):
            # output row is the left row: every pending conjunct references
            # left slots only and may sink into the left input
            left_parts.append(conjunct)
        else:  # LEFT OUTER: only left-side conjuncts sink (preserved side)
            if only_left:
                left_parts.append(conjunct)
            else:
                above_parts.append(conjunct)

    condition = plan.condition
    if plan.kind == L.JOIN_INNER:
        condition = conjoin(condition_parts)
    elif plan.kind == L.JOIN_LEFT and condition is not None:
        # ON conjuncts referencing only the right side sink into the right
        kept: list[Expression] = []
        sink_right: list[Expression] = []
        for conjunct in conjuncts(condition):
            slots = deep_referenced_slots(conjunct)
            if slots and all(slot >= left_arity for slot in slots):
                sink_right.append(_rebase(conjunct, -left_arity))
            else:
                kept.append(conjunct)
        condition = conjoin(kept)
        right_parts.extend(sink_right)

    new_left = _pushdown(plan.left, left_parts)
    new_right = _pushdown(plan.right, right_parts)
    new_join = L.Join(new_left, new_right, plan.kind, condition)
    return _wrap(new_join, above_parts)


def _wrap(plan: L.LogicalPlan, pending: list[Expression]) -> L.LogicalPlan:
    predicate = conjoin(pending)
    if predicate is None:
        return plan
    return L.Filter(plan, predicate)
