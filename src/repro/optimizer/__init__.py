"""Rule-based optimizer: logical rewrites, costing, physical planning.

The pipeline (``Optimizer.optimize``) mirrors the paper's integration
point: audit operators are injected *after* logical rewriting and *before*
physical planning (§IV-B), via the ``instrument`` hook.
"""

from repro.optimizer.optimizer import Optimizer
from repro.optimizer.physical import PhysicalPlanner

__all__ = ["Optimizer", "PhysicalPlanner"]
