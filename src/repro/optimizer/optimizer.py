"""The optimization pipeline.

``Optimizer.optimize`` runs:

1. logical rewrites (decorrelation, predicate pushdown);
2. the *instrumentation hook* — the audit subsystem inserts and places
   audit operators here, after logical and before physical optimization,
   exactly where the paper integrated them into SQL Server (§IV-B);
3. physical planning.

Rule application never reorders or simplifies across an ``Audit`` node:
the paper reports that ordinary filter transformations corrupted audit
placements (Examples 4.1/4.2), so our rule set treats audit operators as
opaque barriers (see ``rewrite._pushdown``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.exec.operators.base import PhysicalOperator
from repro.optimizer.physical import AuditViewResolver, PhysicalPlanner
from repro.optimizer.rewrite import rewrite_plan
from repro.plan.logical import LogicalPlan

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.catalog.catalog import Catalog

#: instruments a logically-optimized plan with audit operators
InstrumentHook = Callable[[LogicalPlan], LogicalPlan]


class Optimizer:
    """Logical rewrites + instrumentation hook + physical planning."""

    def __init__(
        self,
        catalog: "Catalog",
        audit_view_resolver: AuditViewResolver | None = None,
    ) -> None:
        self._planner = PhysicalPlanner(catalog, audit_view_resolver)
        from repro.optimizer.cost import CostModel

        self._cost = CostModel(catalog, audit_view_resolver)
        #: set False to keep joins in FROM order (ablation / debugging)
        self.join_reorder = True

    @property
    def join_strategy(self) -> str:
        return self._planner.join_strategy

    @join_strategy.setter
    def join_strategy(self, strategy: str) -> None:
        self._planner.join_strategy = strategy

    def optimize(
        self,
        plan: LogicalPlan,
        instrument: InstrumentHook | None = None,
    ) -> PhysicalOperator:
        """Full pipeline: rewritten, instrumented, compiled."""
        optimized = self.optimize_logical(plan, instrument)
        return self.compile(optimized)

    def optimize_logical(
        self,
        plan: LogicalPlan,
        instrument: InstrumentHook | None = None,
    ) -> LogicalPlan:
        """Logical phase only (exposed for plan-shape tests)."""
        rewritten = rewrite_plan(
            plan, cost_model=self._cost if self.join_reorder else None
        )
        if instrument is not None:
            rewritten = instrument(rewritten)
        return rewritten

    def compile(self, plan: LogicalPlan) -> PhysicalOperator:
        return self._planner.compile(plan)
