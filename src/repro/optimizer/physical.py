"""Physical planning: logical plans to executable operator trees.

Mapping is 1:1 per node — deliberately so: the audit operator's position,
fixed by the placement algorithm on the logical plan, must survive into
execution (§IV-B). The planner's choices are local: access path per scan
(full scan vs index seek vs index range), join algorithm (hash vs nested
loop) with hash build side picked by estimated cardinality, and Sort+Limit
fusion into a bounded-heap top-k.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Container

from repro.errors import PlanError
from repro.expr.nodes import (
    Binary,
    ColumnRef,
    Expression,
    conjoin,
    conjuncts,
    contains_subquery,
    referenced_slots,
)
from repro.exec.operators import (
    AuditOperator,
    DistinctOperator,
    FilterOperator,
    GatherSource,
    HashAggregate,
    HashJoin,
    IndexNestedLoopJoin,
    IndexRange,
    IndexSeek,
    LimitOperator,
    NestedLoopJoin,
    OneRowSource,
    PhysicalOperator,
    ProjectOperator,
    SortOperator,
    TableScan,
    TopKOperator,
)
from repro.optimizer.cost import CostModel
from repro.plan import logical as L
from repro.plan.builder import OneRow

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.catalog.catalog import Catalog

#: resolves an audit expression name to its sensitive-ID container
AuditViewResolver = Callable[[str], Container]

#: a range predicate uses an index only below this estimated selectivity
_INDEX_RANGE_THRESHOLD = 0.25

#: join strategies: 'auto' costs index-NL vs hash, the others force one
JOIN_AUTO = "auto"
JOIN_FORCE_HASH = "hash"
JOIN_FORCE_INDEX_NL = "index-nl"


class PhysicalPlanner:
    """Compiles logical plans into physical operator trees."""

    def __init__(
        self,
        catalog: "Catalog",
        audit_view_resolver: AuditViewResolver | None = None,
        node_wrapper: Callable[
            [L.LogicalPlan, PhysicalOperator], PhysicalOperator
        ] | None = None,
    ) -> None:
        self._catalog = catalog
        self._cost = CostModel(catalog, audit_view_resolver)
        self._audit_view_resolver = audit_view_resolver
        self._node_wrapper = node_wrapper
        #: 'auto' | 'hash' | 'index-nl' (see JOIN_* constants)
        self.join_strategy = JOIN_AUTO

    # ------------------------------------------------------------------

    def compile(self, plan: L.LogicalPlan) -> PhysicalOperator:
        """Compile ``plan``, applying the node wrapper (if any) per node.

        The wrapper hook lets the offline auditor splice materializing
        cache operators around subtrees that do not read the sensitive
        table, so repeated ``Q(D − t)`` runs share their results.
        """
        operator = self._compile_node(plan)
        if self._node_wrapper is not None:
            operator = self._node_wrapper(plan, operator)
        return operator

    def _compile_node(self, plan: L.LogicalPlan) -> PhysicalOperator:
        if isinstance(plan, L.Scan):
            return self._compile_scan(plan)
        if isinstance(plan, OneRow):
            return OneRowSource()
        if isinstance(plan, L.Gather):
            return GatherSource(plan.key)
        if isinstance(plan, L.Filter):
            return FilterOperator(self.compile(plan.child), plan.predicate)
        if isinstance(plan, L.Project):
            return ProjectOperator(self.compile(plan.child), plan.expressions)
        if isinstance(plan, L.Join):
            return self._compile_join(plan)
        if isinstance(plan, L.Aggregate):
            return HashAggregate(
                self.compile(plan.child),
                plan.group_expressions,
                plan.aggregates,
            )
        if isinstance(plan, L.Sort):
            return SortOperator(self.compile(plan.child), plan.keys)
        if isinstance(plan, L.Limit):
            if isinstance(plan.child, L.Sort):
                return TopKOperator(
                    self.compile(plan.child.child),
                    plan.child.keys,
                    plan.count,
                )
            return LimitOperator(self.compile(plan.child), plan.count)
        if isinstance(plan, L.Distinct):
            return DistinctOperator(self.compile(plan.child))
        if isinstance(plan, L.Audit):
            if self._audit_view_resolver is None:
                raise PlanError(
                    "plan contains an audit operator but the planner has "
                    "no audit view resolver"
                )
            sensitive_ids = self._audit_view_resolver(plan.audit_name)
            return AuditOperator(
                self.compile(plan.child),
                plan.audit_name,
                plan.id_slot,
                sensitive_ids,
            )
        raise PlanError(f"cannot compile {type(plan).__name__}")

    # ------------------------------------------------------------------
    # scans and access paths

    def _compile_scan(self, plan: L.Scan) -> PhysicalOperator:
        table = self._catalog.table(plan.table_name)
        if plan.predicate is None:
            return TableScan(table)
        remaining = conjuncts(plan.predicate)

        # equality seek: col = <row-independent expression>
        for index_name, index in table.secondary_indexes().items():
            if len(index.positions) != 1:
                continue
            position = index.positions[0]
            for conjunct in remaining:
                key = _equality_key(conjunct, position)
                if key is not None:
                    residual = conjoin(
                        [c for c in remaining if c is not conjunct]
                    )
                    return IndexSeek(table, index_name, (key,), residual)

        # range scan: col </<=/>/>= <row-independent expression>
        seek = self._try_index_range(table, remaining)
        if seek is not None:
            return seek
        return TableScan(table, plan.predicate)

    def _try_index_range(
        self, table, remaining: list[Expression]
    ) -> PhysicalOperator | None:
        from repro.storage.index import OrderedIndex

        for index_name, index in table.secondary_indexes().items():
            if not isinstance(index, OrderedIndex) or len(index.positions) != 1:
                continue
            position = index.positions[0]
            low = high = None
            low_inclusive = high_inclusive = True
            used: list[Expression] = []
            for conjunct in remaining:
                bound = _range_bound(conjunct, position)
                if bound is None:
                    continue
                op, expression = bound
                if op in (">", ">=") and low is None:
                    low, low_inclusive = expression, op == ">="
                    used.append(conjunct)
                elif op in ("<", "<=") and high is None:
                    high, high_inclusive = expression, op == "<="
                    used.append(conjunct)
            if low is None and high is None:
                continue
            column_name = table.schema.columns[position].name
            stats = self._catalog.statistics(table.schema.name)
            column_stats = stats.columns.get(column_name)
            if column_stats is not None:
                from repro.expr.nodes import Literal

                low_value = low.value if isinstance(low, Literal) else None
                high_value = high.value if isinstance(high, Literal) else None
                if low_value is None and high_value is None:
                    continue  # bounds unknown at plan time: prefer scan
                selectivity = column_stats.selectivity_range(
                    low_value, high_value
                )
                if selectivity > _INDEX_RANGE_THRESHOLD:
                    continue
            residual = conjoin([c for c in remaining if c not in used])
            return IndexRange(
                table, index_name, low, high,
                low_inclusive, high_inclusive, residual,
            )
        return None

    # ------------------------------------------------------------------
    # joins

    def _compile_join(self, plan: L.Join) -> PhysicalOperator:
        if self.join_strategy != JOIN_FORCE_HASH:
            index_nl = self._try_index_nl_join(plan)
            if index_nl is not None:
                return index_nl

        left = self.compile(plan.left)
        right = self.compile(plan.right)
        right_arity = plan.right.arity
        left_arity = plan.left.arity

        equi_left: list[int] = []
        equi_right: list[int] = []
        residual_parts: list[Expression] = []
        for conjunct in conjuncts(plan.condition) if plan.condition else []:
            pair = _equi_pair(conjunct, left_arity)
            if pair is not None:
                equi_left.append(pair[0])
                equi_right.append(pair[1])
            else:
                residual_parts.append(conjunct)

        if equi_left:
            build_left = False
            if plan.kind == L.JOIN_INNER:
                left_rows = self._cost.estimate_rows(plan.left)
                right_rows = self._cost.estimate_rows(plan.right)
                build_left = left_rows < right_rows
            return HashJoin(
                left,
                right,
                plan.kind,
                tuple(equi_left),
                tuple(equi_right),
                conjoin(residual_parts),
                right_arity,
                build_left=build_left,
            )
        return NestedLoopJoin(left, right, plan.kind, plan.condition, right_arity)

    def _try_index_nl_join(self, plan: L.Join) -> PhysicalOperator | None:
        """Compile as an apply-style index nested-loop join if profitable.

        Requirements: inner (or left-outer) join whose right input is a
        scan — possibly wrapped in audit operators — over a table with a
        single-column index matching one equi-join key, and no correlated
        references already inside the right subtree (pushing the seek key
        would otherwise require shifting their outer levels).

        The seek conjunct is pushed *below* any audit operator so each
        iteration is an index seek. This cannot introduce audit false
        negatives: an inner-join row the seek never fetches has no join
        partner, so deleting it cannot change the query result and it is
        not accessed under Definition 2.3.
        """
        from dataclasses import replace as _replace

        from repro.exec.context import _free_outer_refs

        if plan.kind not in (L.JOIN_INNER, L.JOIN_LEFT):
            return None
        if plan.condition is None:
            return None
        # peel audit operators off the right subtree
        audits: list[L.Audit] = []
        inner_plan = plan.right
        while isinstance(inner_plan, L.Audit):
            audits.append(inner_plan)
            inner_plan = inner_plan.child
        if not isinstance(inner_plan, L.Scan):
            return None
        if _free_outer_refs(plan.right):
            return None

        left_arity = plan.left.arity
        parts = conjuncts(plan.condition)
        chosen: tuple[int, int] | None = None
        chosen_conjunct: Expression | None = None
        index_name: str | None = None
        table = self._catalog.table(inner_plan.table_name)
        for conjunct in parts:
            pair = _equi_pair(conjunct, left_arity)
            if pair is None:
                continue
            for name, index in table.secondary_indexes().items():
                if index.positions == (pair[1],):
                    chosen, chosen_conjunct, index_name = pair, conjunct, name
                    break
            if chosen is not None:
                break
        if chosen is None:
            return None

        if self.join_strategy == JOIN_AUTO:
            left_rows = self._cost.estimate_rows(plan.left)
            right_rows = self._cost.estimate_rows(plan.right)
            if not (left_rows < right_rows * 0.5):
                return None
            if plan.kind != L.JOIN_INNER:
                return None  # conservative in auto mode

        left_slot, right_slot = chosen
        column_name = table.schema.columns[right_slot].name
        seek = Binary(
            "=",
            ColumnRef(column_name, index=right_slot),
            ColumnRef("__outer", index=left_slot, outer_level=1),
        )
        merged = conjoin(
            ([inner_plan.predicate] if inner_plan.predicate is not None
             else []) + [seek]
        )
        new_inner: L.LogicalPlan = _replace(inner_plan, predicate=merged)
        for audit in reversed(audits):
            new_inner = _replace(audit, child=new_inner)

        # residuals stay bound over the combined (left ++ right) row
        residual_parts = [c for c in parts if c is not chosen_conjunct]
        residual = conjoin(residual_parts)
        return IndexNestedLoopJoin(
            self.compile(plan.left),
            self.compile(new_inner),
            plan.kind,
            residual,
            plan.right.arity,
        )


def _equality_key(conjunct: Expression, position: int) -> Expression | None:
    """Match ``col@position = <row-independent expr>`` (either side)."""
    if not isinstance(conjunct, Binary) or conjunct.op != "=":
        return None
    for column_side, value_side in (
        (conjunct.left, conjunct.right),
        (conjunct.right, conjunct.left),
    ):
        if (
            isinstance(column_side, ColumnRef)
            and column_side.outer_level == 0
            and column_side.index == position
            and not referenced_slots(value_side)
            and not contains_subquery(value_side)
        ):
            return value_side
    return None


def _range_bound(
    conjunct: Expression, position: int
) -> tuple[str, Expression] | None:
    """Match ``col@position <op> <row-independent expr>``; normalizes side."""
    if not isinstance(conjunct, Binary):
        return None
    op = conjunct.op
    if op not in ("<", "<=", ">", ">="):
        return None
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
    left, right = conjunct.left, conjunct.right
    if (
        isinstance(left, ColumnRef)
        and left.outer_level == 0
        and left.index == position
        and not referenced_slots(right)
        and not contains_subquery(right)
    ):
        return op, right
    if (
        isinstance(right, ColumnRef)
        and right.outer_level == 0
        and right.index == position
        and not referenced_slots(left)
        and not contains_subquery(left)
    ):
        return flipped[op], left
    return None


def _equi_pair(
    conjunct: Expression, left_arity: int
) -> tuple[int, int] | None:
    """Match ``left_col = right_col`` across a join; returns slot pair."""
    if not isinstance(conjunct, Binary) or conjunct.op != "=":
        return None
    left, right = conjunct.left, conjunct.right
    if not (
        isinstance(left, ColumnRef)
        and isinstance(right, ColumnRef)
        and left.outer_level == 0
        and right.outer_level == 0
        and left.index is not None
        and right.index is not None
    ):
        return None
    if left.index < left_arity <= right.index:
        return left.index, right.index - left_arity
    if right.index < left_arity <= left.index:
        return right.index, left.index - left_arity
    return None
