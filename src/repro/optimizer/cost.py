"""Cardinality estimation for the physical planner.

A classical textbook model: per-conjunct selectivities multiplied together,
equi-join cardinality via distinct-value counts, and fixed fallbacks when
statistics cannot help. The estimates drive only *relative* choices (hash
build side, index-vs-scan, audit-operator placement), so rough numbers
suffice.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Container

from repro.expr.nodes import (
    Between,
    Binary,
    ColumnRef,
    Expression,
    InList,
    IsNull,
    Like,
    Literal,
    conjuncts,
)
from repro.plan import logical as L
from repro.plan.builder import OneRow

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.catalog.catalog import Catalog

_DEFAULT_EQ_SELECTIVITY = 0.1
_DEFAULT_RANGE_SELECTIVITY = 0.3
_DEFAULT_OTHER_SELECTIVITY = 0.5

#: relative per-probe cost of a scan-fused audit probe under the columnar
#: executor: the probe is one ``set.intersection`` sweep over the stored
#: ID column instead of a Python-loop hash probe per row, so probes at a
#: fused leaf are priced well below probes above joins/filters (which run
#: over re-pivoted batches at row-mode speed)
COLUMNAR_FUSED_PROBE_WEIGHT = 0.25


class CostModel:
    """Estimates output cardinalities of logical plans."""

    def __init__(
        self,
        catalog: "Catalog",
        audit_view_resolver: Callable[[str], Container] | None = None,
        columnar: bool = False,
    ) -> None:
        self._catalog = catalog
        self._audit_view_resolver = audit_view_resolver
        self._columnar = columnar

    # ------------------------------------------------------------------

    def estimate_rows(self, plan: L.LogicalPlan) -> float:
        if isinstance(plan, L.Scan):
            return self._estimate_scan(plan)
        if isinstance(plan, OneRow):
            return 1.0
        if isinstance(plan, L.Filter):
            base = self.estimate_rows(plan.child)
            return base * self._predicate_selectivity(plan.predicate, plan.child)
        if isinstance(plan, L.Project):
            return self.estimate_rows(plan.child)
        if isinstance(plan, L.Audit):
            return self.estimate_rows(plan.child)
        if isinstance(plan, L.Join):
            return self._estimate_join(plan)
        if isinstance(plan, L.Aggregate):
            base = self.estimate_rows(plan.child)
            if not plan.group_expressions:
                return 1.0
            return max(1.0, base / 10.0)
        if isinstance(plan, L.Sort):
            return self.estimate_rows(plan.child)
        if isinstance(plan, L.Limit):
            return min(float(plan.count), self.estimate_rows(plan.child))
        if isinstance(plan, L.Distinct):
            return max(1.0, self.estimate_rows(plan.child) / 2.0)
        return 1000.0

    # ------------------------------------------------------------------
    # audit probe estimation (data-skipping-aware placement)

    def estimate_audit_probes(self, plan: L.Audit) -> float:
        """Expected per-row probes an audit operator will perform.

        Normally the child's cardinality. When the operator sits directly
        over a scan of the sensitive table it fuses with the scan's block
        stream and consults the per-block sensitive-ID sketch, probing
        only admitted blocks — the estimate shrinks by the fraction of
        blocks the sketch admits for the view's current ID set.
        """
        base = self.estimate_rows(plan.child)
        child = plan.child
        if not isinstance(child, L.Scan):
            return base
        if self._audit_view_resolver is None:
            return base
        try:
            view = self._audit_view_resolver(plan.audit_name)
            expression = view.expression
            if child.table_name != expression.sensitive_table:
                return base
            fraction = self._catalog.sketch_block_selectivity(
                child.table_name, expression.partition_by, view.ids()
            )
        except Exception:  # resolver/view shape mismatch: no discount
            return base
        return base * fraction

    def estimate_plan_probes(self, plan: L.LogicalPlan) -> float:
        """Total estimated audit probes over every operator in ``plan``."""
        from repro.audit.placement import audit_operators

        return sum(
            self.estimate_audit_probes(operator)
            for operator in audit_operators(plan)
        )

    def estimate_plan_cost(self, plan: L.LogicalPlan) -> float:
        """Probe *cost* of a plan — what 'cost' placement minimizes.

        Identical to :meth:`estimate_plan_probes` in the row and batch
        executors. Under the columnar executor, probes at an audit
        operator fused with a scan (sitting directly over one) are
        weighted by :data:`COLUMNAR_FUSED_PROBE_WEIGHT`, so leaf
        placement can win even when it probes more rows — the probe
        count stays an honest count, only its price per probe changes.
        """
        from repro.audit.placement import audit_operators

        total = 0.0
        for operator in audit_operators(plan):
            probes = self.estimate_audit_probes(operator)
            if self._columnar and isinstance(operator.child, L.Scan):
                probes *= COLUMNAR_FUSED_PROBE_WEIGHT
            total += probes
        return total

    # ------------------------------------------------------------------

    def _estimate_scan(self, plan: L.Scan) -> float:
        try:
            stats = self._catalog.statistics(plan.table_name)
        except Exception:  # missing table stats: arbitrary default
            return 1000.0
        rows = float(stats.row_count)
        if plan.predicate is not None:
            rows *= self._predicate_selectivity(plan.predicate, plan)
        return max(rows, 0.0)

    def _estimate_join(self, plan: L.Join) -> float:
        left = self.estimate_rows(plan.left)
        right = self.estimate_rows(plan.right)
        if plan.kind == L.JOIN_SEMI:
            return left * 0.5
        if plan.kind == L.JOIN_ANTI:
            return left * 0.5
        if plan.condition is None:
            product = left * right
        else:
            selectivity = 1.0
            for conjunct in conjuncts(plan.condition):
                selectivity *= self._join_conjunct_selectivity(
                    conjunct, plan
                )
            product = left * right * selectivity
        if plan.kind == L.JOIN_LEFT:
            return max(product, left)
        return product

    def _join_conjunct_selectivity(
        self, conjunct: Expression, plan: L.Join
    ) -> float:
        if isinstance(conjunct, Binary) and conjunct.op == "=":
            left_distinct = self._distinct_of(conjunct.left, plan)
            right_distinct = self._distinct_of(conjunct.right, plan)
            denominator = max(left_distinct, right_distinct, 1.0)
            return 1.0 / denominator
        return _DEFAULT_OTHER_SELECTIVITY

    def _distinct_of(self, expression: Expression, plan: L.LogicalPlan
                     ) -> float:
        if not isinstance(expression, ColumnRef) or expression.index is None:
            return 10.0
        column = plan.columns[expression.index] if (
            expression.index < len(plan.columns)
        ) else None
        if column is None or column.origin is None:
            return 10.0
        table_name, column_name = column.origin
        try:
            stats = self._catalog.statistics(table_name)
        except Exception:
            return 10.0
        column_stats = stats.columns.get(column_name)
        if column_stats is None or column_stats.distinct_count <= 0:
            return 10.0
        return float(column_stats.distinct_count)

    # ------------------------------------------------------------------

    def _predicate_selectivity(
        self, predicate: Expression, child: L.LogicalPlan
    ) -> float:
        selectivity = 1.0
        for conjunct in conjuncts(predicate):
            selectivity *= self._conjunct_selectivity(conjunct, child)
        return min(max(selectivity, 0.0), 1.0)

    def _conjunct_selectivity(
        self, conjunct: Expression, child: L.LogicalPlan
    ) -> float:
        if isinstance(conjunct, Binary) and conjunct.op in (
            "=", "<", "<=", ">", ">=", "<>"
        ):
            column, constant = _column_and_constant(conjunct)
            if column is not None:
                stats = self._column_stats(column, child)
                if stats is not None:
                    if conjunct.op == "=":
                        return stats.selectivity_equals(1)
                    if conjunct.op == "<>":
                        return 1.0 - stats.selectivity_equals(1)
                    if constant is not None:
                        if conjunct.op in ("<", "<="):
                            return stats.selectivity_range(None, constant)
                        return stats.selectivity_range(constant, None)
            if conjunct.op == "=":
                return _DEFAULT_EQ_SELECTIVITY
            return _DEFAULT_RANGE_SELECTIVITY
        if isinstance(conjunct, Between):
            return _DEFAULT_RANGE_SELECTIVITY
        if isinstance(conjunct, (InList, Like, IsNull)):
            return _DEFAULT_RANGE_SELECTIVITY
        return _DEFAULT_OTHER_SELECTIVITY

    def _column_stats(self, column: ColumnRef, child: L.LogicalPlan):
        if column.index is None or column.index >= len(child.columns):
            return None
        plan_column = child.columns[column.index]
        if plan_column.origin is None:
            return None
        table_name, column_name = plan_column.origin
        try:
            stats = self._catalog.statistics(table_name)
        except Exception:
            return None
        return stats.columns.get(column_name)


def _column_and_constant(
    conjunct: Binary,
) -> tuple[ColumnRef | None, object]:
    """Extract (column, literal constant) from a comparison, either side."""
    left, right = conjunct.left, conjunct.right
    if isinstance(left, ColumnRef) and left.outer_level == 0:
        constant = right.value if isinstance(right, Literal) else None
        return left, constant
    if isinstance(right, ColumnRef) and right.outer_level == 0:
        constant = left.value if isinstance(left, Literal) else None
        return right, constant
    return None, None
