"""Execution context and session state.

An :class:`ExecutionContext` is created per statement execution. It carries:

* the :class:`Session` (user identity, SQL text, clock) — read by the
  ``user_id()`` / ``sql_text()`` / ``now()`` functions that the paper's
  trigger actions use;
* query parameters;
* the outer-row stack for correlated subqueries;
* the subquery runner with per-correlation memoization;
* *tombstones* — per-table sets of hidden primary keys. The offline auditor
  (Definition 2.3: run ``Q(D − t)``) hides the sensitive tuple via a
  tombstone instead of physically deleting it;
* the ACCESSED internal state (§II): partition-by IDs recorded by audit
  operators during this execution, grouped by audit-expression name;
* the *lineage table* — when set, ``rows_lineage`` executions tag every
  row with the set of this table's primary keys it was derived from (the
  lineage-based offline auditor's single instrumented run).
"""

from __future__ import annotations

import datetime
import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable

from repro.errors import ExecutionError

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.plan.logical import LogicalPlan
    from repro.exec.operators.base import PhysicalOperator

#: compiles a logical plan into a physical one (provided by the engine)
SubqueryCompiler = Callable[["LogicalPlan"], "PhysicalOperator"]

#: rows per batch in batch-at-a-time execution (tuned for list-comp
#: filter/project loops; large enough to amortize generator switches,
#: small enough to keep working sets cache-friendly)
DEFAULT_BATCH_SIZE = 1024


class Session:
    """Per-connection state visible to session functions.

    The session is shared by every thread serving queries on one
    :class:`~repro.database.Database`, so the fields that are *per-query*
    rather than per-connection are thread-isolated:

    * ``sql_text`` — assignments land in thread-local storage; each
      serving thread (and the async trigger worker, via :meth:`override`)
      sees the text of the query *it* is executing, never a concurrent
      thread's;
    * ``user_id`` — assignment changes the connection-wide identity (the
      shell's ``.user`` command), but a thread-local override installed
      by :meth:`override` wins, which is how deferred trigger actions
      report the identity captured when their query ran.
    """

    __slots__ = ("_base_user_id", "_clock", "_local")

    def __init__(
        self,
        user_id: str = "anonymous",
        clock: Callable[[], datetime.datetime] | None = None,
    ) -> None:
        self._base_user_id = user_id
        self._clock = clock or datetime.datetime.now
        self._local = threading.local()

    @property
    def user_id(self) -> str:
        override = getattr(self._local, "user_id", None)
        return self._base_user_id if override is None else override

    @user_id.setter
    def user_id(self, value: str) -> None:
        self._base_user_id = value

    @property
    def sql_text(self) -> str:
        return getattr(self._local, "sql_text", "")

    @sql_text.setter
    def sql_text(self, value: str) -> None:
        self._local.sql_text = value

    @contextmanager
    def override(self, sql_text: str, user_id: str):
        """Thread-locally impersonate the query a trigger batch captured."""
        previous_sql = getattr(self._local, "sql_text", "")
        previous_user = getattr(self._local, "user_id", None)
        self._local.sql_text = sql_text
        self._local.user_id = user_id
        try:
            yield self
        finally:
            self._local.sql_text = previous_sql
            self._local.user_id = previous_user

    def now(self) -> datetime.datetime:
        return self._clock()


class ExecutionContext:
    """Mutable state threaded through one statement execution."""

    __slots__ = (
        "session",
        "_parameters",
        "_compile_subquery",
        "_outer_rows",
        "_subquery_plans",
        "_subquery_memo",
        "_free_refs_cache",
        "tombstones",
        "accessed",
        "audit_probe_count",
        "audit_probe_counts",
        "batch_size",
        "lineage_table",
        "data_skipping",
        "blocks_scanned",
        "blocks_zone_skipped",
        "audit_blocks_skipped",
        "audit_probes_skipped",
        "lineage_candidates",
        "lineage_id_position",
        "gather_rows",
        "cancel_token",
    )

    def __init__(
        self,
        session: Session | None = None,
        parameters: dict[str, object] | None = None,
        compile_subquery: SubqueryCompiler | None = None,
        base_outer_rows: tuple[tuple, ...] = (),
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        self.session = session or Session()
        self._parameters = parameters or {}
        self._compile_subquery = compile_subquery
        #: rows of enclosing scopes, innermost last; seeded with e.g. a
        #: trigger's NEW row so trigger bodies can reference it
        self._outer_rows: list[tuple] = list(base_outer_rows)
        self._subquery_plans: dict[int, "PhysicalOperator"] = {}
        self._subquery_memo: dict[tuple, list[tuple]] = {}
        self._free_refs_cache: dict[int, tuple[tuple[int, int], ...]] = {}
        #: table name -> set of primary keys hidden from scans
        self.tombstones: dict[str, set] = {}
        #: audit expression name -> set of accessed partition-by IDs
        self.accessed: dict[str, set] = {}
        #: number of rows inspected by audit operators (for benchmarks)
        self.audit_probe_count = 0
        #: per-audit-expression probe counts (bench harness reads these)
        self.audit_probe_counts: dict[str, int] = {}
        #: rows per batch for ``rows_batched`` execution
        self.batch_size = batch_size
        #: sensitive table whose primary keys ``rows_lineage`` tags rows
        #: with (None = lineage-capturing execution disabled)
        self.lineage_table: str | None = None
        #: consult per-block zone maps / sensitive-ID sketches to skip
        #: blocks (the engine's ``skipping`` knob; skips are conservative,
        #: so results, ACCESSED, and verdicts are knob-independent)
        self.data_skipping = True
        #: blocks materialized by table scans this execution
        self.blocks_scanned = 0
        #: blocks skipped via zone maps (predicate provably unsatisfiable)
        self.blocks_zone_skipped = 0
        #: blocks whose audit probe pass was skipped via the ID sketch
        self.audit_blocks_skipped = 0
        #: per-row audit probes avoided by sketch-skipped blocks
        self.audit_probes_skipped = 0
        #: candidate partition-by IDs of the offline lineage run: blocks
        #: of ``lineage_table`` provably disjoint from these IDs tag rows
        #: with empty lineage instead of their primary key
        self.lineage_candidates: set | None = None
        #: position of the partition-by column in ``lineage_table``
        self.lineage_id_position: int | None = None
        #: gather key -> merged per-shard rows, installed by the cluster
        #: coordinator before running a plan containing ``Gather`` leaves
        self.gather_rows: dict[int, list[tuple]] | None = None
        #: cooperative cancellation token; ``collect_rows`` checkpoints
        #: raise ``OperationCancelledError`` once it is cancelled
        self.cancel_token = None

    def check_cancelled(self) -> None:
        """Cooperative checkpoint: raise if this execution was cancelled."""
        token = self.cancel_token
        if token is not None:
            token.raise_if_cancelled()

    # ------------------------------------------------------------------
    # parameters

    def parameter(self, name: str) -> object:
        try:
            return self._parameters[name]
        except KeyError:
            raise ExecutionError(f"missing query parameter :{name}") from None

    # ------------------------------------------------------------------
    # outer rows (correlated subqueries)

    def outer_row(self, level: int) -> tuple:
        """The row ``level`` scopes up (1 = immediately enclosing)."""
        if level <= 0 or level > len(self._outer_rows):
            raise ExecutionError(
                f"no outer row at level {level} "
                f"(stack depth {len(self._outer_rows)})"
            )
        return self._outer_rows[-level]

    def push_outer_row(self, row: tuple) -> None:
        self._outer_rows.append(row)

    def pop_outer_row(self) -> None:
        self._outer_rows.pop()

    # ------------------------------------------------------------------
    # subqueries

    def run_subquery(
        self, plan: "LogicalPlan | None", current_row: tuple
    ) -> list[tuple]:
        """Execute a bound subquery plan for ``current_row``.

        Results are memoized per (plan, correlation values): an
        uncorrelated subquery runs exactly once per statement.
        """
        if plan is None:
            raise ExecutionError("subquery expression was never bound")
        if self._compile_subquery is None:
            raise ExecutionError("context cannot execute subqueries")
        plan_key = id(plan)
        free_refs = self._free_refs_cache.get(plan_key)
        if free_refs is None:
            free_refs = _free_outer_refs(plan)
            self._free_refs_cache[plan_key] = free_refs
        correlation = tuple(
            current_row[index] if level == 1 else self.outer_row(level - 1)[index]
            for level, index in free_refs
        )
        memo_key = (plan_key, correlation)
        cached = self._subquery_memo.get(memo_key)
        if cached is not None:
            return cached
        physical = self._subquery_plans.get(plan_key)
        if physical is None:
            physical = self._compile_subquery(plan)
            self._subquery_plans[plan_key] = physical
        self.push_outer_row(current_row)
        try:
            rows = list(physical.rows(self))
        finally:
            self.pop_outer_row()
        self._subquery_memo[memo_key] = rows
        return rows

    # ------------------------------------------------------------------
    # tombstones (offline auditor support)

    def is_tombstoned(self, table_name: str, primary_key: tuple) -> bool:
        hidden = self.tombstones.get(table_name)
        return hidden is not None and primary_key in hidden

    # ------------------------------------------------------------------
    # ACCESSED internal state

    def record_access(self, audit_name: str, value: object) -> None:
        self.accessed.setdefault(audit_name, set()).add(value)

    def add_probes(self, audit_name: str, count: int) -> None:
        """Account ``count`` audit probes globally and per expression."""
        self.audit_probe_count += count
        self.audit_probe_counts[audit_name] = (
            self.audit_probe_counts.get(audit_name, 0) + count
        )


def _free_outer_refs(plan: "LogicalPlan") -> tuple[tuple[int, int], ...]:
    """Free outer references of a subquery plan, as (level, slot) pairs.

    A reference is *free* when its ``outer_level`` exceeds its nesting
    depth inside ``plan`` — it then addresses a row of the enclosing
    statement. Level is reported relative to ``plan``'s root (1 = the row
    the enclosing expression is being evaluated over).
    """
    from repro.expr.nodes import ColumnRef, SubqueryExpression
    from repro.plan import logical as L
    from repro.plan.builder import OneRow  # local import: cycle guard

    found: set[tuple[int, int]] = set()

    def visit_expression(expression, depth: int) -> None:
        for node in expression.walk():
            if isinstance(node, ColumnRef) and node.outer_level > depth:
                found.add((node.outer_level - depth, node.index))
            if isinstance(node, SubqueryExpression) and node.plan is not None:
                visit_plan(node.plan, depth + 1)

    def visit_plan(node, depth: int) -> None:
        for expression in _plan_expressions(node):
            visit_expression(expression, depth)
        for child in node.children():
            visit_plan(child, depth)

    def _plan_expressions(node):
        if isinstance(node, (L.Scan,)) and node.predicate is not None:
            yield node.predicate
        elif isinstance(node, L.Filter):
            yield node.predicate
        elif isinstance(node, L.Project):
            yield from node.expressions
        elif isinstance(node, L.Join) and node.condition is not None:
            yield node.condition
        elif isinstance(node, L.Aggregate):
            yield from node.group_expressions
            for spec in node.aggregates:
                if spec.argument is not None:
                    yield spec.argument
        elif isinstance(node, L.Sort):
            for key in node.keys:
                yield key.expression
        elif isinstance(node, (L.Limit, L.Distinct, L.Audit, OneRow)):
            return

    visit_plan(plan, 0)
    return tuple(sorted(found))
