"""Columnar batches for the vectorized execution mode.

A :class:`ColumnBatch` is the unit of exchange between operators in
``rows_columnar`` mode: one Python list (or tuple) per column, all of the
same underlying length, plus a *selection vector* — a sequence of row
indices that are logically alive, in row order. ``selection is None``
means "all rows", the common case straight out of a scan, so filters can
narrow a batch without touching the column data: they replace the
selection vector and leave the columns shared with the upstream batch.

The layout mirrors the morsel-style columnar engines (one vector of
values per attribute, late materialization through a selection vector):
an operator that needs row-tuples (hash join build keys, DISTINCT's seen
set, sort buffers) pivots with :meth:`ColumnBatch.to_rows` at its
boundary and re-pivots its output with :meth:`ColumnBatch.from_rows` —
the documented mode-boundary conversion rule. Everything that can stay
columnar (filter sweeps, simple projections, the audit probe) operates
on the columns directly.

Zero-arity rows (a FROM-less ``SELECT``) are represented by an empty
``columns`` tuple with a positive ``length`` — ``to_rows`` then yields
``length`` empty tuples, so the converters are total.

Scans hand out :class:`LazyColumns` instead of an eager tuple: a wide
table pivoted eagerly would copy every column out of block storage even
though a typical query sweeps one or two. The lazy container pivots a
column on first touch and keeps the backing row list around so
``to_rows`` on an unfiltered scan batch is a plain list copy, not a
pivot-then-zip round trip.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

__all__ = ["ColumnBatch", "LazyColumns", "columnar_rows"]


class LazyColumns:
    """Column views over a row list, pivoted per column on first touch.

    Duck-types as the ``columns`` sequence of a :class:`ColumnBatch`
    (``len``, indexing, iteration). ``rows`` stays public: ``to_rows``
    short-circuits through it, skipping the pivot entirely.
    """

    __slots__ = ("rows", "_materialized")

    def __init__(self, rows: Sequence[tuple], width: int) -> None:
        self.rows = rows
        self._materialized: list[list | None] = [None] * width

    def __len__(self) -> int:
        return len(self._materialized)

    def __getitem__(self, position: int) -> Sequence:
        column = self._materialized[position]
        if column is None:
            rows = self.rows
            column = [row[position] for row in rows]
            self._materialized[position] = column
        return column

    def __iter__(self) -> Iterator[Sequence]:
        return (self[position] for position in range(len(self._materialized)))


class ColumnBatch:
    """Column-major row batch with selection-vector semantics."""

    __slots__ = ("columns", "length", "selection")

    def __init__(
        self,
        columns: tuple[Sequence, ...],
        length: int,
        selection: Sequence[int] | None = None,
    ) -> None:
        #: one sequence of values per output column, each ``length`` long
        self.columns = columns
        #: underlying (pre-selection) row count
        self.length = length
        #: live row indices in row order, or None meaning all rows
        self.selection = selection

    # ------------------------------------------------------------------
    # converters (the row <-> columnar mode boundary)

    @classmethod
    def from_rows(cls, rows: Sequence[tuple]) -> "ColumnBatch":
        """Pivot a list of row-tuples into one densely-selected batch."""
        if rows and rows[0]:
            return cls(tuple(zip(*rows)), len(rows))
        return cls((), len(rows))

    def to_rows(self) -> list[tuple]:
        """Pivot the *selected* rows back into row-tuples, in row order."""
        selection = self.selection
        columns = self.columns
        if not columns:
            return [()] * self.row_count
        rows = getattr(columns, "rows", None)  # LazyColumns fast path
        if rows is not None:
            if selection is None:
                return list(rows)
            return [rows[i] for i in selection]
        if selection is None:
            return list(zip(*columns))
        gathered = [
            [column[i] for i in selection] for column in columns
        ]
        return list(zip(*gathered))

    # ------------------------------------------------------------------

    @property
    def row_count(self) -> int:
        """Number of live (selected) rows."""
        selection = self.selection
        return self.length if selection is None else len(selection)

    def indices(self) -> Sequence[int]:
        """The live row indices (a range when nothing was filtered)."""
        selection = self.selection
        return range(self.length) if selection is None else selection

    def column(self, position: int) -> Sequence:
        """Values of one column for the selected rows, in row order.

        Zero-copy when the selection is dense; a gather otherwise. A
        sparse gather over lazy columns reads straight from the backing
        rows so the full column is never pivoted for a narrow selection.
        """
        columns = self.columns
        selection = self.selection
        if selection is None:
            return columns[position]
        rows = getattr(columns, "rows", None)  # LazyColumns backing
        if rows is not None:
            return [rows[i][position] for i in selection]
        values = columns[position]
        return [values[i] for i in selection]

    def take(self, count: int) -> "ColumnBatch":
        """The first ``count`` selected rows (shares column storage)."""
        selection = self.selection
        if selection is None:
            if count >= self.length:
                return self
            return ColumnBatch(self.columns, self.length, range(count))
        return ColumnBatch(self.columns, self.length, selection[:count])


def columnar_rows(batches: Iterable[ColumnBatch]) -> Iterator[tuple]:
    """Flatten a columnar stream into plain row-tuples (result fetch)."""
    for batch in batches:
        yield from batch.to_rows()
