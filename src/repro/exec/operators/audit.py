"""The physical audit operator (§IV-A.2).

A pass-through "data viewer": for every row flowing by, it probes slot
``id_slot`` against the audit expression's materialized sensitive-ID set
(a hash probe, like the build side of a hash join) and records hits in the
context's ACCESSED state. It outputs every input row unchanged — as far as
the rest of the plan is concerned it is a no-op — which is what guarantees
the instrumented plan returns exactly the original query result.

When the operator sits directly above a :class:`TableScan` of the
sensitive table (leaf placement, or any single-table plan where the
commutative pull-up leaves it there), it fuses with the scan's block
stream: for each block it first consults the block's sensitive-ID sketch
(zone-range shortcut, then a Bloom membership test per sensitive ID) and
skips the per-row membership pass entirely when the block provably holds
no sensitive value. The consult is conservative — a skipped block cannot
contain any probe-set member — so ACCESSED is byte-identical with and
without skipping; only the probe count drops. Row mode and batch mode
share the fused path, preserving the probe-count equivalence between
execution modes (Claim 3.6 must survive batching *and* skipping).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Container, Iterator

from repro.exec.operators.base import PhysicalOperator
from repro.exec.operators.scan import MAX_CONSULT_IDS, TableScan, chunked

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.exec.context import ExecutionContext


class AuditOperator(PhysicalOperator):
    """No-op row viewer that records sensitive partition-by IDs."""

    def __init__(
        self,
        child: PhysicalOperator,
        audit_name: str,
        id_slot: int,
        sensitive_ids: Container,
    ) -> None:
        self._child = child
        self._audit_name = audit_name
        self._id_slot = id_slot
        self._sensitive_ids = sensitive_ids
        # probe against the raw underlying set when the container exposes
        # one (IdView does): the per-row check must be a bare hash lookup
        self._probe_set = getattr(sensitive_ids, "live_id_set", sensitive_ids)

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self._child,)

    # ------------------------------------------------------------------
    # block-sketch fusion

    def _exact_ids(self) -> frozenset | None:
        """Enumerable exact sensitive-ID set, or None when unavailable.

        The sketch consult tests each sensitive ID against the block's
        Bloom filter, which requires enumerating the *exact* set — an
        ``IdView`` always maintains one, even under the bloom probe
        structure (the consult then being exact-relative keeps every
        truly sensitive value probed, so the bloom probe's one-sided
        ACCESSED superset is preserved).
        """
        source = self._sensitive_ids
        ids = getattr(source, "ids", None)
        if callable(ids):
            return ids()
        if isinstance(source, (set, frozenset)):
            return frozenset(source)
        return None

    def _fusion(self, context: "ExecutionContext"):
        """(scan, slot, ids, lo, hi) when block-level skipping applies."""
        if not context.data_skipping:
            return None
        child = self._child
        if not isinstance(child, TableScan):
            return None
        slot = self._id_slot
        if slot not in child.table.sketch_positions:
            return None
        ids = self._exact_ids()
        if ids is None or len(ids) > MAX_CONSULT_IDS:
            return None
        try:
            lo, hi = min(ids), max(ids)
        except (ValueError, TypeError):
            lo = hi = None
        return child, slot, ids, lo, hi

    def _fused_blocks(self, context: "ExecutionContext", fusion):
        """Yield ``(rows, probe_needed)`` per surviving block.

        Reuses the summary the scan's zone-map consult already fetched
        (one lazy fetch per block per scan); only blocks the zone maps
        never looked at fetch one here.
        """
        scan, slot, ids, lo, hi = fusion
        table = scan.table
        for block, rows, summary in scan.scan_blocks(context):
            if summary is None:
                summary = table.fresh_summary(block)
            if summary.may_contain_any(slot, ids, lo, hi):
                yield rows, True
            else:
                context.audit_blocks_skipped += 1
                context.audit_probes_skipped += len(rows)
                yield rows, False

    # ------------------------------------------------------------------
    # execution modes

    def rows(self, context: "ExecutionContext") -> Iterator[tuple]:
        fusion = self._fusion(context)
        slot = self._id_slot
        sensitive = self._probe_set
        record = None  # bound on first hit so clean queries leave no trace
        probes = 0
        try:
            if fusion is not None:
                for rows, probe_needed in self._fused_blocks(
                    context, fusion
                ):
                    if not probe_needed:
                        yield from rows
                        continue
                    probes += len(rows)
                    for row in rows:
                        value = row[slot]
                        if value is not None and value in sensitive:
                            if record is None:
                                record = context.accessed.setdefault(
                                    self._audit_name, set()
                                ).add
                            record(value)
                        yield row
                return
            for row in self._child.rows(context):
                probes += 1
                value = row[slot]
                if value is not None and value in sensitive:
                    if record is None:
                        record = context.accessed.setdefault(
                            self._audit_name, set()
                        ).add
                    record(value)
                yield row
        finally:
            # flushed even on a mid-stream abort, so the probe accounting
            # of a prefix-consumed query is complete in both modes
            context.add_probes(self._audit_name, probes)

    def rows_batched(self, context: "ExecutionContext"):
        """Batch mode: probe each batch in one tight loop.

        Per-batch work is a bare hash probe per row — identical probe
        count and ACCESSED contents as ``rows`` (Claim 3.6 must survive
        batching). Batches pass through unchanged.
        """
        fusion = self._fusion(context)
        slot = self._id_slot
        sensitive = self._probe_set
        record = None
        probes = 0
        try:
            if fusion is not None:
                batch_size = context.batch_size
                for rows, probe_needed in self._fused_blocks(
                    context, fusion
                ):
                    if probe_needed:
                        probes += len(rows)
                        for row in rows:
                            value = row[slot]
                            if value is not None and value in sensitive:
                                if record is None:
                                    record = context.accessed.setdefault(
                                        self._audit_name, set()
                                    ).add
                                record(value)
                    yield from chunked(rows, batch_size)
                return
            for batch in self._child.rows_batched(context):
                probes += len(batch)
                for row in batch:
                    value = row[slot]
                    if value is not None and value in sensitive:
                        if record is None:
                            record = context.accessed.setdefault(
                                self._audit_name, set()
                            ).add
                        record(value)
                yield batch
        finally:
            context.add_probes(self._audit_name, probes)

    def rows_columnar(self, context: "ExecutionContext"):
        """Columnar mode: one bulk pass over the partition-by column.

        Per batch the probe is a single ``set.intersection`` between the
        sensitive-ID set and the selected slice of the ID column — ACCESSED
        grows by the whole hit set at once instead of per row. Every live
        row still counts as exactly one probe, and a NULL ID can never be
        in the sensitive set, so probe counts and ACCESSED contents are
        identical to the row and batch modes (Claim 3.6 survives the
        columnar layout). Probe structures without set semantics (the
        counting Bloom filter) keep a per-value membership loop.
        """
        fusion = self._fusion(context)
        slot = self._id_slot
        sensitive = self._probe_set
        bulk = isinstance(sensitive, (set, frozenset))
        accessed = None
        probes = 0

        def _probe(values):
            nonlocal accessed
            if bulk:
                hits = sensitive.intersection(values)
            else:
                hits = {
                    value
                    for value in values
                    if value is not None and value in sensitive
                }
            if hits:
                if accessed is None:
                    accessed = context.accessed.setdefault(
                        self._audit_name, set()
                    )
                accessed.update(hits)

        try:
            if fusion is not None:
                scan, fused_slot, ids, lo, hi = fusion
                table = scan.table
                for block, batch, summary in scan.scan_column_blocks(
                    context
                ):
                    if summary is None:
                        summary = table.fresh_summary(block)
                    if summary.may_contain_any(fused_slot, ids, lo, hi):
                        probes += batch.row_count
                        _probe(batch.column(slot))
                    else:
                        context.audit_blocks_skipped += 1
                        context.audit_probes_skipped += batch.row_count
                    yield batch
                return
            for batch in self._child.rows_columnar(context):
                probes += batch.row_count
                _probe(batch.column(slot))
                yield batch
        finally:
            context.add_probes(self._audit_name, probes)

    def rows_lineage(self, context: "ExecutionContext"):
        """Lineage mode: probe and record exactly as ``rows``; lineage
        passes through untouched (the operator is a no-op data viewer)."""
        slot = self._id_slot
        sensitive = self._probe_set
        record = None
        probes = 0
        try:
            for pair in self._child.rows_lineage(context):
                probes += 1
                value = pair[0][slot]
                if value is not None and value in sensitive:
                    if record is None:
                        record = context.accessed.setdefault(
                            self._audit_name, set()
                        ).add
                    record(value)
                yield pair
        finally:
            context.add_probes(self._audit_name, probes)

    def describe(self) -> str:
        return f"AuditOperator({self._audit_name}, slot={self._id_slot})"
