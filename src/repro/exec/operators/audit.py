"""The physical audit operator (§IV-A.2).

A pass-through "data viewer": for every row flowing by, it probes slot
``id_slot`` against the audit expression's materialized sensitive-ID set
(a hash probe, like the build side of a hash join) and records hits in the
context's ACCESSED state. It outputs every input row unchanged — as far as
the rest of the plan is concerned it is a no-op — which is what guarantees
the instrumented plan returns exactly the original query result.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Container, Iterator

from repro.exec.operators.base import PhysicalOperator

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.exec.context import ExecutionContext


class AuditOperator(PhysicalOperator):
    """No-op row viewer that records sensitive partition-by IDs."""

    def __init__(
        self,
        child: PhysicalOperator,
        audit_name: str,
        id_slot: int,
        sensitive_ids: Container,
    ) -> None:
        self._child = child
        self._audit_name = audit_name
        self._id_slot = id_slot
        self._sensitive_ids = sensitive_ids
        # probe against the raw underlying set when the container exposes
        # one (IdView does): the per-row check must be a bare hash lookup
        self._probe_set = getattr(sensitive_ids, "live_id_set", sensitive_ids)

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self._child,)

    def rows(self, context: "ExecutionContext") -> Iterator[tuple]:
        slot = self._id_slot
        sensitive = self._probe_set
        record = None  # bound on first hit so clean queries leave no trace
        probes = 0
        try:
            for row in self._child.rows(context):
                probes += 1
                value = row[slot]
                if value is not None and value in sensitive:
                    if record is None:
                        record = context.accessed.setdefault(
                            self._audit_name, set()
                        ).add
                    record(value)
                yield row
        finally:
            # flushed even on a mid-stream abort, so the probe accounting
            # of a prefix-consumed query is complete in both modes
            context.add_probes(self._audit_name, probes)

    def rows_batched(self, context: "ExecutionContext"):
        """Batch mode: probe each batch in one tight loop.

        Per-batch work is a bare hash probe per row — identical probe
        count and ACCESSED contents as ``rows`` (Claim 3.6 must survive
        batching). Batches pass through unchanged.
        """
        slot = self._id_slot
        sensitive = self._probe_set
        record = None
        probes = 0
        try:
            for batch in self._child.rows_batched(context):
                probes += len(batch)
                for row in batch:
                    value = row[slot]
                    if value is not None and value in sensitive:
                        if record is None:
                            record = context.accessed.setdefault(
                                self._audit_name, set()
                            ).add
                        record(value)
                yield batch
        finally:
            context.add_probes(self._audit_name, probes)

    def rows_lineage(self, context: "ExecutionContext"):
        """Lineage mode: probe and record exactly as ``rows``; lineage
        passes through untouched (the operator is a no-op data viewer)."""
        slot = self._id_slot
        sensitive = self._probe_set
        record = None
        probes = 0
        try:
            for pair in self._child.rows_lineage(context):
                probes += 1
                value = pair[0][slot]
                if value is not None and value in sensitive:
                    if record is None:
                        record = context.accessed.setdefault(
                            self._audit_name, set()
                        ).add
                    record(value)
                yield pair
        finally:
            context.add_probes(self._audit_name, probes)

    def describe(self) -> str:
        return f"AuditOperator({self._audit_name}, slot={self._id_slot})"
