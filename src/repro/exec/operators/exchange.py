"""Exchange operators for scatter-gather execution.

The cluster coordinator cuts a plan at the highest shard-safe node and
runs the fragment below the cut on every shard. What remains above the
cut is compiled over a :class:`GatherSource` — a leaf operator that
replays the merged per-shard streams out of the execution context, so
final aggregation, re-distinct, HAVING filters, and limit reapplication
run through the exact same physical operators as single-node execution.

``RowSource`` is the context-independent sibling: a leaf over an
explicit row list, used wherever a compiled operator tree must run over
already-materialized rows (the cluster's aggregate merge tests, ad-hoc
replays).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.errors import ExecutionError
from repro.exec.operators.base import PhysicalOperator

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.exec.context import ExecutionContext


class GatherSource(PhysicalOperator):
    """Leaf replaying ``context.gather_rows[key]`` (the exchange input).

    The coordinator materializes and merges the per-shard fragment
    streams *before* the upper plan runs, so the gather is a plain list
    replay: re-executable (the offline auditor re-runs cluster plans
    with different tombstone sets) and identical across execution modes.
    """

    def __init__(self, key: int) -> None:
        self._key = key

    def _source(self, context: "ExecutionContext") -> list[tuple]:
        sources = context.gather_rows
        if sources is None or self._key not in sources:
            raise ExecutionError(
                f"no gathered rows for exchange key {self._key} "
                "(plan executed outside a cluster coordinator)"
            )
        return sources[self._key]

    def rows(self, context: "ExecutionContext") -> Iterator[tuple]:
        yield from self._source(context)

    def rows_batched(
        self, context: "ExecutionContext"
    ) -> Iterator[list[tuple]]:
        source = self._source(context)
        batch_size = context.batch_size
        for start in range(0, len(source), batch_size):
            yield source[start:start + batch_size]

    def describe(self) -> str:
        return f"GatherSource(key={self._key})"


class RowSource(PhysicalOperator):
    """Leaf over an explicit, already-materialized row list."""

    def __init__(self, source_rows: list[tuple]) -> None:
        self._rows = source_rows

    def rows(self, context: "ExecutionContext") -> Iterator[tuple]:
        yield from self._rows

    def rows_batched(
        self, context: "ExecutionContext"
    ) -> Iterator[list[tuple]]:
        batch_size = context.batch_size
        for start in range(0, len(self._rows), batch_size):
            yield self._rows[start:start + batch_size]

    def describe(self) -> str:
        return f"RowSource({len(self._rows)} rows)"


__all__ = ["GatherSource", "RowSource"]
