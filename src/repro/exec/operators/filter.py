"""Row filter operator."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.exec.batch import ColumnBatch
from repro.expr.compiler import compile_column_predicate, compile_predicate
from repro.expr.evaluator import evaluate
from repro.expr.nodes import Expression
from repro.exec.operators.base import PhysicalOperator

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.exec.context import ExecutionContext


class FilterOperator(PhysicalOperator):
    """Keeps rows whose predicate evaluates to exactly TRUE."""

    def __init__(self, child: PhysicalOperator, predicate: Expression) -> None:
        self._child = child
        self._predicate = predicate
        self._compiled = compile_predicate(predicate)
        self._column_sweep = compile_column_predicate(predicate)

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self._child,)

    def rows(self, context: "ExecutionContext") -> Iterator[tuple]:
        predicate = self._predicate
        for row in self._child.rows(context):
            if evaluate(predicate, row, context) is True:
                yield row

    def rows_batched(self, context: "ExecutionContext"):
        predicate = self._compiled
        for batch in self._child.rows_batched(context):
            kept = [row for row in batch if predicate(row, context) is True]
            if kept:
                yield kept

    def rows_columnar(self, context: "ExecutionContext"):
        """Columnar mode: narrow the selection vector, share the columns."""
        sweep = self._column_sweep
        for batch in self._child.rows_columnar(context):
            kept = sweep(batch.columns, batch.indices(), context)
            if kept:
                yield ColumnBatch(
                    batch.columns,
                    batch.length,
                    None if len(kept) == batch.length else kept,
                )

    def rows_lineage(self, context: "ExecutionContext"):
        predicate = self._compiled
        for pair in self._child.rows_lineage(context):
            if predicate(pair[0], context) is True:
                yield pair

    def describe(self) -> str:
        return "Filter"
