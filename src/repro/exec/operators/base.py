"""Physical operator interface.

A physical operator is an immutable factory of row iterators: calling
``rows(context)`` starts a fresh execution. This makes plans re-executable,
which the offline auditor exploits — it runs the same physical plan many
times with different tombstone sets (one per candidate sensitive tuple).

Operators expose ``children()`` and ``describe()`` for plan inspection
(EXPLAIN output and tests).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.exec.context import ExecutionContext


class PhysicalOperator:
    """Base class for physical operators."""

    def rows(self, context: "ExecutionContext") -> Iterator[tuple]:
        """Start a fresh execution and yield output rows."""
        raise NotImplementedError

    def children(self) -> tuple["PhysicalOperator", ...]:
        return ()

    def describe(self) -> str:
        return type(self).__name__

    def walk(self) -> Iterator["PhysicalOperator"]:
        yield self
        for child in self.children():
            yield from child.walk()


def format_physical(operator: PhysicalOperator, indent: int = 0) -> str:
    """Readable multi-line rendering of a physical plan."""
    pad = "  " * indent
    lines = [f"{pad}{operator.describe()}"]
    for child in operator.children():
        lines.append(format_physical(child, indent + 1))
    return "\n".join(lines)
