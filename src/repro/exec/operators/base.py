"""Physical operator interface.

A physical operator is an immutable factory of row iterators: calling
``rows(context)`` starts a fresh execution. This makes plans re-executable,
which the offline auditor exploits — it runs the same physical plan many
times with different tombstone sets (one per candidate sensitive tuple).

Operators support two execution modes over the same plan:

* **row-at-a-time** (``rows``) — the classic Volcano pull loop, one tuple
  per generator step;
* **batch-at-a-time** (``rows_batched``) — yields lists of tuples of up to
  ``context.batch_size`` rows, so per-operator work runs in tight Python
  loops instead of one generator frame switch per row. Both modes must
  produce the same rows in the same order; audit operators additionally
  guarantee identical ACCESSED contents and probe counts (the paper's
  no-op guarantee survives batching).

The base ``rows_batched`` wraps ``rows`` so every operator is batch-capable
by default; hot operators override it with real vectorized loops.

* **columnar** (``rows_columnar``) — yields
  :class:`~repro.exec.batch.ColumnBatch` objects (per-column vectors plus
  a selection vector) instead of lists of row-tuples. Filters narrow the
  selection without touching data; the audit operator probes the
  partition-by column in one bulk pass. Row order, ACCESSED contents,
  and probe counts are identical to the other modes — the base default
  pivots ``rows_batched`` so every operator is columnar-capable, and hot
  operators override it with true column sweeps.

A third mode supports the lineage-based offline auditor:

* **lineage-tagged** (``rows_lineage``) — yields ``(row, lineage)`` pairs
  where ``lineage`` is a frozenset of primary keys of the context's
  ``lineage_table`` that the row was derived from. One such run answers
  every single-tuple deletion question ``Q(D − t) ≟ Q(D)`` for monotone
  (SPJ) plans at once, replacing N re-executions. Operators without an
  exact lineage semantics (bounded top-k, aggregation) do not override
  the default, which raises :class:`~repro.errors.LineageError`; the
  auditor certifies plan shapes up front so the error only signals a
  certification bug, not a user-visible failure.

Operators expose ``children()`` and ``describe()`` for plan inspection
(EXPLAIN output and tests).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.errors import LineageError
from repro.exec.batch import ColumnBatch

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.exec.context import ExecutionContext

#: shared empty lineage — the common case; avoids a frozenset per row
EMPTY_LINEAGE: frozenset = frozenset()


class PhysicalOperator:
    """Base class for physical operators."""

    def rows(self, context: "ExecutionContext") -> Iterator[tuple]:
        """Start a fresh execution and yield output rows."""
        raise NotImplementedError

    def rows_batched(
        self, context: "ExecutionContext"
    ) -> Iterator[list[tuple]]:
        """Start a fresh execution and yield non-empty row batches.

        Default: chunk ``rows()``. Overrides must preserve row order and
        never yield empty batches.
        """
        batch_size = context.batch_size
        batch: list[tuple] = []
        append = batch.append
        for row in self.rows(context):
            append(row)
            if len(batch) >= batch_size:
                yield batch
                batch = []
                append = batch.append
        if batch:
            yield batch

    def rows_columnar(
        self, context: "ExecutionContext"
    ) -> Iterator[ColumnBatch]:
        """Start a fresh execution and yield non-empty column batches.

        Default: pivot ``rows_batched()`` at the mode boundary. Overrides
        must preserve row order and never yield batches with an empty
        selection.
        """
        for batch in self.rows_batched(context):
            yield ColumnBatch.from_rows(batch)

    def rows_lineage(
        self, context: "ExecutionContext"
    ) -> Iterator[tuple[tuple, frozenset]]:
        """Start a fresh execution yielding ``(row, lineage)`` pairs.

        ``lineage`` is the set of ``context.lineage_table`` primary keys
        the row derives from; the invariant every override must keep is
        *the row survives deletion of sensitive tuple t iff t is not in
        its lineage*. Operators without an exact implementation inherit
        this default and are rejected at plan-certification time.
        """
        raise LineageError(
            f"{type(self).__name__} does not support lineage-tagged "
            "execution"
        )

    def children(self) -> tuple["PhysicalOperator", ...]:
        return ()

    def describe(self) -> str:
        return type(self).__name__

    def walk(self) -> Iterator["PhysicalOperator"]:
        yield self
        for child in self.children():
            yield from child.walk()


def collect_rows(
    operator: PhysicalOperator,
    context: "ExecutionContext",
    mode: str = "row",
) -> list[tuple]:
    """Materialize an operator's output in the given execution mode.

    Every batch boundary (every :data:`~repro.concurrency.cancel.
    CHECK_EVERY_ROWS` rows in row mode) is a cooperative cancellation
    checkpoint: a cancelled ``context.cancel_token`` unwinds the
    execution with :class:`~repro.errors.OperationCancelledError`
    instead of running an abandoned plan to completion.
    """
    token = context.cancel_token
    if mode == "batch":
        rows: list[tuple] = []
        for batch in operator.rows_batched(context):
            if token is not None:
                token.raise_if_cancelled()
            rows.extend(batch)
        return rows
    if mode == "columnar":
        rows = []
        for column_batch in operator.rows_columnar(context):
            if token is not None:
                token.raise_if_cancelled()
            rows.extend(column_batch.to_rows())
        return rows
    if mode == "row":
        if token is None:
            return list(operator.rows(context))
        from repro.concurrency.cancel import CHECK_EVERY_ROWS

        rows = []
        for row in operator.rows(context):
            rows.append(row)
            if len(rows) % CHECK_EVERY_ROWS == 0:
                token.raise_if_cancelled()
        return rows
    raise ValueError(f"unknown execution mode {mode!r}")


def rebatch(
    batches: Iterator[list[tuple]], batch_size: int
) -> Iterator[list[tuple]]:
    """Re-chunk a batch stream to ``batch_size`` (drops empty batches)."""
    pending: list[tuple] = []
    for batch in batches:
        pending.extend(batch)
        while len(pending) >= batch_size:
            yield pending[:batch_size]
            pending = pending[batch_size:]
    if pending:
        yield pending


def format_physical(operator: PhysicalOperator, indent: int = 0) -> str:
    """Readable multi-line rendering of a physical plan."""
    pad = "  " * indent
    lines = [f"{pad}{operator.describe()}"]
    for child in operator.children():
        lines.append(format_physical(child, indent + 1))
    return "\n".join(lines)
