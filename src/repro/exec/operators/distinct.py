"""Duplicate elimination operator."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.exec.operators.base import PhysicalOperator

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.exec.context import ExecutionContext


class DistinctOperator(PhysicalOperator):
    """Streams the first occurrence of each distinct row."""

    def __init__(self, child: PhysicalOperator) -> None:
        self._child = child

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self._child,)

    def rows(self, context: "ExecutionContext") -> Iterator[tuple]:
        seen: set[tuple] = set()
        for row in self._child.rows(context):
            if row in seen:
                continue
            seen.add(row)
            yield row

    def rows_batched(self, context: "ExecutionContext"):
        seen: set[tuple] = set()
        add = seen.add
        for batch in self._child.rows_batched(context):
            fresh: list[tuple] = []
            append = fresh.append
            for row in batch:
                if row not in seen:
                    add(row)
                    append(row)
            if fresh:
                yield fresh

    def describe(self) -> str:
        return "Distinct"
