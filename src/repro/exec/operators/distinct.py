"""Duplicate elimination operator."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.exec.batch import ColumnBatch
from repro.exec.operators.base import PhysicalOperator

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.exec.context import ExecutionContext


class DistinctOperator(PhysicalOperator):
    """Streams the first occurrence of each distinct row."""

    def __init__(self, child: PhysicalOperator) -> None:
        self._child = child

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self._child,)

    def rows(self, context: "ExecutionContext") -> Iterator[tuple]:
        seen: set[tuple] = set()
        for row in self._child.rows(context):
            if row in seen:
                continue
            seen.add(row)
            yield row

    def rows_batched(self, context: "ExecutionContext"):
        seen: set[tuple] = set()
        add = seen.add
        for batch in self._child.rows_batched(context):
            fresh: list[tuple] = []
            append = fresh.append
            for row in batch:
                if row not in seen:
                    add(row)
                    append(row)
            if fresh:
                yield fresh

    def rows_columnar(self, context: "ExecutionContext"):
        """Columnar mode: the seen-set keys on whole tuples, so pivot at
        the boundary and re-pivot the surviving first occurrences."""
        seen: set[tuple] = set()
        add = seen.add
        for batch in self._child.rows_columnar(context):
            fresh: list[tuple] = []
            append = fresh.append
            for row in batch.to_rows():
                if row not in seen:
                    add(row)
                    append(row)
            if fresh:
                yield ColumnBatch.from_rows(fresh)

    def rows_lineage(self, context: "ExecutionContext"):
        """Lineage mode: a distinct row's lineage is the *intersection* of
        its duplicates' lineages — the output value disappears under
        deletion of t only when every derivation used t. This is what
        makes the paper's §II-B observation ("duplicate elimination can
        hide accesses") fall out exactly instead of as a false positive.
        """
        critical: dict[tuple, frozenset] = {}
        order: list[tuple] = []
        for row, lineage in self._child.rows_lineage(context):
            current = critical.get(row)
            if current is None and row not in critical:
                critical[row] = lineage
                order.append(row)
            elif current:  # empty intersections can never shrink further
                critical[row] = current & lineage
        for row in order:
            yield row, critical[row]

    def describe(self) -> str:
        return "Distinct"
