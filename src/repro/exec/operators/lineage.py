"""Lineage-free subtree adapter.

The lineage auditor compiles the certified core of a plan with a node
wrapper (the same hook the deletion auditor uses for its cache operator)
that wraps every topmost subtree *not* reading the sensitive table in a
:class:`LineageFreeOperator`. Such subtrees produce identical rows under
every single-tuple deletion, so their rows carry empty lineage — and they
may contain operators with no exact lineage semantics (top-k, aggregates),
which is precisely why the adapter exists: it runs them in ordinary batch
mode and tags the output, instead of requiring ``rows_lineage`` support
below.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.exec.operators.base import EMPTY_LINEAGE, PhysicalOperator

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.exec.context import ExecutionContext


class LineageFreeOperator(PhysicalOperator):
    """Runs its child normally and tags every row with empty lineage."""

    def __init__(self, child: PhysicalOperator) -> None:
        self._child = child

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self._child,)

    def rows(self, context: "ExecutionContext"):
        return self._child.rows(context)

    def rows_batched(self, context: "ExecutionContext"):
        return self._child.rows_batched(context)

    def rows_lineage(self, context: "ExecutionContext"):
        for batch in self._child.rows_batched(context):
            for row in batch:
                yield row, EMPTY_LINEAGE

    def describe(self) -> str:
        return "LineageFree"
