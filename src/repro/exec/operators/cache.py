"""Materializing cache operator.

The offline auditor re-executes one physical plan once per candidate
sensitive tuple (``Q(D − t)`` for each t, Definition 2.3). Subplans that do
not read the sensitive table produce identical rows on every run, so the
auditor wraps them in a :class:`CacheOperator`: the first run materializes,
later runs replay. The cache lives in an external store owned by the
auditor so its lifetime spans executions; plain query execution never uses
this operator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.exec.operators.base import EMPTY_LINEAGE, PhysicalOperator

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.exec.context import ExecutionContext


class CacheOperator(PhysicalOperator):
    """Materializes its child once into ``store[key]`` and replays it."""

    def __init__(
        self,
        child: PhysicalOperator,
        store: dict[int, list[tuple]],
        key: int,
    ) -> None:
        self._child = child
        self._store = store
        self._key = key

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self._child,)

    def rows(self, context: "ExecutionContext") -> Iterator[tuple]:
        cached = self._store.get(self._key)
        if cached is None:
            cached = list(self._child.rows(context))
            self._store[self._key] = cached
        return iter(cached)

    def rows_batched(self, context: "ExecutionContext"):
        cached = self._store.get(self._key)
        if cached is None:
            # materialize eagerly so the store never holds a prefix; the
            # flat list is shared with row-mode executions of the plan
            cached = [
                row
                for batch in self._child.rows_batched(context)
                for row in batch
            ]
            self._store[self._key] = cached
        batch_size = context.batch_size
        for start in range(0, len(cached), batch_size):
            yield cached[start:start + batch_size]

    def rows_lineage(self, context: "ExecutionContext"):
        """Lineage mode: the operator only ever wraps subtrees that never
        read the sensitive table, so every cached row has empty lineage."""
        for row in self.rows(context):
            yield row, EMPTY_LINEAGE

    def describe(self) -> str:
        return "Cache"
