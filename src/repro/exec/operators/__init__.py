"""Physical operators (Volcano-style iterators; row, batch, and
lineage-tagged execution modes)."""

from repro.exec.operators.base import (
    EMPTY_LINEAGE,
    PhysicalOperator,
    collect_rows,
    rebatch,
)
from repro.exec.operators.lineage import LineageFreeOperator
from repro.exec.operators.scan import TableScan, IndexSeek, IndexRange, OneRowSource
from repro.exec.operators.filter import FilterOperator
from repro.exec.operators.project import ProjectOperator
from repro.exec.operators.join import NestedLoopJoin, HashJoin
from repro.exec.operators.apply import IndexNestedLoopJoin
from repro.exec.operators.aggregate import HashAggregate
from repro.exec.operators.sort import SortOperator, LimitOperator, TopKOperator
from repro.exec.operators.distinct import DistinctOperator
from repro.exec.operators.cache import CacheOperator
from repro.exec.operators.audit import AuditOperator
from repro.exec.operators.exchange import GatherSource, RowSource

__all__ = [
    "EMPTY_LINEAGE",
    "PhysicalOperator",
    "LineageFreeOperator",
    "collect_rows",
    "rebatch",
    "TableScan",
    "IndexSeek",
    "IndexRange",
    "OneRowSource",
    "FilterOperator",
    "ProjectOperator",
    "NestedLoopJoin",
    "HashJoin",
    "IndexNestedLoopJoin",
    "HashAggregate",
    "SortOperator",
    "LimitOperator",
    "TopKOperator",
    "DistinctOperator",
    "CacheOperator",
    "AuditOperator",
    "GatherSource",
    "RowSource",
]
