"""Index nested-loop (apply-style) join.

For each outer row, the inner physical subplan is re-executed with the
outer row pushed onto the context's outer-row stack; the inner subplan's
scan carries a seek predicate referencing the outer row (``outer_level=1``)
that the planner rewired from the join condition, so each iteration is an
index seek rather than a scan.

This is the plan shape whose interaction with audit operators the paper's
micro-benchmark exercises: an audit operator inside the inner subtree is
probed once per fetched inner row, so its cost scales with the outer
cardinality (§V-A).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.exec.batch import ColumnBatch
from repro.expr.compiler import compile_predicate
from repro.expr.evaluator import evaluate
from repro.expr.nodes import Expression
from repro.exec.operators.base import PhysicalOperator
from repro.exec.operators.join import combine_lineage, row_batches
from repro.plan.logical import JOIN_ANTI, JOIN_LEFT, JOIN_SEMI

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.exec.context import ExecutionContext


class IndexNestedLoopJoin(PhysicalOperator):
    """Apply join: re-runs the inner subplan once per outer row."""

    def __init__(
        self,
        left: PhysicalOperator,
        inner: PhysicalOperator,
        kind: str,
        residual: Expression | None,
        inner_arity: int,
    ) -> None:
        self._left = left
        self._inner = inner
        self._kind = kind
        self._residual = residual
        self._compiled_residual = (
            compile_predicate(residual) if residual is not None else None
        )
        self._inner_arity = inner_arity

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self._left, self._inner)

    def rows(self, context: "ExecutionContext") -> Iterator[tuple]:
        kind = self._kind
        residual = self._residual
        null_extension = (None,) * self._inner_arity
        for left_row in self._left.rows(context):
            context.push_outer_row(left_row)
            try:
                matches = list(self._inner.rows(context))
            finally:
                context.pop_outer_row()
            matched = False
            for right_row in matches:
                combined = left_row + right_row
                if residual is not None:
                    if evaluate(residual, combined, context) is not True:
                        continue
                matched = True
                if kind in (JOIN_SEMI, JOIN_ANTI):
                    break
                yield combined
            if kind == JOIN_SEMI and matched:
                yield left_row
            elif kind == JOIN_ANTI and not matched:
                yield left_row
            elif kind == JOIN_LEFT and not matched:
                yield left_row + null_extension

    def rows_batched(self, context: "ExecutionContext"):
        yield from self._run_batched(context, columnar=False)

    def rows_columnar(self, context: "ExecutionContext"):
        for out in self._run_batched(context, columnar=True):
            yield ColumnBatch.from_rows(out)

    def _run_batched(self, context: "ExecutionContext", columnar: bool):
        """Batch mode: outer rows arrive in batches; the inner subplan is
        still executed per outer row (it is an index seek parameterized by
        the outer-row stack, inherently row-at-a-time)."""
        kind = self._kind
        residual = self._compiled_residual
        null_extension = (None,) * self._inner_arity
        batch_size = context.batch_size
        out: list[tuple] = []
        for batch in row_batches(self._left, context, columnar):
            for left_row in batch:
                context.push_outer_row(left_row)
                try:
                    matches = list(self._inner.rows(context))
                finally:
                    context.pop_outer_row()
                matched = False
                for right_row in matches:
                    combined = left_row + right_row
                    if residual is not None:
                        if residual(combined, context) is not True:
                            continue
                    matched = True
                    if kind == JOIN_SEMI or kind == JOIN_ANTI:
                        break
                    out.append(combined)
                if kind == JOIN_SEMI and matched:
                    out.append(left_row)
                elif kind == JOIN_ANTI and not matched:
                    out.append(left_row)
                elif kind == JOIN_LEFT and not matched:
                    out.append(left_row + null_extension)
                if len(out) >= batch_size:
                    yield out
                    out = []
        if out:
            yield out

    def rows_lineage(self, context: "ExecutionContext"):
        """Lineage mode: the per-outer-row inner execution also runs
        lineage-tagged, so pushed-down index seeks keep their speedup."""
        kind = self._kind
        residual = self._compiled_residual
        null_extension = (None,) * self._inner_arity
        for left_row, left_lineage in self._left.rows_lineage(context):
            context.push_outer_row(left_row)
            try:
                matches = list(self._inner.rows_lineage(context))
            finally:
                context.pop_outer_row()
            matched = False
            for right_row, right_lineage in matches:
                combined = left_row + right_row
                if residual is not None:
                    if residual(combined, context) is not True:
                        continue
                matched = True
                if kind == JOIN_SEMI or kind == JOIN_ANTI:
                    break
                yield combined, combine_lineage(left_lineage, right_lineage)
            if kind == JOIN_SEMI and matched:
                yield left_row, left_lineage
            elif kind == JOIN_ANTI and not matched:
                yield left_row, left_lineage
            elif kind == JOIN_LEFT and not matched:
                yield left_row + null_extension, left_lineage

    def describe(self) -> str:
        return f"IndexNestedLoopJoin({self._kind})"
