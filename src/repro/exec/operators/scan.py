"""Leaf access paths: full scans, index seeks, index range scans.

All access paths honor the context's tombstones: rows whose primary key is
tombstoned are invisible, which is how the offline auditor evaluates
``Q(D − t)`` without mutating the database.

:class:`TableScan` iterates the table block by block and consults each
block's zone maps against the predicate's sargable conjuncts (extracted
once at construction) to skip blocks that provably cannot produce a row —
the conservative data-skipping fast path (see
:mod:`repro.storage.blocks`). The audit operator reuses the same block
stream via :meth:`TableScan.scan_blocks` to additionally skip the
per-row sensitive-ID probe for sketch-disjoint blocks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.errors import ExecutionError
from repro.exec.batch import ColumnBatch, LazyColumns
from repro.expr.compiler import compile_column_predicate, compile_predicate
from repro.expr.evaluator import evaluate
from repro.expr.nodes import (
    Between,
    Binary,
    ColumnRef,
    Expression,
    IsNull,
    conjuncts,
    contains_subquery,
    referenced_slots,
)
from repro.exec.operators.base import EMPTY_LINEAGE, PhysicalOperator
from repro.storage.index import OrderedIndex

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.exec.context import ExecutionContext
    from repro.storage.table import Table

#: skip the sketch consult when the candidate-ID set is larger than this
#: (the consult is O(|ids|) per block; past this point probing the rows
#: directly is no slower and always exact)
MAX_CONSULT_IDS = 2048

_COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")
_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}


def _sargable_conjuncts(
    predicate: Expression | None,
) -> tuple[tuple[str, int, Expression | None], ...]:
    """Zone-map-checkable conjuncts as (op, slot, bound-expression).

    Matches ``col <cmp> <row-independent expr>`` (either side),
    ``col BETWEEN lo AND hi``, and ``col IS [NOT] NULL``. Bound
    expressions are evaluated once per execution; anything else —
    subqueries, row-dependent bounds, OR trees — is simply not sargable
    and contributes no skip (conservative by omission).
    """
    found: list[tuple[str, int, Expression | None]] = []
    for conjunct in conjuncts(predicate):
        if isinstance(conjunct, Binary) and conjunct.op in _COMPARISON_OPS:
            for column, bound, op in (
                (conjunct.left, conjunct.right, conjunct.op),
                (conjunct.right, conjunct.left, _FLIPPED[conjunct.op]),
            ):
                if (
                    isinstance(column, ColumnRef)
                    and column.outer_level == 0
                    and column.index is not None
                    and not referenced_slots(bound)
                    and not contains_subquery(bound)
                ):
                    found.append((op, column.index, bound))
                    break
        elif isinstance(conjunct, Between) and not conjunct.negated:
            column = conjunct.operand
            if not (
                isinstance(column, ColumnRef)
                and column.outer_level == 0
                and column.index is not None
            ):
                continue
            for op, bound in ((">=", conjunct.low), ("<=", conjunct.high)):
                if not referenced_slots(bound) \
                        and not contains_subquery(bound):
                    found.append((op, column.index, bound))
        elif isinstance(conjunct, IsNull):
            column = conjunct.operand
            if (
                isinstance(column, ColumnRef)
                and column.outer_level == 0
                and column.index is not None
            ):
                found.append(
                    ("notnull" if conjunct.negated else "isnull",
                     column.index, None)
                )
    return tuple(found)


def chunked(rows: list, batch_size: int):
    """Yield ``rows`` as one batch, or several when over ``batch_size``."""
    if len(rows) <= batch_size:
        yield rows
        return
    for start in range(0, len(rows), batch_size):
        yield rows[start:start + batch_size]


class TableScan(PhysicalOperator):
    """Full scan of a base table with an optional residual predicate."""

    def __init__(self, table: "Table", predicate: Expression | None = None
                 ) -> None:
        self._table = table
        self._predicate = predicate
        self._compiled = (
            compile_predicate(predicate) if predicate is not None else None
        )
        self._column_sweep = (
            compile_column_predicate(predicate)
            if predicate is not None else None
        )
        self._sargable = _sargable_conjuncts(predicate)
        self._pk_positions = table.schema.primary_key_positions()

    @property
    def table(self) -> "Table":
        return self._table

    def _zone_bounds(
        self, context: "ExecutionContext"
    ) -> tuple[tuple[str, int, object], ...]:
        """Evaluate the sargable bounds once per execution.

        A bound that fails to evaluate (e.g. a missing parameter that the
        per-row predicate would also trip on) is dropped — no skip from
        it. A bound evaluating to NULL stays: ``col <op> NULL`` is never
        True, which :meth:`BlockSummary.may_match` turns into a full skip.
        """
        bounds = []
        for op, position, expression in self._sargable:
            if expression is None:
                bounds.append((op, position, None))
                continue
            try:
                value = evaluate(expression, (), context)
            except Exception:
                continue
            bounds.append((op, position, value))
        return tuple(bounds)

    def _live_blocks(self, context: "ExecutionContext"):
        """Yield ``(block, live_rows, summary)`` per non-skipped block.

        ``summary`` is the block's fresh :class:`BlockSummary` when the
        zone-map consult fetched one, else ``None`` — downstream consults
        (the audit sketch, the lineage-candidate sketch) reuse it instead
        of re-fetching, so each block is summarized at most once per scan.
        Rows are tombstone-filtered but *not* yet predicate-filtered.
        """
        table = self._table
        hidden = context.tombstones.get(table.schema.name)
        pk_positions = self._pk_positions
        skipping = context.data_skipping
        bounds = (
            self._zone_bounds(context)
            if skipping and self._sargable else ()
        )
        for block in table.blocks():
            summary = None
            if skipping and bounds:
                summary = table.fresh_summary(block)
                if not all(
                    summary.may_match(position, op, value)
                    for op, position, value in bounds
                ):
                    context.blocks_zone_skipped += 1
                    continue
            context.blocks_scanned += 1
            with table._lock:
                rows = block.rows_snapshot()
            if hidden is not None and pk_positions:
                rows = [
                    row
                    for row in rows
                    if tuple(row[position] for position in pk_positions)
                    not in hidden
                ]
            if rows:
                yield block, rows, summary

    def scan_blocks(self, context: "ExecutionContext"):
        """Yield ``(block, surviving_rows, summary)`` per non-skipped block.

        Zone maps are consulted only when the context has data skipping
        enabled; tombstone and predicate filtering always run, so this
        stream is exactly the scan's output partitioned by block (the
        audit operator fuses on it for sketch-level probe skipping, and
        reuses ``summary`` — possibly ``None`` — for its sketch consult).
        """
        predicate = self._compiled
        for block, rows, summary in self._live_blocks(context):
            if predicate is not None:
                rows = [
                    row for row in rows if predicate(row, context) is True
                ]
            if rows:
                yield block, rows, summary

    def scan_column_blocks(self, context: "ExecutionContext"):
        """Columnar twin of :meth:`scan_blocks`.

        Yields ``(block, batch, summary)``: each surviving block's rows
        wrapped in a :class:`ColumnBatch` over :class:`LazyColumns` —
        only the columns an operator actually touches (predicate sweep,
        audit probe, projected slots) are ever pivoted out of the block —
        with the compiled column sweep already applied as the selection
        vector; the predicate never materializes row-tuples.
        """
        sweep = self._column_sweep
        width = len(self._table.schema.columns)
        for block, rows, summary in self._live_blocks(context):
            columns = LazyColumns(rows, width)
            length = len(rows)
            selection = None
            if sweep is not None:
                selection = sweep(columns, range(length), context)
                if not selection:
                    continue
                if len(selection) == length:
                    selection = None
            yield block, ColumnBatch(columns, length, selection), summary

    def rows(self, context: "ExecutionContext") -> Iterator[tuple]:
        for __, rows, __summary in self.scan_blocks(context):
            yield from rows

    def rows_batched(self, context: "ExecutionContext"):
        batch_size = context.batch_size
        for __, rows, __summary in self.scan_blocks(context):
            yield from chunked(rows, batch_size)

    def rows_columnar(self, context: "ExecutionContext"):
        for __, batch, __summary in self.scan_column_blocks(context):
            yield batch

    def rows_lineage(self, context: "ExecutionContext"):
        """Lineage mode: tag each row of the sensitive table with its own
        primary key (the base case of deletion provenance).

        When the offline auditor published its candidate-ID set and this
        table sketches the partition-by column, blocks provably disjoint
        from every candidate tag their rows with empty lineage instead:
        those rows cannot derive from any candidate tuple, so every
        classification the auditor performs is unchanged, and the
        per-row key-tuple construction is skipped.
        """
        table = self._table
        pk_positions = self._pk_positions
        tagged = (
            table.schema.name == context.lineage_table
            and bool(pk_positions)
        )
        consult = None
        if (
            tagged
            and context.data_skipping
            and context.lineage_candidates is not None
            and context.lineage_id_position in table.sketch_positions
            and len(context.lineage_candidates) <= MAX_CONSULT_IDS
        ):
            candidates = context.lineage_candidates
            try:
                lo, hi = min(candidates), max(candidates)
            except (ValueError, TypeError):
                lo = hi = None
            position = context.lineage_id_position
            consult = (position, candidates, lo, hi)
        for block, rows, summary in self.scan_blocks(context):
            block_tagged = tagged
            if consult is not None:
                if summary is None:
                    summary = table.fresh_summary(block)
                if not summary.may_contain_any(*consult):
                    context.audit_blocks_skipped += 1
                    block_tagged = False
            if block_tagged:
                for row in rows:
                    pk = tuple(row[position] for position in pk_positions)
                    yield row, frozenset((pk,))
            else:
                for row in rows:
                    yield row, EMPTY_LINEAGE

    def describe(self) -> str:
        suffix = " [filtered]" if self._predicate is not None else ""
        return f"TableScan({self._table.schema.name}){suffix}"


class IndexSeek(PhysicalOperator):
    """Equality seek on a secondary index.

    ``key_expressions`` must be evaluable without an input row (literals,
    parameters, or expressions over them). The optional residual predicate
    is applied to fetched rows.
    """

    def __init__(
        self,
        table: "Table",
        index_name: str,
        key_expressions: tuple[Expression, ...],
        residual: Expression | None = None,
    ) -> None:
        self._table = table
        self._index_name = index_name
        self._key_expressions = key_expressions
        self._residual = residual
        self._pk_positions = table.schema.primary_key_positions()

    @property
    def table(self) -> "Table":
        return self._table

    def rows(self, context: "ExecutionContext") -> Iterator[tuple]:
        index = self._table.secondary_index(self._index_name)
        key = tuple(
            evaluate(expression, (), context)
            for expression in self._key_expressions
        )
        hidden = context.tombstones.get(self._table.schema.name)
        for rid in index.seek(key):
            row = self._table.row_by_rid(rid)
            if hidden is not None and self._pk_positions:
                pk = tuple(row[p] for p in self._pk_positions)
                if pk in hidden:
                    continue
            if self._residual is not None:
                if evaluate(self._residual, row, context) is not True:
                    continue
            yield row

    def rows_lineage(self, context: "ExecutionContext"):
        tagged = (
            self._table.schema.name == context.lineage_table
            and bool(self._pk_positions)
        )
        pk_positions = self._pk_positions
        for row in self.rows(context):
            if tagged:
                pk = tuple(row[position] for position in pk_positions)
                yield row, frozenset((pk,))
            else:
                yield row, EMPTY_LINEAGE

    def describe(self) -> str:
        return (
            f"IndexSeek({self._table.schema.name}.{self._index_name})"
        )


class IndexRange(PhysicalOperator):
    """Range scan on an ordered secondary index (single-column bounds)."""

    def __init__(
        self,
        table: "Table",
        index_name: str,
        low: Expression | None,
        high: Expression | None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        residual: Expression | None = None,
    ) -> None:
        self._table = table
        self._index_name = index_name
        self._low = low
        self._high = high
        self._low_inclusive = low_inclusive
        self._high_inclusive = high_inclusive
        self._residual = residual
        self._pk_positions = table.schema.primary_key_positions()

    @property
    def table(self) -> "Table":
        return self._table

    def rows(self, context: "ExecutionContext") -> Iterator[tuple]:
        index = self._table.secondary_index(self._index_name)
        if not isinstance(index, OrderedIndex):
            raise ExecutionError(
                f"index {self._index_name!r} does not support range scans"
            )
        low = (
            (evaluate(self._low, (), context),)
            if self._low is not None else None
        )
        high = (
            (evaluate(self._high, (), context),)
            if self._high is not None else None
        )
        hidden = context.tombstones.get(self._table.schema.name)
        for rid in index.range_scan(
            low, high, self._low_inclusive, self._high_inclusive
        ):
            row = self._table.row_by_rid(rid)
            if hidden is not None and self._pk_positions:
                pk = tuple(row[p] for p in self._pk_positions)
                if pk in hidden:
                    continue
            if self._residual is not None:
                if evaluate(self._residual, row, context) is not True:
                    continue
            yield row

    def rows_lineage(self, context: "ExecutionContext"):
        tagged = (
            self._table.schema.name == context.lineage_table
            and bool(self._pk_positions)
        )
        pk_positions = self._pk_positions
        for row in self.rows(context):
            if tagged:
                pk = tuple(row[position] for position in pk_positions)
                yield row, frozenset((pk,))
            else:
                yield row, EMPTY_LINEAGE

    def describe(self) -> str:
        return (
            f"IndexRange({self._table.schema.name}.{self._index_name})"
        )


class OneRowSource(PhysicalOperator):
    """Produces a single empty row (FROM-less SELECT)."""

    def rows(self, context: "ExecutionContext") -> Iterator[tuple]:
        yield ()

    def rows_lineage(self, context: "ExecutionContext"):
        yield (), EMPTY_LINEAGE

    def describe(self) -> str:
        return "OneRow"
