"""Leaf access paths: full scans, index seeks, index range scans.

All access paths honor the context's tombstones: rows whose primary key is
tombstoned are invisible, which is how the offline auditor evaluates
``Q(D − t)`` without mutating the database.
"""

from __future__ import annotations

from itertools import islice
from typing import TYPE_CHECKING, Iterator

from repro.errors import ExecutionError
from repro.expr.compiler import compile_predicate
from repro.expr.evaluator import evaluate
from repro.expr.nodes import Expression
from repro.exec.operators.base import EMPTY_LINEAGE, PhysicalOperator
from repro.storage.index import OrderedIndex

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.exec.context import ExecutionContext
    from repro.storage.table import Table


class TableScan(PhysicalOperator):
    """Full scan of a base table with an optional residual predicate."""

    def __init__(self, table: "Table", predicate: Expression | None = None
                 ) -> None:
        self._table = table
        self._predicate = predicate
        self._compiled = (
            compile_predicate(predicate) if predicate is not None else None
        )
        self._pk_positions = table.schema.primary_key_positions()

    @property
    def table(self) -> "Table":
        return self._table

    def rows(self, context: "ExecutionContext") -> Iterator[tuple]:
        table_name = self._table.schema.name
        hidden = context.tombstones.get(table_name)
        predicate = self._predicate
        pk_positions = self._pk_positions
        for row in self._table.rows():
            if hidden is not None and pk_positions:
                key = tuple(row[position] for position in pk_positions)
                if key in hidden:
                    continue
            if predicate is not None:
                if evaluate(predicate, row, context) is not True:
                    continue
            yield row

    def rows_batched(self, context: "ExecutionContext"):
        hidden = context.tombstones.get(self._table.schema.name)
        predicate = self._compiled
        pk_positions = self._pk_positions
        batch_size = context.batch_size
        source = iter(self._table.rows())
        while True:
            chunk = list(islice(source, batch_size))
            if not chunk:
                return
            if hidden is not None and pk_positions:
                chunk = [
                    row
                    for row in chunk
                    if tuple(row[position] for position in pk_positions)
                    not in hidden
                ]
            if predicate is not None:
                chunk = [
                    row for row in chunk if predicate(row, context) is True
                ]
            if chunk:
                yield chunk

    def rows_lineage(self, context: "ExecutionContext"):
        """Lineage mode: tag each row of the sensitive table with its own
        primary key (the base case of deletion provenance)."""
        predicate = self._compiled
        pk_positions = self._pk_positions
        tagged = (
            self._table.schema.name == context.lineage_table
            and bool(pk_positions)
        )
        for row in self._table.rows():
            if predicate is not None and predicate(row, context) is not True:
                continue
            if tagged:
                pk = tuple(row[position] for position in pk_positions)
                yield row, frozenset((pk,))
            else:
                yield row, EMPTY_LINEAGE

    def describe(self) -> str:
        suffix = " [filtered]" if self._predicate is not None else ""
        return f"TableScan({self._table.schema.name}){suffix}"


class IndexSeek(PhysicalOperator):
    """Equality seek on a secondary index.

    ``key_expressions`` must be evaluable without an input row (literals,
    parameters, or expressions over them). The optional residual predicate
    is applied to fetched rows.
    """

    def __init__(
        self,
        table: "Table",
        index_name: str,
        key_expressions: tuple[Expression, ...],
        residual: Expression | None = None,
    ) -> None:
        self._table = table
        self._index_name = index_name
        self._key_expressions = key_expressions
        self._residual = residual
        self._pk_positions = table.schema.primary_key_positions()

    @property
    def table(self) -> "Table":
        return self._table

    def rows(self, context: "ExecutionContext") -> Iterator[tuple]:
        index = self._table.secondary_index(self._index_name)
        key = tuple(
            evaluate(expression, (), context)
            for expression in self._key_expressions
        )
        hidden = context.tombstones.get(self._table.schema.name)
        for rid in index.seek(key):
            row = self._table.row_by_rid(rid)
            if hidden is not None and self._pk_positions:
                pk = tuple(row[p] for p in self._pk_positions)
                if pk in hidden:
                    continue
            if self._residual is not None:
                if evaluate(self._residual, row, context) is not True:
                    continue
            yield row

    def rows_lineage(self, context: "ExecutionContext"):
        tagged = (
            self._table.schema.name == context.lineage_table
            and bool(self._pk_positions)
        )
        pk_positions = self._pk_positions
        for row in self.rows(context):
            if tagged:
                pk = tuple(row[position] for position in pk_positions)
                yield row, frozenset((pk,))
            else:
                yield row, EMPTY_LINEAGE

    def describe(self) -> str:
        return (
            f"IndexSeek({self._table.schema.name}.{self._index_name})"
        )


class IndexRange(PhysicalOperator):
    """Range scan on an ordered secondary index (single-column bounds)."""

    def __init__(
        self,
        table: "Table",
        index_name: str,
        low: Expression | None,
        high: Expression | None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        residual: Expression | None = None,
    ) -> None:
        self._table = table
        self._index_name = index_name
        self._low = low
        self._high = high
        self._low_inclusive = low_inclusive
        self._high_inclusive = high_inclusive
        self._residual = residual
        self._pk_positions = table.schema.primary_key_positions()

    @property
    def table(self) -> "Table":
        return self._table

    def rows(self, context: "ExecutionContext") -> Iterator[tuple]:
        index = self._table.secondary_index(self._index_name)
        if not isinstance(index, OrderedIndex):
            raise ExecutionError(
                f"index {self._index_name!r} does not support range scans"
            )
        low = (
            (evaluate(self._low, (), context),)
            if self._low is not None else None
        )
        high = (
            (evaluate(self._high, (), context),)
            if self._high is not None else None
        )
        hidden = context.tombstones.get(self._table.schema.name)
        for rid in index.range_scan(
            low, high, self._low_inclusive, self._high_inclusive
        ):
            row = self._table.row_by_rid(rid)
            if hidden is not None and self._pk_positions:
                pk = tuple(row[p] for p in self._pk_positions)
                if pk in hidden:
                    continue
            if self._residual is not None:
                if evaluate(self._residual, row, context) is not True:
                    continue
            yield row

    def rows_lineage(self, context: "ExecutionContext"):
        tagged = (
            self._table.schema.name == context.lineage_table
            and bool(self._pk_positions)
        )
        pk_positions = self._pk_positions
        for row in self.rows(context):
            if tagged:
                pk = tuple(row[position] for position in pk_positions)
                yield row, frozenset((pk,))
            else:
                yield row, EMPTY_LINEAGE

    def describe(self) -> str:
        return (
            f"IndexRange({self._table.schema.name}.{self._index_name})"
        )


class OneRowSource(PhysicalOperator):
    """Produces a single empty row (FROM-less SELECT)."""

    def rows(self, context: "ExecutionContext") -> Iterator[tuple]:
        yield ()

    def rows_lineage(self, context: "ExecutionContext"):
        yield (), EMPTY_LINEAGE

    def describe(self) -> str:
        return "OneRow"
