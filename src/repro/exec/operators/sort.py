"""Sort, limit, and top-k operators.

``TopKOperator`` fuses Sort+Limit with a bounded heap — the operator the
paper's Example 3.2 shows to be non-commutative with the audit operator.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Iterator

from repro.datatypes import value_sort_key
from repro.exec.batch import ColumnBatch
from repro.expr.compiler import compile_expression
from repro.expr.evaluator import evaluate
from repro.exec.operators.base import PhysicalOperator
from repro.plan.logical import SortKey

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.exec.context import ExecutionContext


class SortOperator(PhysicalOperator):
    """Full in-memory sort (stable, multi-key, NULLS FIRST ascending)."""

    def __init__(self, child: PhysicalOperator, keys: tuple[SortKey, ...]
                 ) -> None:
        self._child = child
        self._keys = keys
        self._compiled_keys = tuple(
            compile_expression(key.expression) for key in keys
        )

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self._child,)

    def rows(self, context: "ExecutionContext") -> Iterator[tuple]:
        buffered = list(self._child.rows(context))
        # stable multi-pass: sort by the last key first
        for key in reversed(self._keys):
            expression = key.expression
            buffered.sort(
                key=lambda row: value_sort_key(
                    evaluate(expression, row, context)
                ),
                reverse=not key.ascending,
            )
        yield from buffered

    def rows_batched(self, context: "ExecutionContext"):
        buffered = [
            row
            for batch in self._child.rows_batched(context)
            for row in batch
        ]
        for key, compiled in zip(
            reversed(self._keys), reversed(self._compiled_keys)
        ):
            buffered.sort(
                key=lambda row: value_sort_key(compiled(row, context)),
                reverse=not key.ascending,
            )
        batch_size = context.batch_size
        for start in range(0, len(buffered), batch_size):
            yield buffered[start:start + batch_size]

    def rows_columnar(self, context: "ExecutionContext"):
        """Columnar mode: a sort buffer needs whole tuples, so pivot at
        the boundary, run the identical stable multi-pass, re-pivot."""
        buffered = [
            row
            for batch in self._child.rows_columnar(context)
            for row in batch.to_rows()
        ]
        for key, compiled in zip(
            reversed(self._keys), reversed(self._compiled_keys)
        ):
            buffered.sort(
                key=lambda row: value_sort_key(compiled(row, context)),
                reverse=not key.ascending,
            )
        batch_size = context.batch_size
        for start in range(0, len(buffered), batch_size):
            yield ColumnBatch.from_rows(
                buffered[start:start + batch_size]
            )

    def rows_lineage(self, context: "ExecutionContext"):
        """Lineage mode: sort the (row, lineage) pairs by row rank. The
        same stable multi-pass as ``rows`` keeps tie order identical, so
        deleting tuples leaves survivors in the engine's order."""
        buffered = list(self._child.rows_lineage(context))
        for key, compiled in zip(
            reversed(self._keys), reversed(self._compiled_keys)
        ):
            buffered.sort(
                key=lambda pair: value_sort_key(compiled(pair[0], context)),
                reverse=not key.ascending,
            )
        yield from buffered

    def describe(self) -> str:
        return f"Sort({len(self._keys)} keys)"


class LimitOperator(PhysicalOperator):
    """Stops the pipeline after ``count`` rows."""

    def __init__(self, child: PhysicalOperator, count: int) -> None:
        self._child = child
        self._count = count

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self._child,)

    def rows(self, context: "ExecutionContext") -> Iterator[tuple]:
        if self._count <= 0:
            return
        emitted = 0
        for row in self._child.rows(context):
            yield row
            emitted += 1
            if emitted >= self._count:
                return

    def rows_batched(self, context: "ExecutionContext"):
        remaining = self._count
        if remaining <= 0:
            return
        for batch in self._child.rows_batched(context):
            if len(batch) >= remaining:
                yield batch[:remaining]
                return
            remaining -= len(batch)
            yield batch

    def rows_columnar(self, context: "ExecutionContext"):
        """Columnar mode: truncate the selection vector, not the data."""
        remaining = self._count
        if remaining <= 0:
            return
        for batch in self._child.rows_columnar(context):
            count = batch.row_count
            if count >= remaining:
                yield batch.take(remaining)
                return
            remaining -= count
            yield batch

    def describe(self) -> str:
        return f"Limit({self._count})"


class _HeapEntry:
    """Orderable wrapper so heapq can compare rows by sort rank."""

    __slots__ = ("rank", "sequence", "row")

    def __init__(self, rank: tuple, sequence: int, row: tuple) -> None:
        self.rank = rank
        self.sequence = sequence
        self.row = row

    def __lt__(self, other: "_HeapEntry") -> bool:
        # max-heap on (rank, sequence): heapq pops the largest-ranked entry
        # first so we can evict the worst of the current top-k
        return (self.rank, self.sequence) > (other.rank, other.sequence)


class TopKOperator(PhysicalOperator):
    """Bounded-heap top-k: keeps the best ``count`` rows per sort order."""

    def __init__(
        self,
        child: PhysicalOperator,
        keys: tuple[SortKey, ...],
        count: int,
    ) -> None:
        self._child = child
        self._keys = keys
        self._compiled_keys = tuple(
            compile_expression(key.expression) for key in keys
        )
        self._count = count

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self._child,)

    def _rank(self, row: tuple, context: "ExecutionContext") -> tuple:
        rank = []
        for key, compiled in zip(self._keys, self._compiled_keys):
            part = value_sort_key(compiled(row, context))
            if not key.ascending:
                part = _Reversed(part)
            rank.append(part)
        return tuple(rank)

    def rows(self, context: "ExecutionContext") -> Iterator[tuple]:
        if self._count <= 0:
            return
        heap: list[_HeapEntry] = []
        for sequence, row in enumerate(self._child.rows(context)):
            entry = _HeapEntry(self._rank(row, context), sequence, row)
            if len(heap) < self._count:
                heapq.heappush(heap, entry)
            elif entry.rank < heap[0].rank or (
                entry.rank == heap[0].rank and entry.sequence < heap[0].sequence
            ):
                heapq.heapreplace(heap, entry)
        ordered = sorted(heap, key=lambda e: (e.rank, e.sequence))
        for entry in ordered:
            yield entry.row

    def rows_batched(self, context: "ExecutionContext"):
        if self._count <= 0:
            return
        heap: list[_HeapEntry] = []
        count = self._count
        sequence = 0
        for batch in self._child.rows_batched(context):
            for row in batch:
                entry = _HeapEntry(self._rank(row, context), sequence, row)
                sequence += 1
                if len(heap) < count:
                    heapq.heappush(heap, entry)
                elif entry.rank < heap[0].rank or (
                    entry.rank == heap[0].rank
                    and entry.sequence < heap[0].sequence
                ):
                    heapq.heapreplace(heap, entry)
        ordered = sorted(heap, key=lambda e: (e.rank, e.sequence))
        if ordered:
            yield [entry.row for entry in ordered]

    def rows_columnar(self, context: "ExecutionContext"):
        """Columnar mode: the bounded heap ranks whole tuples — pivot at
        the boundary and emit the final top-k as one dense batch."""
        if self._count <= 0:
            return
        heap: list[_HeapEntry] = []
        count = self._count
        sequence = 0
        for batch in self._child.rows_columnar(context):
            for row in batch.to_rows():
                entry = _HeapEntry(self._rank(row, context), sequence, row)
                sequence += 1
                if len(heap) < count:
                    heapq.heappush(heap, entry)
                elif entry.rank < heap[0].rank or (
                    entry.rank == heap[0].rank
                    and entry.sequence < heap[0].sequence
                ):
                    heapq.heapreplace(heap, entry)
        ordered = sorted(heap, key=lambda e: (e.rank, e.sequence))
        if ordered:
            yield ColumnBatch.from_rows([entry.row for entry in ordered])

    def describe(self) -> str:
        return f"TopK({self._count}, {len(self._keys)} keys)"


class _Reversed:
    """Inverts comparison order for descending sort keys."""

    __slots__ = ("value",)

    def __init__(self, value: object) -> None:
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value  # type: ignore[operator]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and self.value == other.value
