"""Projection operator."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.exec.batch import ColumnBatch
from repro.expr.compiler import compile_expression, compile_projector
from repro.expr.evaluator import evaluate
from repro.expr.nodes import ColumnRef, Expression
from repro.exec.operators.base import PhysicalOperator

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.exec.context import ExecutionContext


class ProjectOperator(PhysicalOperator):
    """Computes output rows from expressions over the child row.

    Projections that are pure column permutations (a common case after
    binding) are executed with tuple indexing instead of the general
    evaluator — measurably faster on hot paths.
    """

    def __init__(
        self, child: PhysicalOperator, expressions: tuple[Expression, ...]
    ) -> None:
        self._child = child
        self._expressions = expressions
        self._simple_slots: tuple[int, ...] | None = None
        if all(
            isinstance(expression, ColumnRef)
            and expression.outer_level == 0
            and expression.index is not None
            for expression in expressions
        ):
            self._simple_slots = tuple(
                expression.index  # type: ignore[union-attr]
                for expression in expressions
            )
        self._projector = compile_projector(expressions)
        self._compiled_each = tuple(
            compile_expression(expression) for expression in expressions
        )

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self._child,)

    def rows(self, context: "ExecutionContext") -> Iterator[tuple]:
        slots = self._simple_slots
        if slots is not None:
            for row in self._child.rows(context):
                yield tuple(row[slot] for slot in slots)
            return
        expressions = self._expressions
        for row in self._child.rows(context):
            yield tuple(
                evaluate(expression, row, context)
                for expression in expressions
            )

    def rows_batched(self, context: "ExecutionContext"):
        slots = self._simple_slots
        if slots is not None:
            for batch in self._child.rows_batched(context):
                yield [
                    tuple(row[slot] for slot in slots) for row in batch
                ]
            return
        projector = self._projector
        for batch in self._child.rows_batched(context):
            yield [projector(row, context) for row in batch]

    def rows_columnar(self, context: "ExecutionContext"):
        """Columnar mode: column permutations re-point the column tuple
        (zero copy, selection shared); anything computed pivots once and
        evaluates per output expression into a fresh dense column."""
        slots = self._simple_slots
        if slots is not None:
            for batch in self._child.rows_columnar(context):
                if batch.selection is None:
                    yield ColumnBatch(
                        tuple(batch.columns[slot] for slot in slots),
                        batch.length,
                    )
                else:
                    # gather through the selection now: pivoting whole
                    # lazy columns to keep a sparse selection is wasted
                    # work, and downstream sees a dense batch either way
                    yield ColumnBatch(
                        tuple(batch.column(slot) for slot in slots),
                        batch.row_count,
                    )
            return
        expressions = self._expressions
        compiled = self._compiled_each
        for batch in self._child.rows_columnar(context):
            rows = batch.to_rows()
            columns = []
            for expression, closure in zip(expressions, compiled):
                if (
                    isinstance(expression, ColumnRef)
                    and expression.outer_level == 0
                    and expression.index is not None
                ):
                    columns.append(batch.column(expression.index))
                else:
                    columns.append(
                        [closure(row, context) for row in rows]
                    )
            yield ColumnBatch(tuple(columns), len(rows))

    def rows_lineage(self, context: "ExecutionContext"):
        slots = self._simple_slots
        if slots is not None:
            for row, lineage in self._child.rows_lineage(context):
                yield tuple(row[slot] for slot in slots), lineage
            return
        projector = self._projector
        for row, lineage in self._child.rows_lineage(context):
            yield projector(row, context), lineage

    def describe(self) -> str:
        return f"Project({len(self._expressions)} cols)"
