"""Hash aggregation operator."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.exec.batch import ColumnBatch
from repro.expr.aggregates import make_accumulator
from repro.expr.compiler import compile_expression
from repro.expr.evaluator import evaluate
from repro.exec.operators.base import PhysicalOperator
from repro.plan.logical import AggregateSpec
from repro.expr.nodes import ColumnRef, Expression


def _simple_slot(expression: Expression | None) -> int | None:
    if (
        isinstance(expression, ColumnRef)
        and expression.outer_level == 0
        and expression.index is not None
    ):
        return expression.index
    return None

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.exec.context import ExecutionContext


class HashAggregate(PhysicalOperator):
    """Groups rows by the group expressions and folds aggregates.

    Output row = group values followed by aggregate results. With no group
    expressions the operator is a global aggregate and emits exactly one
    row even for empty input (SQL semantics: ``COUNT(*)`` of nothing is 0).
    Group keys treat NULLs as equal, as GROUP BY requires.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        group_expressions: tuple[Expression, ...],
        specs: tuple[AggregateSpec, ...],
    ) -> None:
        self._child = child
        self._group_expressions = group_expressions
        self._specs = specs
        self._compiled_groups = tuple(
            compile_expression(expression)
            for expression in group_expressions
        )
        self._compiled_arguments = tuple(
            compile_expression(spec.argument)
            if spec.argument is not None
            else None
            for spec in specs
        )
        # columnar fast path: group keys and aggregate arguments that are
        # all plain column refs (or COUNT(*)) fold directly over gathered
        # columns without pivoting rows
        group_slots = tuple(
            _simple_slot(expression) for expression in group_expressions
        )
        argument_slots = tuple(_simple_slot(spec.argument) for spec in specs)
        self._columnar_slots: tuple[tuple, tuple] | None = None
        if all(slot is not None for slot in group_slots) and all(
            slot is not None or spec.argument is None
            for slot, spec in zip(argument_slots, specs)
        ):
            self._columnar_slots = (group_slots, argument_slots)

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self._child,)

    def rows(self, context: "ExecutionContext") -> Iterator[tuple]:
        groups: dict[tuple, list] = {}
        group_expressions = self._group_expressions
        specs = self._specs
        for row in self._child.rows(context):
            key = tuple(
                evaluate(expression, row, context)
                for expression in group_expressions
            )
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [
                    make_accumulator(spec.name, spec.distinct)
                    for spec in specs
                ]
                groups[key] = accumulators
            for spec, accumulator in zip(specs, accumulators):
                if spec.argument is None:
                    accumulator.add(1)  # COUNT(*)
                else:
                    accumulator.add(evaluate(spec.argument, row, context))
        if not groups and not group_expressions:
            accumulators = [
                make_accumulator(spec.name, spec.distinct) for spec in specs
            ]
            groups[()] = accumulators
        for key, accumulators in groups.items():
            yield key + tuple(
                accumulator.result() for accumulator in accumulators
            )

    def _fold_rows(
        self, groups: dict, rows: list, context: "ExecutionContext"
    ) -> None:
        compiled_groups = self._compiled_groups
        compiled_arguments = self._compiled_arguments
        specs = self._specs
        get = groups.get
        for row in rows:
            key = tuple(
                expression(row, context)
                for expression in compiled_groups
            )
            accumulators = get(key)
            if accumulators is None:
                accumulators = [
                    make_accumulator(spec.name, spec.distinct)
                    for spec in specs
                ]
                groups[key] = accumulators
            for argument, accumulator in zip(
                compiled_arguments, accumulators
            ):
                if argument is None:
                    accumulator.add(1)  # COUNT(*)
                else:
                    accumulator.add(argument(row, context))

    def _finish(self, groups: dict) -> list[tuple]:
        specs = self._specs
        if not groups and not self._group_expressions:
            groups[()] = [
                make_accumulator(spec.name, spec.distinct) for spec in specs
            ]
        return [
            key
            + tuple(accumulator.result() for accumulator in accumulators)
            for key, accumulators in groups.items()
        ]

    def rows_batched(self, context: "ExecutionContext"):
        groups: dict[tuple, list] = {}
        for batch in self._child.rows_batched(context):
            self._fold_rows(groups, batch, context)
        out = self._finish(groups)
        batch_size = context.batch_size
        for start in range(0, len(out), batch_size):
            yield out[start:start + batch_size]

    def rows_columnar(self, context: "ExecutionContext"):
        """Columnar mode: fold over gathered columns when every group key
        and aggregate argument is a plain column ref (a global SUM/COUNT
        then sweeps each argument column in one tight loop); computed
        keys or arguments pivot the batch and reuse the row fold."""
        groups: dict[tuple, list] = {}
        slots = self._columnar_slots
        specs = self._specs
        get = groups.get
        for batch in self._child.rows_columnar(context):
            if slots is None:
                self._fold_rows(groups, batch.to_rows(), context)
                continue
            group_slots, argument_slots = slots
            key_columns = [batch.column(slot) for slot in group_slots]
            argument_columns = [
                None if slot is None else batch.column(slot)
                for slot in argument_slots
            ]
            count = batch.row_count
            if not key_columns:
                accumulators = get(())
                if accumulators is None:
                    accumulators = [
                        make_accumulator(spec.name, spec.distinct)
                        for spec in specs
                    ]
                    groups[()] = accumulators
                for column, accumulator in zip(
                    argument_columns, accumulators
                ):
                    add = accumulator.add
                    if column is None:
                        for __ in range(count):
                            add(1)  # COUNT(*)
                    else:
                        for value in column:
                            add(value)
                continue
            for i in range(count):
                key = tuple(column[i] for column in key_columns)
                accumulators = get(key)
                if accumulators is None:
                    accumulators = [
                        make_accumulator(spec.name, spec.distinct)
                        for spec in specs
                    ]
                    groups[key] = accumulators
                for column, accumulator in zip(
                    argument_columns, accumulators
                ):
                    if column is None:
                        accumulator.add(1)  # COUNT(*)
                    else:
                        accumulator.add(column[i])
        out = self._finish(groups)
        batch_size = context.batch_size
        for start in range(0, len(out), batch_size):
            yield ColumnBatch.from_rows(out[start:start + batch_size])

    def describe(self) -> str:
        return (
            f"HashAggregate(groups={len(self._group_expressions)}, "
            f"aggs={len(self._specs)})"
        )
