"""Hash aggregation operator."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.expr.aggregates import make_accumulator
from repro.expr.compiler import compile_expression
from repro.expr.evaluator import evaluate
from repro.exec.operators.base import PhysicalOperator
from repro.plan.logical import AggregateSpec
from repro.expr.nodes import Expression

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.exec.context import ExecutionContext


class HashAggregate(PhysicalOperator):
    """Groups rows by the group expressions and folds aggregates.

    Output row = group values followed by aggregate results. With no group
    expressions the operator is a global aggregate and emits exactly one
    row even for empty input (SQL semantics: ``COUNT(*)`` of nothing is 0).
    Group keys treat NULLs as equal, as GROUP BY requires.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        group_expressions: tuple[Expression, ...],
        specs: tuple[AggregateSpec, ...],
    ) -> None:
        self._child = child
        self._group_expressions = group_expressions
        self._specs = specs
        self._compiled_groups = tuple(
            compile_expression(expression)
            for expression in group_expressions
        )
        self._compiled_arguments = tuple(
            compile_expression(spec.argument)
            if spec.argument is not None
            else None
            for spec in specs
        )

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self._child,)

    def rows(self, context: "ExecutionContext") -> Iterator[tuple]:
        groups: dict[tuple, list] = {}
        group_expressions = self._group_expressions
        specs = self._specs
        for row in self._child.rows(context):
            key = tuple(
                evaluate(expression, row, context)
                for expression in group_expressions
            )
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [
                    make_accumulator(spec.name, spec.distinct)
                    for spec in specs
                ]
                groups[key] = accumulators
            for spec, accumulator in zip(specs, accumulators):
                if spec.argument is None:
                    accumulator.add(1)  # COUNT(*)
                else:
                    accumulator.add(evaluate(spec.argument, row, context))
        if not groups and not group_expressions:
            accumulators = [
                make_accumulator(spec.name, spec.distinct) for spec in specs
            ]
            groups[()] = accumulators
        for key, accumulators in groups.items():
            yield key + tuple(
                accumulator.result() for accumulator in accumulators
            )

    def rows_batched(self, context: "ExecutionContext"):
        groups: dict[tuple, list] = {}
        compiled_groups = self._compiled_groups
        compiled_arguments = self._compiled_arguments
        specs = self._specs
        get = groups.get
        for batch in self._child.rows_batched(context):
            for row in batch:
                key = tuple(
                    expression(row, context)
                    for expression in compiled_groups
                )
                accumulators = get(key)
                if accumulators is None:
                    accumulators = [
                        make_accumulator(spec.name, spec.distinct)
                        for spec in specs
                    ]
                    groups[key] = accumulators
                for argument, accumulator in zip(
                    compiled_arguments, accumulators
                ):
                    if argument is None:
                        accumulator.add(1)  # COUNT(*)
                    else:
                        accumulator.add(argument(row, context))
        if not groups and not self._group_expressions:
            groups[()] = [
                make_accumulator(spec.name, spec.distinct) for spec in specs
            ]
        out = [
            key
            + tuple(accumulator.result() for accumulator in accumulators)
            for key, accumulators in groups.items()
        ]
        batch_size = context.batch_size
        for start in range(0, len(out), batch_size):
            yield out[start:start + batch_size]

    def describe(self) -> str:
        return (
            f"HashAggregate(groups={len(self._group_expressions)}, "
            f"aggs={len(self._specs)})"
        )
