"""Join operators: hash join and nested-loop join.

Both support the logical join kinds inner / left (outer) / semi / anti.
Output rows are ``left ++ right`` for inner and left joins and the bare
left row for semi/anti joins — matching the logical algebra.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.exec.batch import ColumnBatch
from repro.expr.compiler import compile_predicate
from repro.expr.evaluator import evaluate
from repro.expr.nodes import Expression
from repro.exec.operators.base import EMPTY_LINEAGE, PhysicalOperator
from repro.plan.logical import JOIN_ANTI, JOIN_INNER, JOIN_LEFT, JOIN_SEMI


def row_batches(
    operator: PhysicalOperator, context, columnar: bool
):
    """An operator's output as row-tuple batches in either mode.

    Joins hash and concatenate whole tuples, so they pivot columnar
    inputs at their boundary (the documented conversion rule) and run
    one shared tuple-at-a-time core for both modes.
    """
    if columnar:
        for batch in operator.rows_columnar(context):
            yield batch.to_rows()
    else:
        yield from operator.rows_batched(context)


def combine_lineage(left: frozenset, right: frozenset) -> frozenset:
    """Union two lineage sets without allocating for the common empties."""
    if not right:
        return left
    if not left:
        return right
    return left | right

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.exec.context import ExecutionContext


class NestedLoopJoin(PhysicalOperator):
    """Nested-loop join; the right input is materialized once per run.

    Used when no equi-join keys are available (cross products, inequality
    joins) — correct for every condition shape.
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        kind: str,
        condition: Expression | None,
        right_arity: int,
    ) -> None:
        self._left = left
        self._right = right
        self._kind = kind
        self._condition = condition
        self._compiled_condition = (
            compile_predicate(condition) if condition is not None else None
        )
        self._right_arity = right_arity

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self._left, self._right)

    def rows_batched(self, context: "ExecutionContext"):
        yield from self._run_batched(context, columnar=False)

    def rows_columnar(self, context: "ExecutionContext"):
        for out in self._run_batched(context, columnar=True):
            yield ColumnBatch.from_rows(out)

    def _run_batched(self, context: "ExecutionContext", columnar: bool):
        right_rows = [
            row
            for batch in row_batches(self._right, context, columnar)
            for row in batch
        ]
        condition = self._compiled_condition
        kind = self._kind
        null_extension = (None,) * self._right_arity
        batch_size = context.batch_size
        out: list[tuple] = []
        for batch in row_batches(self._left, context, columnar):
            for left_row in batch:
                matched = False
                for right_row in right_rows:
                    combined = left_row + right_row
                    if condition is not None:
                        if condition(combined, context) is not True:
                            continue
                    matched = True
                    if kind == JOIN_SEMI or kind == JOIN_ANTI:
                        break
                    out.append(combined)
                if kind == JOIN_SEMI and matched:
                    out.append(left_row)
                elif kind == JOIN_ANTI and not matched:
                    out.append(left_row)
                elif kind == JOIN_LEFT and not matched:
                    out.append(left_row + null_extension)
                if len(out) >= batch_size:
                    yield out
                    out = []
        if out:
            yield out

    def rows(self, context: "ExecutionContext") -> Iterator[tuple]:
        right_rows = list(self._right.rows(context))
        condition = self._condition
        kind = self._kind
        null_extension = (None,) * self._right_arity
        for left_row in self._left.rows(context):
            matched = False
            for right_row in right_rows:
                combined = left_row + right_row
                if condition is not None:
                    if evaluate(condition, combined, context) is not True:
                        continue
                matched = True
                if kind == JOIN_SEMI:
                    break
                if kind == JOIN_ANTI:
                    break
                yield combined
            if kind == JOIN_SEMI and matched:
                yield left_row
            elif kind == JOIN_ANTI and not matched:
                yield left_row
            elif kind == JOIN_LEFT and not matched:
                yield left_row + null_extension

    def rows_lineage(self, context: "ExecutionContext"):
        """Lineage mode. The plan certifier only admits non-inner kinds
        when the right input is lineage-free (fixed under deletion), so
        semi/anti/padded outputs carry the left row's lineage alone."""
        right_pairs = list(self._right.rows_lineage(context))
        condition = self._compiled_condition
        kind = self._kind
        null_extension = (None,) * self._right_arity
        for left_row, left_lineage in self._left.rows_lineage(context):
            matched = False
            for right_row, right_lineage in right_pairs:
                combined = left_row + right_row
                if condition is not None:
                    if condition(combined, context) is not True:
                        continue
                matched = True
                if kind == JOIN_SEMI or kind == JOIN_ANTI:
                    break
                yield combined, combine_lineage(left_lineage, right_lineage)
            if kind == JOIN_SEMI and matched:
                yield left_row, left_lineage
            elif kind == JOIN_ANTI and not matched:
                yield left_row, left_lineage
            elif kind == JOIN_LEFT and not matched:
                yield left_row + null_extension, left_lineage

    def describe(self) -> str:
        return f"NestedLoopJoin({self._kind})"


class HashJoin(PhysicalOperator):
    """Hash join on equi-key slots with an optional residual predicate.

    ``left_keys`` / ``right_keys`` are slot ordinals into each input's
    row. ``build_left`` selects which side is materialized into the hash
    table (the optimizer picks the smaller estimated side); the probe side
    streams. For left/semi/anti joins the build side is always the right
    input, because those kinds need per-left-row match bookkeeping.
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        kind: str,
        left_keys: tuple[int, ...],
        right_keys: tuple[int, ...],
        residual: Expression | None,
        right_arity: int,
        build_left: bool = False,
    ) -> None:
        self._left = left
        self._right = right
        self._kind = kind
        self._left_keys = left_keys
        self._right_keys = right_keys
        self._residual = residual
        self._compiled_residual = (
            compile_predicate(residual) if residual is not None else None
        )
        self._right_arity = right_arity
        self._build_left = build_left and kind == JOIN_INNER

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self._left, self._right)

    def rows(self, context: "ExecutionContext") -> Iterator[tuple]:
        if self._build_left:
            yield from self._run_build_left(context)
        else:
            yield from self._run_build_right(context)

    def rows_batched(self, context: "ExecutionContext"):
        if self._build_left:
            yield from self._run_build_left_batched(context)
        else:
            yield from self._run_build_right_batched(context)

    def rows_columnar(self, context: "ExecutionContext"):
        batches = (
            self._run_build_left_batched(context, columnar=True)
            if self._build_left
            else self._run_build_right_batched(context, columnar=True)
        )
        for out in batches:
            yield ColumnBatch.from_rows(out)

    def _build_table(
        self,
        operator: PhysicalOperator,
        keys: tuple[int, ...],
        context: "ExecutionContext",
        columnar: bool = False,
    ) -> dict[tuple, list[tuple]]:
        table: dict[tuple, list[tuple]] = {}
        setdefault = table.setdefault
        for batch in row_batches(operator, context, columnar):
            for row in batch:
                key = tuple(row[slot] for slot in keys)
                if any(part is None for part in key):
                    continue
                setdefault(key, []).append(row)
        return table

    def _run_build_right_batched(
        self, context: "ExecutionContext", columnar: bool = False
    ):
        table = self._build_table(
            self._right, self._right_keys, context, columnar
        )
        residual = self._compiled_residual
        kind = self._kind
        left_keys = self._left_keys
        null_extension = (None,) * self._right_arity
        empty: tuple = ()
        batch_size = context.batch_size
        get = table.get
        out: list[tuple] = []
        for batch in row_batches(self._left, context, columnar):
            for left_row in batch:
                key = tuple(left_row[slot] for slot in left_keys)
                matches = get(key, empty) if None not in key else empty
                matched = False
                for right_row in matches:
                    combined = left_row + right_row
                    if residual is not None:
                        if residual(combined, context) is not True:
                            continue
                    matched = True
                    if kind == JOIN_SEMI or kind == JOIN_ANTI:
                        break
                    out.append(combined)
                if kind == JOIN_SEMI and matched:
                    out.append(left_row)
                elif kind == JOIN_ANTI and not matched:
                    out.append(left_row)
                elif kind == JOIN_LEFT and not matched:
                    out.append(left_row + null_extension)
                if len(out) >= batch_size:
                    yield out
                    out = []
        if out:
            yield out

    def _run_build_left_batched(
        self, context: "ExecutionContext", columnar: bool = False
    ):
        table = self._build_table(
            self._left, self._left_keys, context, columnar
        )
        residual = self._compiled_residual
        right_keys = self._right_keys
        empty: tuple = ()
        batch_size = context.batch_size
        get = table.get
        out: list[tuple] = []
        for batch in row_batches(self._right, context, columnar):
            for right_row in batch:
                key = tuple(right_row[slot] for slot in right_keys)
                if None in key:
                    continue
                for left_row in get(key, empty):
                    combined = left_row + right_row
                    if residual is not None:
                        if residual(combined, context) is not True:
                            continue
                    out.append(combined)
                if len(out) >= batch_size:
                    yield out
                    out = []
        if out:
            yield out

    def _run_build_right(
        self, context: "ExecutionContext"
    ) -> Iterator[tuple]:
        table: dict[tuple, list[tuple]] = {}
        for right_row in self._right.rows(context):
            key = tuple(right_row[slot] for slot in self._right_keys)
            if any(part is None for part in key):
                continue
            table.setdefault(key, []).append(right_row)
        residual = self._residual
        kind = self._kind
        null_extension = (None,) * self._right_arity
        for left_row in self._left.rows(context):
            key = tuple(left_row[slot] for slot in self._left_keys)
            matches = table.get(key, ()) if None not in key else ()
            matched = False
            for right_row in matches:
                combined = left_row + right_row
                if residual is not None:
                    if evaluate(residual, combined, context) is not True:
                        continue
                matched = True
                if kind in (JOIN_SEMI, JOIN_ANTI):
                    break
                yield combined
            if kind == JOIN_SEMI and matched:
                yield left_row
            elif kind == JOIN_ANTI and not matched:
                yield left_row
            elif kind == JOIN_LEFT and not matched:
                yield left_row + null_extension

    def _run_build_left(
        self, context: "ExecutionContext"
    ) -> Iterator[tuple]:
        table: dict[tuple, list[tuple]] = {}
        for left_row in self._left.rows(context):
            key = tuple(left_row[slot] for slot in self._left_keys)
            if any(part is None for part in key):
                continue
            table.setdefault(key, []).append(left_row)
        residual = self._residual
        for right_row in self._right.rows(context):
            key = tuple(right_row[slot] for slot in self._right_keys)
            if any(part is None for part in key):
                continue
            for left_row in table.get(key, ()):
                combined = left_row + right_row
                if residual is not None:
                    if evaluate(residual, combined, context) is not True:
                        continue
                yield combined

    def rows_lineage(self, context: "ExecutionContext"):
        if self._build_left:
            yield from self._lineage_build_left(context)
        else:
            yield from self._lineage_build_right(context)

    def _lineage_build_right(self, context: "ExecutionContext"):
        table: dict[tuple, list[tuple]] = {}
        setdefault = table.setdefault
        for right_row, right_lineage in self._right.rows_lineage(context):
            key = tuple(right_row[slot] for slot in self._right_keys)
            if any(part is None for part in key):
                continue
            setdefault(key, []).append((right_row, right_lineage))
        residual = self._compiled_residual
        kind = self._kind
        left_keys = self._left_keys
        null_extension = (None,) * self._right_arity
        empty: tuple = ()
        get = table.get
        for left_row, left_lineage in self._left.rows_lineage(context):
            key = tuple(left_row[slot] for slot in left_keys)
            matches = get(key, empty) if None not in key else empty
            matched = False
            for right_row, right_lineage in matches:
                combined = left_row + right_row
                if residual is not None:
                    if residual(combined, context) is not True:
                        continue
                matched = True
                if kind == JOIN_SEMI or kind == JOIN_ANTI:
                    break
                yield combined, combine_lineage(left_lineage, right_lineage)
            if kind == JOIN_SEMI and matched:
                yield left_row, left_lineage
            elif kind == JOIN_ANTI and not matched:
                yield left_row, left_lineage
            elif kind == JOIN_LEFT and not matched:
                yield left_row + null_extension, left_lineage

    def _lineage_build_left(self, context: "ExecutionContext"):
        table: dict[tuple, list[tuple]] = {}
        setdefault = table.setdefault
        for left_row, left_lineage in self._left.rows_lineage(context):
            key = tuple(left_row[slot] for slot in self._left_keys)
            if any(part is None for part in key):
                continue
            setdefault(key, []).append((left_row, left_lineage))
        residual = self._compiled_residual
        right_keys = self._right_keys
        empty: tuple = ()
        get = table.get
        for right_row, right_lineage in self._right.rows_lineage(context):
            key = tuple(right_row[slot] for slot in right_keys)
            if None in key:
                continue
            for left_row, left_lineage in get(key, empty):
                combined = left_row + right_row
                if residual is not None:
                    if residual(combined, context) is not True:
                        continue
                yield combined, combine_lineage(left_lineage, right_lineage)

    def describe(self) -> str:
        side = "build=left" if self._build_left else "build=right"
        return f"HashJoin({self._kind}, {side})"
