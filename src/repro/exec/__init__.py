"""Physical execution: Volcano-style operators and the execution context."""

from repro.exec.context import ExecutionContext, Session
from repro.exec.operators.base import PhysicalOperator

__all__ = ["ExecutionContext", "Session", "PhysicalOperator"]
