"""Per-shard health tracking: a consecutive-failure circuit breaker.

The coordinator classifies every shard interaction (scatter fragment,
DML hand-off, journal append) as a success or a failure and feeds the
outcome to a :class:`HealthTracker`. Each shard walks a three-state
circuit:

* **healthy** — the steady state; every success resets to it;
* **suspect** — at least ``suspect_after`` consecutive failures; the
  shard still serves traffic (failures may be transient and idempotent
  reads retry), but operators can see trouble building in
  ``cluster_health()``;
* **quarantined** — ``quarantine_after`` consecutive failures, or one
  *fatal* failure (a :class:`~repro.testing.faults.CrashError`, the
  simulated shard death). A quarantined shard is skipped on the scatter
  path (degraded reads), refused on the DML path, and stays out until
  :meth:`~repro.cluster.coordinator.ClusterDatabase.rejoin_shard`
  repairs and readmits it — the breaker never half-opens by itself,
  because an embedded shard cannot recover behind the coordinator's
  back.

The module also owns :func:`backoff_delay`, the jittered exponential
backoff used between scatter retries. The contract property tests pin
down: every delay lies in ``[base, cap]``, and the *range* jitter is
drawn from grows exponentially with the attempt number until it
saturates at ``cap``.
"""

from __future__ import annotations

import threading

#: shard circuit-breaker states
HEALTHY = "healthy"
SUSPECT = "suspect"
QUARANTINED = "quarantined"


def backoff_delay(attempt: int, base: float, cap: float, rng) -> float:
    """Jittered exponential backoff delay for retry ``attempt`` (0-based).

    Returns ``base + U[0, 1) * (min(cap, base * 2**attempt) - base)`` —
    i.e. uniform over ``[base, min(cap, base * 2**attempt))``, so every
    delay is at least ``base`` (never hammer immediately), never exceeds
    ``cap`` (deadlines stay meaningful), and concurrent retriers spread
    out instead of thundering in lockstep.
    """
    if base < 0 or cap < base:
        raise ValueError(
            f"need 0 <= base <= cap, got base={base!r} cap={cap!r}"
        )
    ceiling = min(cap, base * (2 ** max(attempt, 0)))
    return base + rng.random() * (ceiling - base)


class HealthTracker:
    """Consecutive-failure circuit breaker over a fixed shard set.

    Thread-safe: scatter workers record outcomes concurrently. State
    only moves *towards* quarantine on failures and resets on success;
    readmission is an explicit administrative act (:meth:`readmit`).
    """

    def __init__(
        self,
        shard_count: int,
        suspect_after: int = 1,
        quarantine_after: int = 3,
    ) -> None:
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        if suspect_after < 1 or quarantine_after < suspect_after:
            raise ValueError(
                "need 1 <= suspect_after <= quarantine_after, got "
                f"{suspect_after} / {quarantine_after}"
            )
        self.suspect_after = suspect_after
        self.quarantine_after = quarantine_after
        self._lock = threading.Lock()
        self._states: list[str] = []
        self._consecutive: list[int] = []
        self._last_error: list[str | None] = []
        self._quarantine_reason: list[str | None] = []
        self.reset(shard_count)

    def reset(self, shard_count: int) -> None:
        """Forget all history (reshard / rebuild)."""
        with self._lock:
            self._states = [HEALTHY] * shard_count
            self._consecutive = [0] * shard_count
            self._last_error = [None] * shard_count
            self._quarantine_reason = [None] * shard_count

    # ------------------------------------------------------------------
    # outcome recording

    def record_success(self, index: int) -> None:
        """A shard interaction completed; clears suspect state.

        Deliberately does *not* clear quarantine: a quarantined shard is
        skipped by routing, so a success attributed to it would be a
        coordinator bug, not a recovery signal.
        """
        with self._lock:
            if self._states[index] == QUARANTINED:
                return
            self._states[index] = HEALTHY
            self._consecutive[index] = 0
            self._last_error[index] = None

    def record_failure(
        self, index: int, error: BaseException, fatal: bool = False
    ) -> str:
        """Record one failed interaction; returns the resulting state.

        ``fatal=True`` (simulated process death) quarantines immediately
        — there is no point probing a dead shard ``quarantine_after``
        times.
        """
        with self._lock:
            self._last_error[index] = repr(error)
            self._consecutive[index] += 1
            if fatal or self._consecutive[index] >= self.quarantine_after:
                self._states[index] = QUARANTINED
                self._quarantine_reason[index] = repr(error)
            elif self._consecutive[index] >= self.suspect_after:
                if self._states[index] != QUARANTINED:
                    self._states[index] = SUSPECT
            return self._states[index]

    def quarantine(self, index: int, reason: str) -> None:
        """Administratively quarantine a shard (maintenance, tests)."""
        with self._lock:
            self._states[index] = QUARANTINED
            self._quarantine_reason[index] = reason

    def readmit(self, index: int) -> None:
        """Return a quarantined shard to service with a clean slate."""
        with self._lock:
            self._states[index] = HEALTHY
            self._consecutive[index] = 0
            self._last_error[index] = None
            self._quarantine_reason[index] = None

    # ------------------------------------------------------------------
    # queries

    def state(self, index: int) -> str:
        with self._lock:
            return self._states[index]

    def is_quarantined(self, index: int) -> bool:
        with self._lock:
            return self._states[index] == QUARANTINED

    def live(self) -> tuple[int, ...]:
        """Indices of shards eligible for traffic (healthy or suspect)."""
        with self._lock:
            return tuple(
                index
                for index, state in enumerate(self._states)
                if state != QUARANTINED
            )

    def quarantined(self) -> tuple[int, ...]:
        with self._lock:
            return tuple(
                index
                for index, state in enumerate(self._states)
                if state == QUARANTINED
            )

    def describe(self) -> list[dict]:
        """JSON-ready per-shard snapshot (``cluster_health()`` payload)."""
        with self._lock:
            return [
                {
                    "shard": index,
                    "state": self._states[index],
                    "consecutive_failures": self._consecutive[index],
                    "last_error": self._last_error[index],
                    "quarantine_reason": self._quarantine_reason[index],
                }
                for index in range(len(self._states))
            ]


__all__ = [
    "HEALTHY",
    "SUSPECT",
    "QUARANTINED",
    "HealthTracker",
    "backoff_delay",
]
