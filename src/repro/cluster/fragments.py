"""Fragment rewriting: split one optimized plan into shards + merge.

The coordinator compiles a statement once (parse, bind, rewrite, audit
instrumentation) and then cuts the instrumented logical plan at the
highest *shard-safe* node:

* **shard-safe** subtrees contain only Scan / Filter / Project / Join /
  Audit (and the no-FROM OneRow leaf). Run on every shard over its
  partition, the union of their outputs is exactly the single-node
  output — joins are sound because routing admits at most one
  partitioned table per plan (everything else is replicated), and audit
  operators are sound because the partition-by column is the
  distribution key, so each shard's ID view answers global membership
  for the rows that shard stores. Under the paper's sound heuristics
  (leaf-node, HCN, cost) audit operators never rise above an Aggregate /
  Distinct / Sort / Limit barrier, so they always land in the shard
  fragment and per-shard ACCESSED sets union losslessly at the gather.

* everything above the cut is rebuilt over a :class:`~repro.plan.logical.
  Gather` leaf and runs at the coordinator, with merge-aware rewrites at
  the boundary:

  - ``Aggregate`` with only COUNT / SUM / MIN / MAX splits into per-shard
    partials plus a final merge aggregate (COUNT merges by SUM); AVG and
    DISTINCT aggregates fall back to gathering the aggregate's *input*
    rows and running the original operator at the coordinator;
  - ``Sort`` pushes into the shards (each fragment emits its run in
    order) and the gather performs a k-way heap merge on the same keys —
    the coordinator never re-sorts;
  - ``Distinct`` and ``Limit`` push a local copy into the shards (local
    dedup / local top-k bounds what crosses the exchange) and re-apply
    at the coordinator.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ClusterRoutingError
from repro.expr.nodes import ColumnRef, SubqueryExpression
from repro.plan import logical as L
from repro.plan.builder import OneRow

#: operators whose per-shard union equals the single-node output
_SHARD_SAFE = (L.Scan, L.Filter, L.Project, L.Join, L.Audit, OneRow)

#: aggregate -> merge aggregate for the partial/final split
_MERGE_AGGREGATE = {"count": "sum", "sum": "sum", "min": "min", "max": "max"}


@dataclass
class ScatterPlan:
    """One statement's physical distribution: fragment + merge stage."""

    #: logical fragment every shard compiles and runs over its partition
    shard_plan: L.LogicalPlan
    #: sort keys (bound over the fragment output) for an ordered k-way
    #: merge at the gather; None = plain union in shard order
    merge_sort_keys: tuple[L.SortKey, ...] | None
    #: coordinator-side plan over a Gather leaf; None when the gathered
    #: stream is already the final result
    upper: L.LogicalPlan | None
    #: exchange key the Gather leaf reads from ``context.gather_rows``
    gather_key: int


def _subtree_shard_safe(plan: L.LogicalPlan) -> bool:
    return all(isinstance(node, _SHARD_SAFE) for node in plan.walk())


def _node_expressions(node: L.LogicalPlan):
    if isinstance(node, L.Scan):
        if node.predicate is not None:
            yield node.predicate
    elif isinstance(node, L.Filter):
        yield node.predicate
    elif isinstance(node, L.Project):
        yield from node.expressions
    elif isinstance(node, L.Join):
        if node.condition is not None:
            yield node.condition
    elif isinstance(node, L.Aggregate):
        yield from node.group_expressions
        for spec in node.aggregates:
            if spec.argument is not None:
                yield spec.argument
    elif isinstance(node, L.Sort):
        for key in node.keys:
            yield key.expression


def iter_subquery_plans(plan: L.LogicalPlan):
    """Every bound subquery plan nested anywhere under ``plan``."""
    for node in plan.walk():
        for expression in _node_expressions(node):
            for part in expression.walk():
                if (
                    isinstance(part, SubqueryExpression)
                    and part.plan is not None
                ):
                    yield part.plan
                    yield from iter_subquery_plans(part.plan)


def partitioned_scans(plan: L.LogicalPlan, topology) -> list[L.Scan]:
    """Scans of partitioned tables in the main plan (not subqueries)."""
    return [
        node
        for node in plan.walk()
        if isinstance(node, L.Scan) and topology.is_partitioned(node.table_name)
    ]


def check_routable(plan: L.LogicalPlan, topology) -> bool:
    """True when ``plan`` needs a scatter; raises on unsound shapes.

    Routing rules (v1, documented in DESIGN.md §11): at most one
    partitioned-table scan in the main plan, and none inside subquery
    expressions — a subquery executes per-shard and would silently read
    one partition where the single-node semantics read the whole table.
    """
    for subplan in iter_subquery_plans(plan):
        inner = partitioned_scans(subplan, topology)
        if inner:
            raise ClusterRoutingError(
                f"subquery reads partitioned table "
                f"{inner[0].table_name!r}; partitioned tables may only "
                "appear in the main FROM clause of a sharded query"
            )
    scans = partitioned_scans(plan, topology)
    if len(scans) > 1:
        names = sorted({scan.table_name for scan in scans})
        raise ClusterRoutingError(
            "query reads more than one partitioned-table instance "
            f"({', '.join(names)}); distributed joins and self-joins of "
            "partitioned tables are not supported"
        )
    return bool(scans)


def _splittable_aggregate(aggregate: L.Aggregate) -> bool:
    return all(
        not spec.distinct and spec.name.lower() in _MERGE_AGGREGATE
        for spec in aggregate.aggregates
    )


def _final_aggregate(
    aggregate: L.Aggregate, child: L.LogicalPlan
) -> L.Aggregate:
    """Merge aggregate over gathered partial rows.

    Partial output is ``group columns ++ aggregate columns``; the final
    groups re-key on the group slots and each aggregate merges its
    partial slot (COUNT partials are summed — each shard already
    counted; SUM / MIN / MAX merge with themselves).
    """
    group_count = len(aggregate.group_expressions)
    final_groups = tuple(
        ColumnRef(aggregate.columns[slot].name, index=slot)
        for slot in range(group_count)
    )
    final_specs = tuple(
        L.AggregateSpec(
            _MERGE_AGGREGATE[spec.name.lower()],
            ColumnRef(
                aggregate.columns[group_count + position].name,
                index=group_count + position,
            ),
        )
        for position, spec in enumerate(aggregate.aggregates)
    )
    return L.Aggregate(child, final_groups, final_specs, aggregate.columns)


def split_plan(
    plan: L.LogicalPlan, topology, gather_key: int
) -> ScatterPlan:
    """Cut ``plan`` into a per-shard fragment plus a coordinator stage."""
    # 1. peel the coordinator-only chain off the root
    chain: list[L.LogicalPlan] = []
    cut = plan
    while not _subtree_shard_safe(cut):
        children = cut.children()
        if len(children) != 1:
            raise ClusterRoutingError(
                f"cannot scatter a plan with a {type(cut).__name__} above "
                "an aggregate/sort/distinct subtree (v1 supports a linear "
                "coordinator stage; restructure the query or run it on a "
                "single-node database)"
            )
        chain.append(cut)
        cut = children[0]

    # 2. boundary rewrites, walking the chain bottom-up. While still
    # adjacent to the cut, Sort/Distinct/Limit push local copies into the
    # fragment and a splittable Aggregate splits partial/final; the first
    # coordinator-only node ends adjacency.
    shard_plan = cut
    merge_sort_keys: tuple[L.SortKey, ...] | None = None
    upper_nodes: list[L.LogicalPlan | tuple] = []  # bottom-first
    adjacent = True
    for node in reversed(chain):
        if adjacent and isinstance(node, L.Aggregate):
            if _splittable_aggregate(node):
                shard_plan = replace(node, child=shard_plan)
                upper_nodes.append(("final-aggregate", node))
            else:
                upper_nodes.append(node)
            adjacent = False
            continue
        if adjacent and isinstance(node, L.Distinct):
            shard_plan = L.Distinct(shard_plan)
            upper_nodes.append(node)
            continue
        if adjacent and isinstance(node, L.Sort):
            shard_plan = replace(node, child=shard_plan)
            merge_sort_keys = node.keys
            continue  # the ordered gather replaces the coordinator sort
        if adjacent and isinstance(node, L.Limit):
            shard_plan = replace(node, child=shard_plan)
            upper_nodes.append(node)
            continue
        adjacent = False
        upper_nodes.append(node)

    # 3. rebuild the coordinator stage over the exchange leaf
    gather_columns = (
        shard_plan.columns
        if not upper_nodes or not isinstance(upper_nodes[0], tuple)
        else upper_nodes[0][1].columns
    )
    upper: L.LogicalPlan | None = None
    current: L.LogicalPlan = L.Gather(gather_key, tuple(gather_columns))
    if upper_nodes:
        for entry in upper_nodes:
            if isinstance(entry, tuple):
                current = _final_aggregate(entry[1], current)
            else:
                current = entry.replace_children([current])
        upper = current

    return ScatterPlan(
        shard_plan=shard_plan,
        merge_sort_keys=merge_sort_keys,
        upper=upper,
        gather_key=gather_key,
    )


__all__ = [
    "ScatterPlan",
    "check_routable",
    "iter_subquery_plans",
    "partitioned_scans",
    "split_plan",
]
