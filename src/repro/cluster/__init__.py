"""Horizontally sharded engine: scatter-gather over embedded shards.

``ClusterDatabase`` hash-partitions sensitive tables on their audit
partition-by column across N embedded :class:`~repro.database.Database`
shards and exposes the single-node facade (``execute`` /
``offline_audit`` / ``attach_journal`` / ``recover`` / ``serve``). The
coordinator parses and optimizes once, splits the instrumented plan into
per-shard fragments plus a merge stage, executes the fragments in
parallel, and unions per-shard ACCESSED sets at the gather so trigger
firings and audit attribution match a single-node run exactly.

The layer is fault-tolerant (DESIGN.md §12): fragments run under
per-shard deadlines with cooperative cancellation, transient failures
retry with jittered backoff, a per-shard circuit breaker
(:class:`~repro.cluster.health.HealthTracker`) quarantines failing
shards, reads degrade or refuse by audit policy, and
``rejoin_shard`` repairs and readmits a shard online.
"""

from repro.cluster.coordinator import ClusterDatabase
from repro.cluster.health import (
    HEALTHY,
    QUARANTINED,
    SUSPECT,
    HealthTracker,
    backoff_delay,
)
from repro.cluster.topology import Topology, shard_of

__all__ = [
    "HEALTHY",
    "QUARANTINED",
    "SUSPECT",
    "ClusterDatabase",
    "HealthTracker",
    "Topology",
    "backoff_delay",
    "shard_of",
]
