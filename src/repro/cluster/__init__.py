"""Horizontally sharded engine: scatter-gather over embedded shards.

``ClusterDatabase`` hash-partitions sensitive tables on their audit
partition-by column across N embedded :class:`~repro.database.Database`
shards and exposes the single-node facade (``execute`` /
``offline_audit`` / ``attach_journal`` / ``recover`` / ``serve``). The
coordinator parses and optimizes once, splits the instrumented plan into
per-shard fragments plus a merge stage, executes the fragments in
parallel, and unions per-shard ACCESSED sets at the gather so trigger
firings and audit attribution match a single-node run exactly.
"""

from repro.cluster.coordinator import ClusterDatabase
from repro.cluster.topology import Topology, shard_of

__all__ = ["ClusterDatabase", "Topology", "shard_of"]
