"""Cluster topology: which tables are partitioned, and where rows live.

Partitioning is *audit-driven*: a table becomes hash-partitioned on its
audit partition-by column the moment a ``CREATE AUDIT EXPRESSION`` names
it as the sensitive table — the paper's partition-by key doubles as the
distribution key, which is what makes per-shard audit probes sound (a
sensitive ID and every base row carrying it live on the same shard, so
the shard-local ID view answers exactly the global membership question
for the rows that shard scans). Every other table is *replicated*: DDL
and DML broadcast to all shards, reads route to shard 0.

The hash must be stable across processes (Python's ``hash()`` is
randomized per process, and a subprocess shard backend must route
identically), so rows route by CRC-32 over the journal's canonical ID
encoding — the same codec that makes partition IDs recoverable.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass

from repro.durability.journal import encode_id
from repro.errors import DurabilityError


def _canonical_bytes(value: object) -> bytes:
    """Deterministic byte encoding of a partition-key value."""
    try:
        encoded = encode_id(value)
    except DurabilityError:
        # values outside the journal codec still need a stable home;
        # repr is deterministic for the engine's remaining value types
        encoded = repr(value)
    return repr(encoded).encode("utf-8")


def shard_of(value: object, shard_count: int) -> int:
    """Owning shard of a partition-key value (stable across processes)."""
    if shard_count <= 1:
        return 0
    return zlib.crc32(_canonical_bytes(value)) % shard_count


@dataclass(frozen=True)
class PartitionedTable:
    """One hash-partitioned table: name plus its distribution column."""

    table: str
    column: str
    position: int  # ordinal of ``column`` in the table schema


class Topology:
    """Shard count plus the table -> partition-column map, versioned.

    The version bumps on any change that can invalidate a compiled
    scatter plan's routing (a table becoming partitioned, a reshard);
    the coordinator's plan cache includes it in every entry's tag tuple,
    mirroring the stats-epoch mechanism single-node plans use.
    """

    def __init__(self, shard_count: int) -> None:
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        self.shard_count = shard_count
        self.version = 0
        self._partitioned: dict[str, PartitionedTable] = {}
        self._lock = threading.Lock()

    def is_partitioned(self, table: str) -> bool:
        return table.lower() in self._partitioned

    def partitioned(self, table: str) -> PartitionedTable | None:
        return self._partitioned.get(table.lower())

    def partitioned_tables(self) -> dict[str, PartitionedTable]:
        return dict(self._partitioned)

    def owner(self, table: str, value: object) -> int:
        """Owning shard for a row of ``table`` with partition key ``value``."""
        if not self.is_partitioned(table):
            raise KeyError(f"table {table!r} is not partitioned")
        return shard_of(value, self.shard_count)

    def partition_rows(
        self, table: str, rows
    ) -> dict[int, list[tuple]] | None:
        """Group full rows of ``table`` by owning shard.

        Returns ``None`` when the table is replicated (or the cluster has
        one shard) — i.e. when there is nothing to route. Used by INSERT
        routing, bulk loading, and the quarantine refusal check (an
        INSERT is refused only when a row's *owner* is down).
        """
        entry = self.partitioned(table)
        if entry is None or self.shard_count <= 1:
            return None
        owned: dict[int, list[tuple]] = {}
        for row in rows:
            owned.setdefault(
                shard_of(row[entry.position], self.shard_count), []
            ).append(row)
        return owned

    def add_partitioned(
        self, table: str, column: str, position: int
    ) -> None:
        """Mark ``table`` as hash-partitioned on ``column``.

        Idempotent for the same column; a second audit expression on the
        same table must share its partition-by column — two distribution
        keys cannot both co-locate rows with their sensitive IDs.
        """
        key = table.lower()
        with self._lock:
            existing = self._partitioned.get(key)
            if existing is not None:
                if existing.column != column.lower():
                    from repro.errors import ClusterRoutingError

                    raise ClusterRoutingError(
                        f"table {table!r} is already partitioned by "
                        f"{existing.column!r}; cannot repartition by "
                        f"{column!r} (audit expressions on one table must "
                        "share a partition-by column)"
                    )
                return
            self._partitioned[key] = PartitionedTable(
                key, column.lower(), position
            )
            self.version += 1

    def drop_table(self, table: str) -> None:
        """Forget a dropped table (keeps version monotonic on changes)."""
        with self._lock:
            if self._partitioned.pop(table.lower(), None) is not None:
                self.version += 1

    def reshard(self, shard_count: int) -> None:
        if shard_count < 1:
            raise ValueError(f"shard_count must be >= 1, got {shard_count}")
        with self._lock:
            self.shard_count = shard_count
            self.version += 1

    def describe(self) -> dict:
        """JSON-ready snapshot (the journal manifest and tests read it)."""
        return {
            "shards": self.shard_count,
            "version": self.version,
            "partitioned": {
                name: entry.column
                for name, entry in sorted(self._partitioned.items())
            },
        }


__all__ = ["PartitionedTable", "Topology", "shard_of"]
