"""The cluster coordinator: a :class:`ClusterDatabase` facade over shards.

``ClusterDatabase`` owns N embedded :class:`~repro.database.Database`
shards (thread-backed; the shard boundary is expressed through plan
fragments, per-shard journals, and per-shard locks, so a subprocess
backend can slot in behind the same seams) and exposes the single-node
surface: ``execute`` / ``execute_script`` / ``offline_audit`` /
``attach_journal`` / ``recover`` / ``serve`` / ``transaction``.

Execution model (DESIGN.md §11):

* **compile once** — statements are parsed, bound, rewritten, and audit-
  instrumented against shard 0 (all shards share one catalog history,
  since DDL broadcasts), then split by :func:`repro.cluster.fragments.
  split_plan` into a shard fragment plus a coordinator merge stage;
* **scatter** — the fragment is compiled per shard against that shard's
  tables and ID views and executed in parallel on a thread pool (inline
  on the caller's thread during trigger firing, where the coordinator
  holds every shard's write lock);
* **gather** — per-shard rows are unioned (or k-way merged on the
  fragment's ORDER BY run), per-shard ACCESSED sets are unioned, and the
  merge stage runs over a ``Gather`` leaf at the coordinator;
* **one trigger runtime** — SELECT triggers fire exactly once, at the
  coordinator, with the transient ``accessed`` relation registered on
  every shard and body statements routed back through the coordinator
  (so their DML broadcasts and their SELECTs scatter like any other
  statement); per-shard audit journals record each shard's owned slice
  of the intent, and recovery replays per-shard journals through the
  same coordinator firing path, preserving per-user attribution.

Routing: DML on a partitioned table goes to the owning shard(s) by
partition key; everything else broadcasts (replicated tables) or runs on
shard 0 (reads of replicated data). Statements the coordinator cannot
route soundly raise :class:`~repro.errors.ClusterRoutingError` rather
than silently diverging from single-node semantics.

Fault tolerance (DESIGN.md §12): every scatter fragment runs under an
optional per-shard deadline with cooperative cancellation; transient
(non-deterministic) fragment failures retry with jittered exponential
backoff; a per-shard circuit breaker (:class:`~repro.cluster.health.
HealthTracker`) quarantines shards that keep failing or die outright.
Reads over a quarantined shard either degrade (``fail_open`` +
``degraded_reads``: partial results from live shards, one audit gap per
skipped shard) or refuse with :class:`~repro.errors.
ClusterDegradedError`; DML that needs a quarantined shard always
refuses; :meth:`ClusterDatabase.rejoin_shard` repairs and readmits a
shard online, replaying its journal through the PR-4 recovery path.
"""

from __future__ import annotations

import concurrent.futures
import heapq
import json
import pathlib
import random
import threading
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from contextlib import ExitStack, contextmanager, nullcontext
from dataclasses import dataclass

from repro.audit.placement import HEURISTIC_HCN
from repro.catalog.schema import Column, TableSchema
from repro.cluster.fragments import check_routable, split_plan
from repro.cluster.health import HealthTracker, backoff_delay
from repro.cluster.topology import Topology, shard_of
from repro.concurrency import (
    EMPTY_STATS,
    CancellationToken,
    DeadlineToken,
    interruptible_sleep,
)
from repro.database import Database, QueryResult
from repro.datatypes import value_sort_key
from repro.errors import (
    AccessDeniedError,
    ClusterDegradedError,
    ClusterError,
    ClusterRoutingError,
    DurabilityError,
    OperationCancelledError,
    ReproError,
    ShardTimeoutError,
    TriggerError,
    UnsupportedSqlError,
)
from repro.exec.context import DEFAULT_BATCH_SIZE, ExecutionContext, Session
from repro.exec.operators.base import PhysicalOperator, collect_rows
from repro.exec.operators.sort import _Reversed
from repro.expr.evaluator import evaluate
from repro.expr.nodes import Literal, SubqueryExpression
from repro.optimizer.physical import PhysicalPlanner
from repro.plan.builder import Scope
from repro.plan.logical import SortKey, format_plan
from repro.plancache import PlanCache
from repro.sql import ast
from repro.sql.parser import parse_statement, parse_statements
from repro.storage.table import Table
from repro.testing.faults import NO_FAULTS, CrashError, FaultInjector
from repro.triggers.manager import MAX_TRIGGER_DEPTH

#: how long the coordinator waits for a cancelled fragment to reach its
#: next cooperative checkpoint before abandoning its context (latency
#: faults check their token every 10 ms; ``collect_rows`` every batch)
CANCEL_GRACE_S = 1.0

#: DDL statement classes replayed when a cluster is reshard()-ed
_LOGGED_DDL = (
    ast.CreateTableStatement,
    ast.CreateIndexStatement,
    ast.DropTableStatement,
    ast.CreateAuditExpressionStatement,
    ast.DropAuditExpressionStatement,
    ast.CreateSelectTriggerStatement,
    ast.CreateDmlTriggerStatement,
    ast.DropTriggerStatement,
)


@dataclass
class _CompiledSelect:
    """One SELECT's routed compilation (also the plan-cache entry).

    Duck-types :class:`repro.plancache.CachedPlan` — the cache touches
    only ``sql`` and ``tags``.
    """

    column_names: tuple[str, ...]
    kind: str  # 'single' (shard 0 only) | 'scatter'
    single_physical: PhysicalOperator | None = None
    #: per-shard compilations of the same logical fragment
    fragment_physicals: tuple[PhysicalOperator, ...] = ()
    upper_physical: PhysicalOperator | None = None
    merge_keys: tuple[SortKey, ...] | None = None
    gather_key: int = 0
    sql: str = ""
    tags: tuple = ()


class _UnionIdView:
    """Cluster-wide sensitive-ID membership over per-shard ID views.

    Compiled into coordinator-side audit operators (they can appear above
    the fragment cut under the highest-node strawman heuristic). Probes
    delegate live to every shard's view, so maintenance on any shard is
    visible immediately; the per-probe fan-out is acceptable because the
    sound heuristics never place audit operators here.
    """

    def __init__(self, views: tuple) -> None:
        self._views = views

    def __contains__(self, value: object) -> bool:
        return any(value in view for view in self._views)

    def ids(self) -> frozenset:
        merged: set = set()
        for view in self._views:
            merged |= view.ids()
        return frozenset(merged)


class _ShardRecoveryAdapter:
    """Duck-typed ``Database`` for :func:`recover_database`, per shard.

    Sequence bookkeeping and the replayed commit records stay with the
    shard (each shard owns its journal); firing and attribution go
    through the coordinator, so replayed trigger actions broadcast their
    DML exactly like the original firing did.
    """

    def __init__(self, cluster: "ClusterDatabase", shard: Database) -> None:
        self._cluster = cluster
        self._shard = shard
        self.audit_manager = shard.audit_manager
        self.faults = cluster.faults
        self.session = cluster.session

    def is_seq_applied(self, seq: int) -> bool:
        return self._shard.is_seq_applied(seq)

    def mark_seq_applied(self, seq: int, recovered: bool = False) -> None:
        self._shard.mark_seq_applied(seq, recovered=recovered)

    def replication_apply(self):
        # replay suppression is single-engine state; the coordinator's
        # dispatch path never consults it, so recovery replay through
        # the cluster needs no flag — just the context-manager shape
        return nullcontext()

    def _fire_accessed(self, accessed: dict, timing: str) -> None:
        self._cluster._fire_accessed(accessed, timing)


@dataclass
class ClusterRecoveryReport:
    """Merged result of recovering every shard's journal."""

    reports: tuple = ()

    def _total(self, name: str) -> int:
        return sum(getattr(report, name) for report in self.reports)

    @property
    def segments(self) -> int:
        return self._total("segments")

    @property
    def records(self) -> int:
        return self._total("records")

    @property
    def intents(self) -> int:
        return self._total("intents")

    @property
    def commits(self) -> int:
        return self._total("commits")

    @property
    def replayed(self) -> int:
        return self._total("replayed")

    @property
    def skipped_applied(self) -> int:
        return self._total("skipped_applied")

    @property
    def skipped_unknown(self) -> int:
        return self._total("skipped_unknown")

    @property
    def uncommitted(self) -> int:
        return self._total("uncommitted")

    @property
    def torn_tail(self) -> int:
        return self._total("torn_tail")

    @property
    def corrupt(self) -> int:
        return self._total("corrupt")

    @property
    def replayed_ids(self) -> dict:
        merged: dict[str, set] = {}
        for report in self.reports:
            for name, ids in report.replayed_ids.items():
                merged.setdefault(name, set()).update(ids)
        return merged


def _merge_accessed(target: dict[str, set], source: dict) -> None:
    for name, ids in source.items():
        if ids:
            target.setdefault(name, set()).update(ids)


def _ast_tables(select: ast.SelectStatement) -> set[str]:
    """Every base table an AST SELECT references, subqueries included."""
    tables: set[str] = set()

    def visit_from(item: ast.FromItem) -> None:
        if isinstance(item, ast.TableRef):
            tables.add(item.name.lower())
        elif isinstance(item, ast.JoinRef):
            visit_from(item.left)
            visit_from(item.right)
        else:
            inner = getattr(item, "select", None)
            if inner is not None:
                tables.update(_ast_tables(inner))

    for item in select.from_items:
        visit_from(item)
    expressions = [item.expression for item in select.items]
    expressions.extend(select.group_by)
    expressions.extend(order.expression for order in select.order_by)
    for candidate in (select.where, select.having):
        if candidate is not None:
            expressions.append(candidate)
    for expression in expressions:
        for node in expression.walk():
            if isinstance(node, SubqueryExpression) and node.select is not None:
                tables.update(_ast_tables(node.select))
    return tables


class ClusterDatabase:
    """A horizontally sharded engine with single-node audit semantics."""

    def __init__(
        self,
        shards: int = 2,
        user_id: str = "admin",
        audit_heuristic: str = HEURISTIC_HCN,
        clock=None,
        journal_path=None,
        journal_fsync: str = "batch",
        audit_policy: str = "fail_open",
        fault_injector: FaultInjector | None = None,
        shard_fault_injectors: dict[int, FaultInjector] | None = None,
        shard_deadline: float | None = None,
        shard_retries: int = 2,
        retry_backoff_base: float = 0.02,
        retry_backoff_cap: float = 0.5,
        degraded_reads: bool = True,
        suspect_after: int = 1,
        quarantine_after: int = 3,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if shard_deadline is not None and shard_deadline <= 0:
            raise ValueError(
                f"shard_deadline must be > 0, got {shard_deadline}"
            )
        if shard_retries < 0:
            raise ValueError(f"shard_retries must be >= 0, got {shard_retries}")
        self.topology = Topology(shards)
        self.session = Session(user_id=user_id, clock=clock)
        self.faults = fault_injector or NO_FAULTS
        #: per-fragment deadline (seconds). On the parallel scatter path
        #: the gather loop enforces it via future timeouts; on the
        #: inline path (trigger firing, single-shard) each fragment runs
        #: under a self-cancelling DeadlineToken, so a slow shard inside
        #: a trigger body is bounded too. None disables deadlines (a
        #: fragment may run arbitrarily long)
        self.shard_deadline = shard_deadline
        #: transient-failure retry budget per fragment (reads only — DML
        #: is never retried, it is not idempotent)
        self.shard_retries = shard_retries
        self.retry_backoff_base = retry_backoff_base
        self.retry_backoff_cap = retry_backoff_cap
        #: serve partial results from live shards under ``fail_open``
        #: when a shard is down (each skip records an audit gap); off —
        #: or ``fail_closed`` — refuses with ClusterDegradedError
        self.degraded_reads = degraded_reads
        self.health = HealthTracker(
            shards,
            suspect_after=suspect_after,
            quarantine_after=quarantine_after,
        )
        #: coordinator-level audit gaps (skipped-shard reads); shard-level
        #: gaps live on the shards themselves
        self._cluster_gaps: list[dict] = []
        self._acknowledged_cluster_gaps = 0
        #: shard index → replicated tables whose copy on *that shard*
        #: lagged behind (DML skipped it while the shard was down or
        #: dying). Tracked per (shard, table) so repair always copies
        #: from a fresh replica toward a stale one, never the reverse;
        #: a shard with an entry here must never serve as a repair
        #: source for that table.
        self._stale_replicas: dict[int, set[str]] = {}
        self._stats_lock = threading.Lock()
        self._degraded_read_count = 0
        self._scatter_retry_count = 0
        self._deadline_timeout_count = 0
        #: deterministic jitter source for retry backoff (seeded so runs
        #: are reproducible; property tests drive backoff_delay directly)
        self._retry_rng = random.Random(0x5EED)
        self._user_id = user_id
        self._clock = clock
        self._heuristic = audit_heuristic
        self._shard_faults = dict(shard_fault_injectors or {})
        self._default_shard_faults = fault_injector
        self._audit_policy_seed = audit_policy
        self._shards: list[Database] = [
            self._make_shard(index) for index in range(shards)
        ]
        #: coordinator plan cache; entries are tagged with the topology
        #: version so attach/detach/reshard invalidates scatter plans
        self.plan_cache = PlanCache()
        #: execution mode for fragments AND the merge stage
        self._exec_mode = "batch"
        self.batch_size = DEFAULT_BATCH_SIZE
        self.skipping = True
        #: per-fragment artificial stall (ms), slept on the worker thread
        #: before the fragment runs — models per-shard I/O/compute time a
        #: single-process harness cannot exhibit (GIL); recorded honestly
        #: by the cluster benchmark
        self.simulated_stall_ms = 0.0
        #: simulated storage latency (µs) per partitioned-table row stored
        #: on the fragment's shard. Models scan I/O proportional to the
        #: partition size: N-way sharding divides each fragment's stall by
        #: ~N and the sleeps overlap across worker threads (they release
        #: the GIL), which is exactly the scatter-gather win a 1-CPU
        #: Python harness cannot otherwise exhibit. Benchmarks that set
        #: this record it in their JSON.
        self.simulated_io_us_per_row = 0.0
        self._notifications: list[str] = []
        self._gather_key_lock = threading.Lock()
        self._gather_key = 0
        self._trigger_local = threading.local()
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        #: broadcast DDL replayed by reshard()
        self._ddl_log: list[ast.Statement] = []
        self._journal_root: pathlib.Path | None = None
        self._journal_fsync = journal_fsync
        if journal_path is not None:
            self.attach_journal(journal_path, fsync=journal_fsync)

    def _make_shard(self, index: int) -> Database:
        return Database(
            user_id=self._user_id,
            audit_heuristic=self._heuristic,
            clock=self._clock,
            audit_policy=self._audit_policy_seed,
            fault_injector=self._shard_faults.get(
                index, self._default_shard_faults
            ),
        )

    # ------------------------------------------------------------------
    # topology and shard access

    @property
    def shards(self) -> tuple[Database, ...]:
        return tuple(self._shards)

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    def shard(self, index: int) -> Database:
        return self._shards[index]

    def describe(self) -> dict:
        return self.topology.describe()

    # ------------------------------------------------------------------
    # knobs mirrored across shards

    @property
    def exec_mode(self) -> str:
        return self._exec_mode

    @exec_mode.setter
    def exec_mode(self, mode: str) -> None:
        for shard in self._shards:
            shard.exec_mode = mode  # validates; flips columnar costing
        self._exec_mode = mode

    @property
    def audit_enabled(self) -> bool:
        return self._shards[0].audit_enabled

    @audit_enabled.setter
    def audit_enabled(self, enabled: bool) -> None:
        for shard in self._shards:
            shard.audit_enabled = enabled

    @property
    def join_strategy(self) -> str:
        return self._shards[0].join_strategy

    @join_strategy.setter
    def join_strategy(self, strategy: str) -> None:
        for shard in self._shards:
            shard.join_strategy = strategy

    @property
    def audit_policy(self) -> str:
        return self._shards[0].audit_policy

    @audit_policy.setter
    def audit_policy(self, policy: str) -> None:
        for shard in self._shards:
            shard.audit_policy = policy

    @property
    def trigger_mode(self) -> str:
        """Always ``'sync'``: deferred firing is a single-node feature."""
        return "sync"

    @trigger_mode.setter
    def trigger_mode(self, mode: str) -> None:
        if mode != "sync":
            raise ClusterError(
                "ClusterDatabase fires SELECT triggers synchronously; "
                f"trigger_mode {mode!r} is not supported"
            )

    @property
    def audit_manager(self):
        """Shard 0's audit manager (the catalog-of-record for auditing)."""
        return self._shards[0].audit_manager

    @property
    def catalog(self):
        """Shard 0's catalog (schemas are identical on every shard)."""
        return self._shards[0].catalog

    @property
    def notifications(self) -> list[str]:
        """Coordinator NOTIFYs plus shard-local (DML-trigger) NOTIFYs."""
        merged = list(self._notifications)
        for shard in self._shards:
            merged.extend(shard.notifications)
        return merged

    @property
    def audit_gaps(self) -> list[dict]:
        """Shard-level gaps plus coordinator-level (skipped-shard) gaps."""
        merged = [
            gap for shard in self._shards for gap in shard.audit_gaps
        ]
        merged.extend(self._cluster_gaps)
        return merged

    @property
    def cluster_gaps(self) -> list[dict]:
        """Coordinator-level audit gaps only (degraded reads, lost
        journal slices) — each carries the shard index it blames."""
        return list(self._cluster_gaps)

    @property
    def trigger_errors(self) -> list:
        return []

    def drain_triggers(self) -> dict[str, int]:
        return dict(EMPTY_STATS)

    # ------------------------------------------------------------------
    # lifecycle

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
        for shard in self._shards:
            shard.close()

    def serve(self, host: str = "127.0.0.1", port: int = 0, **kwargs):
        """Start a network server over this cluster (same surface as
        :meth:`repro.database.Database.serve`)."""
        from repro.server import Server

        return Server(self, host=host, port=port, **kwargs)

    def _pool_get(self) -> ThreadPoolExecutor:
        pool = self._pool
        if pool is None:
            with self._pool_lock:
                pool = self._pool
                if pool is None:
                    pool = ThreadPoolExecutor(
                        max_workers=len(self._shards),
                        thread_name_prefix="repro-shard",
                    )
                    self._pool = pool
        return pool

    @contextmanager
    def _all_write_locks(self):
        """Exclusive access to every shard, acquired in shard order."""
        with ExitStack() as stack:
            for shard in self._shards:
                stack.enter_context(shard._engine_lock.write())
            yield

    # ------------------------------------------------------------------
    # public execution API

    def execute(
        self, sql: str, parameters: dict[str, object] | None = None
    ) -> QueryResult:
        """Parse, route, and execute one SQL statement."""
        text = sql.strip()
        if self._trigger_depth == 0:
            self.session.sql_text = text
        entry = self.plan_cache.lookup(text, self._plan_cache_tags())
        if entry is not None:
            return self._run_select_entry(entry, parameters)
        statement = parse_statement(sql)
        return self._execute_routed(statement, parameters, sql_key=text)

    def execute_script(self, sql: str) -> list[QueryResult]:
        results = []
        for statement in parse_statements(sql):
            results.append(self._execute_routed(statement, None))
        return results

    def explain(self, sql: str) -> str:
        """Routing decision plus fragment / merge-stage logical plans."""
        statement = parse_statement(sql)
        if not isinstance(statement, ast.SelectStatement):
            raise UnsupportedSqlError("EXPLAIN supports only SELECT")
        shard0 = self._shards[0]
        with shard0._engine_lock.read():
            logical = shard0._optimizer.optimize_logical(
                shard0._builder.build_select(statement),
                instrument=shard0._instrument_hook(),
            )
            if not check_routable(logical, self.topology):
                return "-- route: shard 0 --\n" + format_plan(logical)
            scatter = split_plan(logical, self.topology, 0)
        parts = [
            f"-- route: scatter across {len(self._shards)} shards --",
            "-- shard fragment --",
            format_plan(scatter.shard_plan),
        ]
        if scatter.merge_sort_keys is not None:
            parts.append("-- gather: ordered k-way merge --")
        else:
            parts.append("-- gather: union --")
        if scatter.upper is not None:
            parts.append("-- coordinator stage --")
            parts.append(format_plan(scatter.upper))
        return "\n".join(parts)

    # ------------------------------------------------------------------
    # statement routing

    def _execute_routed(
        self,
        statement: ast.Statement,
        parameters: dict[str, object] | None,
        sql_key: str | None = None,
    ) -> QueryResult:
        if isinstance(statement, ast.SelectStatement):
            return self._execute_select(statement, parameters, sql_key)
        if isinstance(statement, ast.InsertStatement):
            return self._execute_insert(statement, parameters)
        if isinstance(statement, ast.UpdateStatement):
            return self._execute_update(statement, parameters)
        if isinstance(statement, ast.DeleteStatement):
            return self._execute_delete(statement, parameters)
        if isinstance(statement, ast.TransactionStatement):
            return self._broadcast(statement, None)[0]
        if isinstance(statement, ast.CreateAuditExpressionStatement):
            return self._execute_create_audit(statement)
        if isinstance(statement, ast.AnalyzeStatement):
            results = self._broadcast(statement, None)
            self.plan_cache.clear()
            return results[0]
        if isinstance(statement, ast.IfStatement):
            return self._execute_if(statement, parameters)
        if isinstance(statement, ast.NotifyStatement):
            return self._execute_notify(statement, parameters)
        if isinstance(statement, ast.DenyStatement):
            return self._execute_deny(statement, parameters)
        if isinstance(statement, _LOGGED_DDL):
            return self._execute_ddl(statement)
        raise UnsupportedSqlError(
            f"cannot execute {type(statement).__name__}"
        )

    def _shard_dml_guard(self, index: int) -> None:
        """Fire the ``shard-dml`` fault site for one write hand-off.

        DML is never retried (it is not idempotent: a replayed INSERT
        double-inserts). A simulated shard death quarantines the shard
        immediately; a component failure counts against its breaker and
        propagates to the caller.
        """
        shard = self._shards[index]
        try:
            shard.faults.fire("shard-dml")
        except CrashError as exc:
            self.health.record_failure(index, exc, fatal=True)
            raise ClusterDegradedError(
                f"shard {index} died while applying DML; it has been "
                "quarantined — rejoin_shard() to restore it",
                shards=(index,),
            ) from exc
        except Exception as exc:
            self.health.record_failure(index, exc)
            raise

    def _mark_stale(self, index: int, table: str) -> None:
        """Record that shard ``index``'s replica of ``table`` lagged."""
        self._stale_replicas.setdefault(index, set()).add(table)

    def _stale_tables(self) -> set[str]:
        """Union of replicated tables stale on at least one shard."""
        if not self._stale_replicas:
            return set()
        return set().union(*self._stale_replicas.values())

    def _refuse_quarantined_write(self, what: str) -> None:
        """Refuse a statement that must apply on *every* shard."""
        quarantined = self.health.quarantined()
        if quarantined:
            raise ClusterDegradedError(
                f"{what} requires all shards, but shard(s) "
                f"{list(quarantined)} are quarantined; rejoin_shard() "
                "to restore them",
                shards=quarantined,
            )

    def _broadcast(
        self,
        statement: ast.Statement,
        parameters: dict[str, object] | None,
        replicated_table: str | None = None,
    ) -> list[QueryResult]:
        """Run one statement on every shard under this query's identity.

        ``replicated_table`` marks the statement as DML over a
        replicated table: with a shard quarantined it still applies on
        the live shards (availability for e.g. trigger-body audit-log
        INSERTs) and each skipped shard is marked stale for the table so
        rejoin repairs that lagging replica from a fresh one. Staleness
        is recorded only after at least one replica actually applied —
        if no shard applies, nothing diverged and the broadcast refuses
        instead. All other broadcasts — DDL, transactions,
        partitioned-table DML — refuse while any shard is down, because
        applying them on a subset would diverge the cluster.
        """
        quarantined = self.health.quarantined()
        if quarantined and replicated_table is None:
            self._refuse_quarantined_write(
                f"{type(statement).__name__}"
            )
        results = []
        #: shards this statement did not reach (quarantined up front, or
        #: died mid-broadcast); marked stale only once a replica applied
        missed: list[int] = []

        def _mark_divergence(from_index: int) -> None:
            # earlier replicas already applied; everything from
            # ``from_index`` on (plus the shards already skipped) lags
            if replicated_table is not None and results:
                for lagging in missed + list(
                    range(from_index, len(self._shards))
                ):
                    self._mark_stale(lagging, replicated_table)

        for index, shard in enumerate(self._shards):
            if index in quarantined:
                missed.append(index)
                continue
            if replicated_table is not None or isinstance(
                statement, (ast.UpdateStatement, ast.DeleteStatement)
            ):
                try:
                    self._shard_dml_guard(index)
                except ClusterDegradedError:
                    # shard died mid-broadcast; for replicated DML the
                    # live replicas carry on and rejoin repairs this one
                    if replicated_table is not None:
                        missed.append(index)
                        continue
                    raise
                except Exception:
                    _mark_divergence(index)
                    raise
            try:
                with shard.session.override(
                    self.session.sql_text, self.session.user_id
                ):
                    result = shard._execute_statement(statement, parameters)
            except Exception:
                _mark_divergence(index)
                raise
            results.append(result)
        if not results:
            raise ClusterDegradedError(
                "no live shard could apply the statement",
                shards=quarantined,
            )
        if replicated_table is not None:
            for index in missed:
                self._mark_stale(index, replicated_table)
        return results

    # ------------------------------------------------------------------
    # SELECT: compile once, scatter, gather, merge

    def _plan_cache_tags(self) -> tuple:
        shard0 = self._shards[0]
        return (
            "cluster",
            self.topology.version,
            len(self._shards),
            shard0.catalog.version,
            tuple(
                shard.catalog.refresh_stats_version()
                for shard in self._shards
            ),
            shard0.audit_manager.config_version,
            self.audit_enabled,
            shard0.audit_manager.heuristic,
            self.join_strategy,
            shard0._optimizer.join_reorder,
            self.exec_mode == "columnar",
        )

    def _next_gather_key(self) -> int:
        with self._gather_key_lock:
            self._gather_key += 1
            return self._gather_key

    def _resolve_union_view(self, name: str) -> _UnionIdView:
        return _UnionIdView(
            tuple(
                shard.audit_manager.resolve_view(name)
                for shard in self._shards
            )
        )

    def _compile_select(
        self, statement: ast.SelectStatement, instrument: bool = True
    ) -> _CompiledSelect:
        shard0 = self._shards[0]
        with shard0._engine_lock.read():
            logical = shard0._builder.build_select(statement)
            column_names = tuple(column.name for column in logical.columns)
            logical = shard0._optimizer.optimize_logical(
                logical,
                instrument=shard0._instrument_hook() if instrument else None,
            )
            if not check_routable(logical, self.topology):
                return _CompiledSelect(
                    column_names=column_names,
                    kind="single",
                    single_physical=shard0._optimizer.compile(logical),
                )
            scatter = split_plan(
                logical, self.topology, self._next_gather_key()
            )
            upper_physical = None
            if scatter.upper is not None:
                # coordinator-side audit operators (highest-node shapes)
                # must probe cluster-wide membership, not shard 0's view
                planner = PhysicalPlanner(
                    shard0.catalog, self._resolve_union_view
                )
                upper_physical = planner.compile(scatter.upper)
        fragments = []
        for shard in self._shards:
            with shard._engine_lock.read():
                fragments.append(shard._optimizer.compile(scatter.shard_plan))
        return _CompiledSelect(
            column_names=column_names,
            kind="scatter",
            fragment_physicals=tuple(fragments),
            upper_physical=upper_physical,
            merge_keys=scatter.merge_sort_keys,
            gather_key=scatter.gather_key,
        )

    def _execute_select(
        self,
        statement: ast.SelectStatement,
        parameters: dict[str, object] | None,
        sql_key: str | None = None,
    ) -> QueryResult:
        entry = self._compile_select(statement)
        if sql_key is not None and self._trigger_depth == 0:
            entry.sql = sql_key
            entry.tags = self._plan_cache_tags()
            self.plan_cache.store(entry)
        return self._run_select_entry(entry, parameters)

    def _shard_context(
        self,
        shard: Database,
        parameters: dict[str, object] | None,
        tombstones: dict[str, set] | None = None,
    ) -> ExecutionContext:
        context = ExecutionContext(
            session=self.session,
            parameters=parameters,
            compile_subquery=shard._optimizer.compile,
            batch_size=self.batch_size,
        )
        context.data_skipping = self.skipping
        if tombstones:
            context.tombstones = tombstones
        return context

    def _collect_result_rows(
        self,
        entry: _CompiledSelect,
        parameters: dict[str, object] | None,
        accessed_out: dict[str, set],
        tombstones: dict[str, set] | None = None,
    ) -> list[tuple]:
        """Run a compiled SELECT (no trigger side effects)."""
        if entry.kind == "single":
            if self.health.is_quarantined(0):
                # unroutable plans are bound to shard 0's catalog; there
                # is no partial result to degrade to
                raise ClusterDegradedError(
                    "shard 0 is quarantined and this statement routes "
                    "entirely to it; rejoin_shard(0) to restore service",
                    shards=(0,),
                )
            shard0 = self._shards[0]
            context = self._shard_context(shard0, parameters, tombstones)
            try:
                with shard0._engine_lock.read():
                    return collect_rows(
                        entry.single_physical, context, mode=self.exec_mode
                    )
            finally:
                _merge_accessed(accessed_out, context.accessed)
        return self._run_scatter(entry, parameters, accessed_out, tombstones)

    def _run_select_entry(
        self, entry: _CompiledSelect, parameters: dict[str, object] | None
    ) -> QueryResult:
        accessed: dict[str, set] = {}
        try:
            rows = self._collect_result_rows(entry, parameters, accessed)
        except BaseException:
            # §II: the AFTER action fires even when the query aborts — a
            # reader may have consumed a prefix of the result
            self._dispatch_after_triggers(accessed)
            raise
        try:
            self._fire_accessed(accessed, timing="before")
        finally:
            self._dispatch_after_triggers(accessed)
        return QueryResult(
            columns=entry.column_names,
            rows=rows,
            accessed={
                name: frozenset(ids) for name, ids in accessed.items()
            },
            rowcount=len(rows),
        )

    def _note_cluster_gap(
        self, site: str, shard_index: int, error: object
    ) -> None:
        """Record one coordinator-level audit gap (a skipped shard)."""
        self._cluster_gaps.append({
            "site": site,
            "shard": shard_index,
            "error": repr(error) if isinstance(error, BaseException)
            else str(error),
            "sql": self.session.sql_text,
            "user": self.session.user_id,
        })

    def _degraded_reads_allowed(self) -> bool:
        return self.degraded_reads and self.audit_policy == "fail_open"

    def _refuse_degraded(
        self, failures: list[tuple[int, object]]
    ) -> ClusterDegradedError:
        """Build the typed refusal for a read that lost shards."""
        indices = tuple(sorted({index for index, _ in failures}))
        detail = "; ".join(
            f"shard {index}: {error}" for index, error in failures
        )
        error = ClusterDegradedError(
            f"{len(indices)} shard(s) unavailable and the degraded-read "
            f"policy refuses partial results ({detail})", shards=indices,
        )
        for _, cause in failures:
            if isinstance(cause, BaseException):
                error.__cause__ = cause
                break
        return error

    def _absorb_degraded_read(
        self, failures: list[tuple[int, object]]
    ) -> None:
        """Apply the degraded-read policy to a scatter that lost shards.

        ``fail_open`` + ``degraded_reads``: serve partial results, one
        coordinator-level audit gap per lost shard (the skipped
        partition may hold sensitive rows this query would have
        disclosed — the trail must show the blind spot). Otherwise the
        read refuses with :class:`ClusterDegradedError`.
        """
        if not failures:
            return
        if not self._degraded_reads_allowed():
            raise self._refuse_degraded(failures)
        with self._stats_lock:
            self._degraded_read_count += 1
        for index, error in failures:
            self._note_cluster_gap("shard-read", index, error)

    def _run_scatter(
        self,
        entry: _CompiledSelect,
        parameters: dict[str, object] | None,
        accessed_out: dict[str, set],
        tombstones: dict[str, set] | None = None,
    ) -> list[tuple]:
        shards = self._shards
        quarantined = self.health.quarantined()
        #: (shard index, error) per shard this scatter could not serve
        failures: list[tuple[int, object]] = []
        if quarantined:
            if not self._degraded_reads_allowed():
                raise self._refuse_degraded(
                    [(index, "quarantined") for index in quarantined]
                )
            failures.extend(
                (index, f"quarantined: {self.health.describe()[index]['quarantine_reason']}")
                for index in quarantined
            )
        live = [
            index for index in range(len(shards))
            if index not in quarantined
        ]
        #: every context a fragment attempt ran under, per shard —
        #: partial ACCESSED of failed/retried attempts still merges
        attempt_contexts: dict[int, list[ExecutionContext]] = {
            index: [] for index in live
        }
        stall_s = self.simulated_stall_ms / 1000.0
        io_us = self.simulated_io_us_per_row

        def _fragment_stall(index: int) -> float:
            total = stall_s
            if io_us > 0:
                catalog = shards[index].catalog
                stored = sum(
                    len(catalog.table(name))
                    for name in self.topology.partitioned_tables()
                    if catalog.has_table(name)
                )
                total += stored * io_us / 1e6
            return total

        def run_fragment(
            index: int, token: CancellationToken | None = None
        ) -> list[tuple]:
            """One shard's fragment, with bounded transient retries.

            Deterministic engine errors (``ReproError``, including the
            canceller-induced ``OperationCancelledError``) and simulated
            shard death (``CrashError``) propagate immediately; anything
            else is infrastructure trouble a re-run of an idempotent
            read may survive, so it retries up to ``shard_retries``
            times with jittered exponential backoff.
            """
            shard = shards[index]
            attempt = 0
            while True:
                context = self._shard_context(shard, parameters, tombstones)
                context.cancel_token = token
                attempt_contexts[index].append(context)
                try:
                    shard.faults.fire("shard-scatter", cancel=token)
                    fragment_stall = _fragment_stall(index)
                    if fragment_stall > 0:
                        # releases the GIL, like real I/O
                        interruptible_sleep(fragment_stall, token)
                    with shard._engine_lock.read():
                        return collect_rows(
                            entry.fragment_physicals[index],
                            context,
                            mode=self.exec_mode,
                        )
                except ReproError:
                    raise
                except Exception as exc:
                    if attempt >= self.shard_retries or (
                        token is not None and token.cancelled
                    ):
                        raise
                    attempt += 1
                    with self._stats_lock:
                        self._scatter_retry_count += 1
                        delay = backoff_delay(
                            attempt - 1,
                            self.retry_backoff_base,
                            self.retry_backoff_cap,
                            self._retry_rng,
                        )
                    interruptible_sleep(delay, token)

        # fragments run inline (caller's thread) during trigger firing:
        # the coordinator holds every shard's write lock there, and only
        # the owning thread may re-enter it
        inline = (
            len(shards) == 1
            or self._trigger_depth > 0
            or getattr(self._trigger_local, "firing", 0) > 0
        )
        per_shard: list[list[tuple]] = [[] for _ in shards]
        #: deterministic query error to propagate (single-node parity)
        abort: BaseException | None = None
        if inline:
            for index in live:
                if abort is not None:
                    break
                # no gather thread to cancel an overrunning fragment
                # here, so the deadline rides on the token itself: every
                # cooperative checkpoint (collect_rows batches, fault
                # latency slices, backoff sleeps) compares the clock
                token = (
                    None if self.shard_deadline is None
                    else DeadlineToken(
                        time.monotonic() + self.shard_deadline
                    )
                )
                try:
                    per_shard[index] = run_fragment(index, token)
                    self.health.record_success(index)
                except CrashError as exc:
                    self.health.record_failure(index, exc, fatal=True)
                    failures.append((index, exc))
                except OperationCancelledError as exc:
                    if token is None:
                        abort = exc
                        continue
                    # the fragment tripped its own DeadlineToken — the
                    # inline analogue of a future.result timeout
                    with self._stats_lock:
                        self._deadline_timeout_count += 1
                    miss = ShardTimeoutError(
                        f"shard {index} missed the "
                        f"{self.shard_deadline}s fragment deadline"
                    )
                    self.health.record_failure(index, miss)
                    failures.append((index, miss))
                except ReproError as exc:
                    abort = exc
                except Exception as exc:
                    self.health.record_failure(index, exc)
                    failures.append((index, exc))
            for index in live:
                for context in attempt_contexts[index]:
                    _merge_accessed(accessed_out, context.accessed)
        else:
            tokens = {index: CancellationToken() for index in live}
            futures = {
                index: self._pool_get().submit(
                    run_fragment, index, tokens[index]
                )
                for index in live
            }
            deadline = (
                None if self.shard_deadline is None
                else time.monotonic() + self.shard_deadline
            )

            def cancel_outstanding() -> None:
                for other, future in futures.items():
                    if not future.done():
                        tokens[other].cancel()

            for index, future in futures.items():
                if abort is not None:
                    # the query is aborting: outstanding fragments were
                    # cancelled; give them one grace period to unwind
                    timeout: float | None = CANCEL_GRACE_S
                elif deadline is None:
                    timeout = None
                else:
                    timeout = max(deadline - time.monotonic(), 0.0)
                try:
                    rows = future.result(timeout=timeout)
                except concurrent.futures.TimeoutError:
                    tokens[index].cancel()
                    if abort is None:
                        with self._stats_lock:
                            self._deadline_timeout_count += 1
                        miss = ShardTimeoutError(
                            f"shard {index} missed the "
                            f"{self.shard_deadline}s fragment deadline"
                        )
                        self.health.record_failure(index, miss)
                        failures.append((index, miss))
                    continue
                except OperationCancelledError:
                    # the fragment honoured a cancellation we issued
                    continue
                except CrashError as exc:
                    self.health.record_failure(index, exc, fatal=True)
                    failures.append((index, exc))
                    continue
                except ReproError as exc:
                    # deterministic error — single-node parity demands
                    # it propagate unchanged; stop wasting shard time
                    if abort is None:
                        abort = exc
                        cancel_outstanding()
                    continue
                except Exception as exc:
                    self.health.record_failure(index, exc)
                    failures.append((index, exc))
                    continue
                per_shard[index] = rows
                self.health.record_success(index)
            # wait briefly for cancelled stragglers to hit a checkpoint
            # and release their shard read locks
            pending = [f for f in futures.values() if not f.done()]
            if pending:
                concurrent.futures.wait(pending, timeout=CANCEL_GRACE_S)
            # union ACCESSED before any abort propagates: partially-
            # executed fragments already touched sensitive rows. A
            # fragment still wedged past the grace period is skipped —
            # its context is live on another thread, and its shard's
            # loss is already recorded as a failure.
            for index in live:
                if futures[index].done():
                    for context in attempt_contexts[index]:
                        _merge_accessed(accessed_out, context.accessed)
        if abort is not None:
            raise abort
        self._absorb_degraded_read(failures)
        merged = self._gather(per_shard, entry, parameters)
        if entry.upper_physical is None:
            return merged
        shard0 = shards[0]
        upper_context = self._shard_context(shard0, parameters, tombstones)
        upper_context.gather_rows = {entry.gather_key: merged}
        try:
            with shard0._engine_lock.read():
                return collect_rows(
                    entry.upper_physical, upper_context, mode=self.exec_mode
                )
        finally:
            _merge_accessed(accessed_out, upper_context.accessed)

    def _gather(
        self,
        per_shard: list[list[tuple]],
        entry: _CompiledSelect,
        parameters: dict[str, object] | None,
    ) -> list[tuple]:
        if entry.merge_keys is None:
            merged: list[tuple] = []
            for rows in per_shard:
                merged.extend(rows)
            return merged
        # k-way merge of the fragments' sorted runs; ties break by
        # (shard index, position), making the interleave deterministic
        shard0 = self._shards[0]
        keys = entry.merge_keys
        with shard0._engine_lock.read():
            context = self._shard_context(shard0, parameters)

            def rank(row: tuple) -> tuple:
                parts = []
                for key in keys:
                    value = value_sort_key(
                        evaluate(key.expression, row, context)
                    )
                    parts.append(value if key.ascending else _Reversed(value))
                return tuple(parts)

            runs = [
                [(rank(row), index, position, row)
                 for position, row in enumerate(rows)]
                for index, rows in enumerate(per_shard)
            ]
        return [item[3] for item in heapq.merge(*runs)]

    # ------------------------------------------------------------------
    # SELECT-trigger runtime (coordinator-level, fires exactly once)

    @property
    def _trigger_depth(self) -> int:
        return getattr(self._trigger_local, "depth", 0)

    def _enter_trigger(self) -> None:
        depth = self._trigger_depth
        if depth >= MAX_TRIGGER_DEPTH:
            raise TriggerError(
                f"trigger cascade exceeded depth {MAX_TRIGGER_DEPTH}"
            )
        self._trigger_local.depth = depth + 1

    def _leave_trigger(self) -> None:
        self._trigger_local.depth = self._trigger_depth - 1

    def _dispatch_after_triggers(self, accessed: dict[str, set]) -> None:
        if not accessed:
            return
        has_after = self._shards[0].trigger_manager.has_select_triggers(
            "after"
        )
        seqs: list[tuple[Database, int | None]] = []
        if has_after and self._trigger_depth == 0:
            seqs = self._journal_intents(accessed)
        self._fire_accessed(accessed, timing="after")
        for shard, seq in seqs:
            with shard.session.override(
                self.session.sql_text, self.session.user_id
            ):
                shard._journal_commit(seq)

    def _journal_intents(
        self, accessed: dict[str, set]
    ) -> list[tuple[Database, int | None]]:
        """Append each shard's owned slice of this query's intent.

        Partition IDs of a partitioned sensitive table are owned by the
        shard the hash routes them to — the shard whose journal must
        survive for that ID's firing to be replayable. IDs of replicated
        sensitive tables are journaled on shard 0.

        A shard whose journal cannot take its slice (quarantined, or the
        ``shard-journal`` fault site fires) feeds the audit policy:
        ``fail_open`` records the gap and the query proceeds,
        ``fail_closed`` raises — the other shards' slices already
        journaled stay (their IDs' firings remain replayable).
        """
        if self._journal_root is None:
            return []
        shard0 = self._shards[0]
        count = len(self._shards)
        seqs: list[tuple[Database, int | None]] = []
        for index, shard in enumerate(self._shards):
            subset: dict[str, set] = {}
            for name, ids in accessed.items():
                if not ids:
                    continue
                expression = shard0.audit_manager.expression(name)
                if (
                    count > 1
                    and self.topology.is_partitioned(
                        expression.sensitive_table
                    )
                ):
                    owned = {
                        value
                        for value in ids
                        if shard_of(value, count) == index
                    }
                else:
                    owned = set(ids) if index == 0 else set()
                if owned:
                    subset[name] = owned
            if not subset:
                continue
            if self.health.is_quarantined(index):
                self._journal_slice_failed(
                    index,
                    ClusterDegradedError(
                        f"shard {index}'s journal is quarantined",
                        shards=(index,),
                    ),
                )
                continue
            try:
                shard.faults.fire("shard-journal")
            except CrashError as exc:
                self.health.record_failure(index, exc, fatal=True)
                self._journal_slice_failed(index, exc)
                continue
            except Exception as exc:
                self.health.record_failure(index, exc)
                self._journal_slice_failed(index, exc)
                continue
            with shard.session.override(
                self.session.sql_text, self.session.user_id
            ):
                seqs.append((shard, shard._journal_intent(subset)))
        return seqs

    def _journal_slice_failed(
        self, index: int, error: BaseException
    ) -> None:
        """Apply the audit policy to one shard's unjournalable slice."""
        if self.audit_policy == "fail_closed":
            from repro.errors import AuditUnavailableError

            raise AuditUnavailableError(
                f"audit trail unavailable at shard-journal (shard "
                f"{index}): {error}"
            ) from error
        self._note_cluster_gap("shard-journal", index, error)

    def _fire_accessed(self, accessed: dict, timing: str) -> None:
        if not accessed:
            return
        manager = self._shards[0].trigger_manager
        if not manager.has_select_triggers(timing):
            return
        self.faults.fire("trigger-action")
        self._trigger_local.firing = (
            getattr(self._trigger_local, "firing", 0) + 1
        )
        try:
            with self._all_write_locks():
                # §II-C: actions are a system transaction on every shard
                previous = [shard._active_undo for shard in self._shards]
                for shard in self._shards:
                    shard._active_undo = None
                try:
                    for audit_name, ids in accessed.items():
                        if not ids:
                            continue
                        for trigger in manager.select_triggers_for(
                            audit_name
                        ):
                            if trigger.timing != timing:
                                continue
                            self._run_select_trigger(
                                trigger, audit_name, ids
                            )
                finally:
                    for shard, undo in zip(self._shards, previous):
                        shard._active_undo = undo
        finally:
            self._trigger_local.firing -= 1

    def _run_select_trigger(self, trigger, audit_name: str, ids) -> None:
        """Run one trigger's body through coordinator routing.

        The transient ``accessed`` relation is registered on *every*
        shard so body SELECTs can join it against partitioned tables
        (each fragment sees the full ACCESSED set — replicated-table
        semantics); body DML broadcasts or routes like any statement.
        """
        shard0 = self._shards[0]
        expression = shard0.audit_manager.expression(audit_name)
        sensitive = shard0.catalog.table(expression.sensitive_table)
        id_column = sensitive.schema.column(expression.partition_by)
        for shard in self._shards:
            if shard.catalog.has_table("accessed"):
                raise TriggerError(
                    "a relation named 'accessed' already exists; it is "
                    "reserved for SELECT trigger actions"
                )
        registered: list[Database] = []
        try:
            for shard in self._shards:
                schema = TableSchema(
                    name="accessed",
                    columns=(Column(id_column.name, id_column.data_type),),
                )
                accessed_table = Table(schema)
                accessed_table.bulk_load(
                    (value,) for value in sorted(ids, key=repr)
                )
                shard.catalog.add_table(accessed_table, transient=True)
                registered.append(shard)
            self._enter_trigger()
            try:
                for statement in trigger.body:
                    self._execute_routed(statement, None)
            except AccessDeniedError:
                if trigger.timing != "before":
                    raise TriggerError(
                        f"trigger {trigger.name!r}: DENY is only valid "
                        "in BEFORE SELECT triggers"
                    ) from None
                raise
            finally:
                self._leave_trigger()
        finally:
            for shard in registered:
                shard.catalog.drop_table("accessed", transient=True)

    # ------------------------------------------------------------------
    # DML routing

    def _assert_no_partitioned_subqueries(self, expressions) -> None:
        for expression in expressions:
            if expression is None:
                continue
            for node in expression.walk():
                if (
                    isinstance(node, SubqueryExpression)
                    and node.select is not None
                ):
                    for name in _ast_tables(node.select):
                        if self.topology.is_partitioned(name):
                            raise ClusterRoutingError(
                                f"subquery reads partitioned table "
                                f"{name!r}; it would see one shard's "
                                "partition where single-node semantics "
                                "see the whole table"
                            )

    def _execute_insert(
        self,
        statement: ast.InsertStatement,
        parameters: dict[str, object] | None,
    ) -> QueryResult:
        shard0 = self._shards[0]
        table_name = statement.table.lower()
        schema = shard0.catalog.table(table_name).schema
        if statement.select is not None:
            # materialize ONCE at the coordinator (scatter included), so
            # every replica receives identical rows and now()/user_id()
            # evaluate exactly once — then broadcast as literals
            source = self._execute_select(statement.select, parameters)
            value_rows = [tuple(row) for row in source.rows]
        else:
            for row in statement.rows:
                self._assert_no_partitioned_subqueries(row)
            with shard0._engine_lock.read():
                scope = Scope(())
                context = self._shard_context(shard0, parameters)
                value_rows = [
                    tuple(
                        evaluate(
                            shard0._builder.bind_expression(expr, scope),
                            (),
                            context,
                        )
                        for expr in row
                    )
                    for row in statement.rows
                ]
        full_rows = [
            shard0._arrange_insert_row(schema, statement.columns, values)
            for values in value_rows
        ]
        count = len(self._shards)
        owned = self.topology.partition_rows(table_name, full_rows)
        replicated = owned is None
        if replicated:
            routed = {index: full_rows for index in range(count)}
        else:
            routed = owned
        quarantined = self.health.quarantined()
        if quarantined and not replicated:
            # a partitioned INSERT is refused only when one of *its* rows
            # routes to a dead shard — and before any row lands anywhere
            owners_down = sorted(set(routed) & set(quarantined))
            if owners_down:
                raise ClusterDegradedError(
                    f"INSERT routes rows to quarantined shard(s) "
                    f"{owners_down}; rejoin_shard() to restore them",
                    shards=tuple(owners_down),
                )
        targets = [index for index in sorted(routed) if routed[index]]
        #: shards whose replica missed the rows; stale-marked only once
        #: at least one live replica applied (no apply → no divergence)
        missed: list[int] = []
        applied: list[int] = []

        def _mark_divergence(from_index: int) -> None:
            if replicated and applied:
                for lagging in missed + [
                    i for i in targets if i >= from_index
                ]:
                    self._mark_stale(lagging, table_name)

        for index in targets:
            rows = routed[index]
            if index in quarantined:
                # replicated INSERT: live replicas proceed, this one is
                # repaired from a live copy at rejoin
                missed.append(index)
                continue
            try:
                self._shard_dml_guard(index)
            except ClusterDegradedError:
                if replicated:
                    missed.append(index)
                    continue
                raise
            except Exception:
                _mark_divergence(index)
                raise
            shard = self._shards[index]
            literal_statement = ast.InsertStatement(
                table=statement.table,
                columns=(),
                rows=tuple(
                    tuple(Literal(value) for value in row)
                    for row in rows
                ),
                select=None,
            )
            try:
                with shard.session.override(
                    self.session.sql_text, self.session.user_id
                ):
                    shard._execute_statement(literal_statement, None)
            except Exception:
                _mark_divergence(index)
                raise
            applied.append(index)
        if replicated and missed:
            if not applied:
                raise ClusterDegradedError(
                    f"INSERT into replicated table {table_name!r} found "
                    "no live replica to apply on; rejoin_shard() to "
                    "restore one",
                    shards=tuple(missed),
                )
            for index in missed:
                self._mark_stale(index, table_name)
        return QueryResult(rowcount=len(full_rows))

    def _execute_update(
        self,
        statement: ast.UpdateStatement,
        parameters: dict[str, object] | None,
    ) -> QueryResult:
        table_name = statement.table.lower()
        partitioned = self.topology.partitioned(table_name)
        if partitioned is not None:
            for column, _ in statement.assignments:
                if column.lower() == partitioned.column:
                    raise ClusterRoutingError(
                        f"UPDATE assigns partition column "
                        f"{partitioned.column!r} of {table_name!r}; "
                        "moving rows between shards is not supported — "
                        "DELETE and re-INSERT instead"
                    )
        self._assert_no_partitioned_subqueries(
            [expression for _, expression in statement.assignments]
            + [statement.where]
        )
        results = self._broadcast(
            statement,
            parameters,
            replicated_table=None if partitioned is not None else table_name,
        )
        if partitioned is not None and len(self._shards) > 1:
            return QueryResult(
                rowcount=sum(result.rowcount for result in results)
            )
        return QueryResult(rowcount=results[0].rowcount)

    def _execute_delete(
        self,
        statement: ast.DeleteStatement,
        parameters: dict[str, object] | None,
    ) -> QueryResult:
        table_name = statement.table.lower()
        self._assert_no_partitioned_subqueries([statement.where])
        partitioned_table = self.topology.is_partitioned(table_name)
        results = self._broadcast(
            statement,
            parameters,
            replicated_table=None if partitioned_table else table_name,
        )
        if (
            self.topology.is_partitioned(table_name)
            and len(self._shards) > 1
        ):
            return QueryResult(
                rowcount=sum(result.rowcount for result in results)
            )
        return QueryResult(rowcount=results[0].rowcount)

    # ------------------------------------------------------------------
    # DDL: broadcast, with audit DDL driving repartitioning

    def _execute_ddl(self, statement: ast.Statement) -> QueryResult:
        if isinstance(statement, ast.CreateTableStatement):
            for _, ref_table, _ in statement.foreign_keys:
                if self.topology.is_partitioned(ref_table):
                    raise ClusterRoutingError(
                        f"foreign key references partitioned table "
                        f"{ref_table!r}; cross-shard referential checks "
                        "are not supported"
                    )
        results = self._broadcast(statement, None)
        if isinstance(statement, ast.DropTableStatement):
            self.topology.drop_table(statement.name)
        self._ddl_log.append(statement)
        return results[0]

    def _execute_create_audit(
        self, statement: ast.CreateAuditExpressionStatement
    ) -> QueryResult:
        """CREATE AUDIT EXPRESSION: the partition-by column becomes the
        sensitive table's distribution key.

        If the table was replicated until now, its rows are repartitioned
        (each shard keeps only the rows it owns) *before* the DDL
        broadcasts — so each shard's ID view materializes over exactly
        its partition, which is what makes per-shard audit probes sound.
        """
        shard0 = self._shards[0]
        table_name = statement.sensitive_table.lower()
        for referenced in _ast_tables(statement.select):
            if referenced != table_name and self.topology.is_partitioned(
                referenced
            ):
                raise ClusterRoutingError(
                    f"audit expression {statement.name!r} references "
                    f"partitioned table {referenced!r}; per-shard ID "
                    "views would diverge from the single-node view"
                )
        if not shard0.catalog.has_table(table_name) or \
                shard0.audit_manager.has_expression(statement.name):
            # let shard 0 raise the engine's own error, with no cluster
            # state touched
            results = self._broadcast(statement, None)
            self._ddl_log.append(statement)
            return results[0]
        schema = shard0.catalog.table(table_name).schema
        position = schema.position_of(statement.partition_by)
        for table in shard0.catalog.tables():
            for foreign_key in table.schema.foreign_keys:
                if foreign_key.ref_table == table_name:
                    raise ClusterRoutingError(
                        f"table {table.schema.name!r} has a foreign key "
                        f"referencing {table_name!r}; partitioning it "
                        "would break cross-shard referential checks"
                    )
        newly_partitioned = not self.topology.is_partitioned(table_name)
        if newly_partitioned and len(self._shards) > 1 and \
                self.in_transaction:
            raise ClusterError(
                "CREATE AUDIT EXPRESSION repartitions "
                f"{table_name!r} and cannot run inside an open "
                "transaction"
            )
        with self._all_write_locks():
            # validates one-distribution-key-per-table
            self.topology.add_partitioned(
                table_name, statement.partition_by, position
            )
            if newly_partitioned and len(self._shards) > 1:
                self._repartition(table_name, position)
            results = self._broadcast(statement, None)
        self._ddl_log.append(statement)
        return results[0]

    def _repartition(self, table_name: str, position: int) -> None:
        """Move a replicated table's rows to their owning shards.

        Every replica is identical (DML broadcast until now), so shard
        0's copy is the source of truth. ``truncate`` + ``bulk_load``
        bypass observers: there is no audit expression on the table yet
        (this runs just before its first one), and the movement is not a
        business event for DML triggers — the logical content of the
        cluster-wide union is unchanged.
        """
        count = len(self._shards)
        rows = list(self._shards[0].catalog.table(table_name).rows())
        owned: dict[int, list[tuple]] = {}
        for row in rows:
            owned.setdefault(shard_of(row[position], count), []).append(row)
        for index, shard in enumerate(self._shards):
            table = shard.catalog.table(table_name)
            table.truncate()
            table.bulk_load(owned.get(index, ()))

    # ------------------------------------------------------------------
    # trigger-body control statements (coordinator-evaluated)

    def _execute_if(
        self,
        statement: ast.IfStatement,
        parameters: dict[str, object] | None,
    ) -> QueryResult:
        self._assert_no_partitioned_subqueries([statement.condition])
        shard0 = self._shards[0]
        with shard0._engine_lock.read():
            bound = shard0._builder.bind_expression(
                statement.condition, Scope(())
            )
            context = self._shard_context(shard0, parameters)
            taken = evaluate(bound, (), context) is True
        if taken:
            return self._execute_routed(statement.then, parameters)
        return QueryResult()

    def _evaluate_message(
        self,
        expression,
        parameters: dict[str, object] | None,
        default: str,
    ) -> str:
        if expression is None:
            return default
        shard0 = self._shards[0]
        with shard0._engine_lock.read():
            bound = shard0._builder.bind_expression(expression, Scope(()))
            context = self._shard_context(shard0, parameters)
            return str(evaluate(bound, (), context))

    def _execute_notify(
        self,
        statement: ast.NotifyStatement,
        parameters: dict[str, object] | None,
    ) -> QueryResult:
        self._notifications.append(
            self._evaluate_message(
                statement.message, parameters, "notification"
            )
        )
        return QueryResult()

    def _execute_deny(
        self,
        statement: ast.DenyStatement,
        parameters: dict[str, object] | None,
    ) -> QueryResult:
        raise AccessDeniedError(
            self._evaluate_message(
                statement.message, parameters,
                "access denied by SELECT trigger",
            )
        )

    # ------------------------------------------------------------------
    # transactions

    def transaction(self):
        """BEGIN on entry (all shards), COMMIT / ROLLBACK on exit."""
        cluster = self

        class _Transaction:
            def __enter__(self):
                cluster.execute("BEGIN")
                return cluster

            def __exit__(self, exc_type, exc, traceback) -> bool:
                if cluster.in_transaction:
                    cluster.execute(
                        "ROLLBACK" if exc_type is not None else "COMMIT"
                    )
                return False

        return _Transaction()

    @property
    def in_transaction(self) -> bool:
        return self._shards[0].in_transaction

    # ------------------------------------------------------------------
    # bulk loading (bench/test helper)

    def bulk_load(self, table_name: str, rows) -> int:
        """Observer-free routed load (run before audit DDL, like the
        single-node benches' ``Table.bulk_load``)."""
        table_name = table_name.lower()
        materialized = [tuple(row) for row in rows]
        partitioned = self.topology.partitioned(table_name)
        count = len(self._shards)
        with self._all_write_locks():
            if partitioned is not None and count > 1:
                owned: dict[int, list[tuple]] = {}
                for row in materialized:
                    owned.setdefault(
                        shard_of(row[partitioned.position], count), []
                    ).append(row)
                for index, shard in enumerate(self._shards):
                    shard.catalog.table(table_name).bulk_load(
                        owned.get(index, ())
                    )
            else:
                for shard in self._shards:
                    shard.catalog.table(table_name).bulk_load(materialized)
        return len(materialized)

    # ------------------------------------------------------------------
    # durability: per-shard journals, merged recovery

    @property
    def journal_root(self) -> pathlib.Path | None:
        return self._journal_root

    def attach_journal(self, path, fsync: str = "batch"):
        """Attach per-shard audit journals under directory ``path``.

        Shard ``i`` journals its owned slice of every intent at
        ``<path>/shard-<i>``; ``<path>/cluster.json`` records the
        topology so a recovering cluster can check shape compatibility.
        """
        if self._journal_root is not None:
            raise DurabilityError("an audit journal is already attached")
        root = pathlib.Path(path)
        root.mkdir(parents=True, exist_ok=True)
        for index, shard in enumerate(self._shards):
            shard.attach_journal(root / f"shard-{index}", fsync=fsync)
        manifest = {
            "shards": len(self._shards),
            "topology": self.topology.describe(),
        }
        (root / "cluster.json").write_text(
            json.dumps(manifest, sort_keys=True), encoding="utf-8"
        )
        self._journal_root = root
        self._journal_fsync = fsync
        return root

    def recover(
        self, journal_path=None, strict: bool = True
    ) -> ClusterRecoveryReport:
        """Replay every shard's journal through the coordinator's firing
        path; returns the merged :class:`ClusterRecoveryReport`.

        Per-shard journals are independent: a crash that loses one
        shard's firings is recovered from that shard's intents alone,
        and the replayed actions broadcast their DML exactly like the
        original firing — original user and SQL attribution included.
        """
        from repro.durability.recovery import recover_database

        root = journal_path if journal_path is not None \
            else self._journal_root
        if root is None:
            raise DurabilityError(
                "no journal attached and no journal_path given"
            )
        root = pathlib.Path(root)
        manifest_path = root / "cluster.json"
        if manifest_path.exists():
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            if manifest.get("shards") != len(self._shards):
                raise ClusterError(
                    f"journal at {root} was written by a "
                    f"{manifest.get('shards')}-shard cluster; this "
                    f"cluster has {len(self._shards)} shards"
                )
        reports = []
        for index, shard in enumerate(self._shards):
            shard_path = root / f"shard-{index}"
            if not shard_path.exists():
                continue
            adapter = _ShardRecoveryAdapter(self, shard)
            reports.append(recover_database(adapter, shard_path, strict=strict))
        return ClusterRecoveryReport(reports=tuple(reports))

    def audit_trail_health(self) -> dict[str, int]:
        """Cluster-wide trail damage: per-shard counters summed, plus
        the coordinator's own gaps (degraded reads, lost journal
        slices) folded into ``audit_gaps``."""
        merged: dict[str, int] = {}
        for shard in self._shards:
            for key, value in shard.audit_trail_health().items():
                merged[key] = merged.get(key, 0) + value
        merged["audit_gaps"] = merged.get("audit_gaps", 0) + max(
            0, len(self._cluster_gaps) - self._acknowledged_cluster_gaps
        )
        return merged

    def acknowledge_audit_failures(self) -> dict[str, int]:
        merged: dict[str, int] = {}
        for shard in self._shards:
            for key, value in shard.acknowledge_audit_failures().items():
                merged[key] = merged.get(key, 0) + value
        unacknowledged = max(
            0, len(self._cluster_gaps) - self._acknowledged_cluster_gaps
        )
        self._acknowledged_cluster_gaps += unacknowledged
        merged["audit_gaps"] = merged.get("audit_gaps", 0) + unacknowledged
        return merged

    # ------------------------------------------------------------------
    # shard health: quarantine, degraded mode, online rejoin

    def cluster_health(self) -> dict:
        """JSON-ready cluster fault-tolerance snapshot.

        Surfaced over the wire by the server's ``health`` frame next to
        :meth:`audit_trail_health`, so operators can tell *why* reads
        are degraded, not just that gaps are accumulating.
        """
        with self._stats_lock:
            degraded = self._degraded_read_count
            retries = self._scatter_retry_count
            timeouts = self._deadline_timeout_count
        return {
            "shards": self.health.describe(),
            "quarantined": list(self.health.quarantined()),
            "degraded_reads": degraded,
            "scatter_retries": retries,
            "deadline_timeouts": timeouts,
            "stale_replicas": sorted(self._stale_tables()),
            "stale_replicas_by_shard": {
                index: sorted(tables)
                for index, tables in sorted(self._stale_replicas.items())
                if tables
            },
            "cluster_gaps": len(self._cluster_gaps),
            "shard_deadline": self.shard_deadline,
            "shard_retries": self.shard_retries,
            "degraded_reads_enabled": self.degraded_reads,
        }

    def quarantine_shard(self, index: int, reason: str = "operator") -> None:
        """Administratively quarantine a shard (maintenance, tests)."""
        if not 0 <= index < len(self._shards):
            raise ValueError(f"no shard {index}")
        self.health.quarantine(index, reason)

    def _repair_shard(self, index: int, sources: list[int]) -> None:
        """Recopy shard ``index``'s stale replicated tables from a fresh copy.

        Must be called under :meth:`_all_write_locks`. For each table the
        shard is stale for, the source must be a live shard that is not
        itself stale for that same table — repair is a one-way
        truncate-and-reload, and copying from a stale replica would
        destroy the only fresh copy (silently losing committed DML).
        Tables with no eligible source stay marked, visible in
        ``cluster_health()["stale_replicas"]``, until a rejoin makes a
        fresh source live again.
        """
        tables = self._stale_replicas.get(index)
        if not tables:
            return
        shard = self._shards[index]
        repaired: set[str] = set()
        for name in sorted(tables):
            source_index = next(
                (
                    i for i in sources
                    if name not in self._stale_replicas.get(i, ())
                ),
                None,
            )
            if source_index is None:
                continue
            if shard.catalog.has_table(name):
                rows = list(
                    self._shards[source_index].catalog.table(name).rows()
                )
                table = shard.catalog.table(name)
                table.truncate()
                table.bulk_load(rows)
            repaired.add(name)
        if repaired:
            for expression in shard.audit_manager.expressions():
                if expression.sensitive_table in repaired:
                    shard.audit_manager.view(expression.name).refresh()
        tables -= repaired
        if not tables:
            del self._stale_replicas[index]

    def rejoin_shard(self, index: int, strict: bool = True):
        """Repair, readmit, and catch up a quarantined shard — online.

        Three steps, no coordinator restart:

        1. **replica repair** — replicated tables that took DML while
           this shard was out (its ``stale_replicas`` entries) are
           recopied from a live shard *whose own replica is fresh*, and
           ID views over them refreshed. A shard that is itself stale
           for a table is never used as the repair source — that would
           overwrite the only fresh copy. When no eligible source is
           live the shard is readmitted with its stale marking kept
           (visible in ``cluster_health()``), and a later rejoin of a
           fresh shard repairs it in the correct direction;
        2. **readmit** — the circuit breaker resets, so routing sees the
           shard again (replayed trigger bodies in step 3 can route DML
           to it); replicas still stale on *other* live shards are then
           repaired too, in case this shard just became their missing
           fresh source;
        3. **journal replay** — the shard's own audit journal replays
           through the PR-4 recovery path: intents whose firing never
           committed re-fire through the coordinator with their original
           user and SQL attribution; already-applied sequences are
           skipped, so rejoin after a clean quarantine is a no-op.

        Returns the shard's :class:`~repro.durability.recovery.
        RecoveryReport`, or ``None`` when no journal is attached.
        """
        from repro.durability.recovery import recover_database

        if not 0 <= index < len(self._shards):
            raise ValueError(f"no shard {index}")
        if not self.health.is_quarantined(index):
            raise ClusterError(
                f"shard {index} is not quarantined; nothing to rejoin"
            )
        shard = self._shards[index]
        if index in self._stale_replicas:
            with self._all_write_locks():
                self._repair_shard(
                    index, [i for i in self.health.live() if i != index]
                )
        self.health.readmit(index)
        if self._stale_replicas:
            # the readmitted shard may hold the only fresh copy of
            # tables other live shards are still stale for (it was the
            # last one standing when they diverged) — repair them now
            # that an eligible source exists
            with self._all_write_locks():
                live = self.health.live()
                for lagging in [i for i in live if i in self._stale_replicas]:
                    self._repair_shard(
                        lagging, [i for i in live if i != lagging]
                    )
        report = None
        if self._journal_root is not None:
            shard_path = self._journal_root / f"shard-{index}"
            if shard_path.exists():
                adapter = _ShardRecoveryAdapter(self, shard)
                report = recover_database(
                    adapter, shard_path, strict=strict
                )
        return report

    # ------------------------------------------------------------------
    # offline audit (Definition 2.3 at cluster scope)

    def offline_audit(
        self,
        sql: str,
        audit_expression: str,
        parameters: dict[str, object] | None = None,
    ) -> set:
        """Exact accessed-ID set by deletion testing across the cluster.

        Candidates are the union of per-shard ID views; each candidate's
        sensitive tuples are tombstoned in *every* fragment's context and
        the query re-run — ``Q(D) ≠ Q(D − t)`` compares gathered
        multisets, since shard interleave is not part of bag semantics.
        """
        shard0 = self._shards[0]
        expression = shard0.audit_manager.expression(audit_expression)
        table_name = expression.sensitive_table
        statement = parse_statement(sql)
        if not isinstance(statement, ast.SelectStatement):
            raise UnsupportedSqlError("offline_audit supports only SELECT")
        compiled = self._compile_select(statement, instrument=False)
        scratch: dict[str, set] = {}
        baseline = Counter(
            self._collect_result_rows(compiled, parameters, scratch)
        )
        candidates: set = set()
        for shard in self._shards:
            candidates |= shard.audit_manager.view(audit_expression).ids()
        schema = shard0.catalog.table(table_name).schema
        id_position = schema.position_of(expression.partition_by)
        pk_positions = schema.primary_key_positions()
        tuples_by_id: dict[object, list[tuple]] = {}
        for shard in self._shards:
            for row in shard.catalog.table(table_name).rows():
                id_value = row[id_position]
                if id_value in candidates:
                    tuples_by_id.setdefault(id_value, []).append(
                        tuple(row[position] for position in pk_positions)
                    )
        accessed: set = set()
        for id_value, pk_list in tuples_by_id.items():
            for pk in pk_list:
                rows = self._collect_result_rows(
                    compiled,
                    parameters,
                    {},
                    tombstones={table_name: {pk}},
                )
                if Counter(rows) != baseline:
                    accessed.add(id_value)
                    break
        return accessed

    # ------------------------------------------------------------------
    # resharding

    def reshard(self, shard_count: int) -> None:
        """Rebuild the cluster with ``shard_count`` shards.

        Gathers every table's rows (union of partitions for partitioned
        tables, shard 0's copy for replicated ones), replays the DDL log
        on fresh shards, redistributes the rows, and refreshes every ID
        view. Bumps the topology version, so every cached scatter plan —
        compiled against the old shard set — is invalidated.
        """
        if shard_count < 1:
            raise ValueError(f"shards must be >= 1, got {shard_count}")
        if self._journal_root is not None:
            raise ClusterError(
                "cannot reshard with an audit journal attached; close "
                "and recover into a freshly-attached cluster instead"
            )
        if self.in_transaction:
            raise ClusterError("cannot reshard inside an open transaction")
        if self.health.quarantined():
            raise ClusterDegradedError(
                "cannot reshard while shard(s) "
                f"{list(self.health.quarantined())} are quarantined; "
                "rejoin_shard() them first",
                shards=self.health.quarantined(),
            )
        if self._stale_replicas:
            # reshard seeds replicated tables from shard 0's copy; with
            # any replica still stale that could bake lagging data into
            # every new shard
            raise ClusterDegradedError(
                "cannot reshard while replicated table(s) "
                f"{sorted(self._stale_tables())} have unrepaired stale "
                "replicas on shard(s) "
                f"{sorted(self._stale_replicas)}; rejoin a fresh shard "
                "so repair can complete first",
                shards=tuple(sorted(self._stale_replicas)),
            )
        old_shards = self._shards
        shard0 = old_shards[0]
        data: dict[str, list[tuple]] = {}
        with self._all_write_locks():
            for table in shard0.catalog.tables():
                name = table.schema.name
                if self.topology.is_partitioned(name):
                    rows: list[tuple] = []
                    for shard in old_shards:
                        rows.extend(shard.catalog.table(name).rows())
                else:
                    rows = list(table.rows())
                data[name] = rows
        new_shards = [
            Database(
                user_id=self._user_id,
                audit_heuristic=self._heuristic,
                clock=self._clock,
                audit_policy=self.audit_policy,
                fault_injector=self._default_shard_faults,
            )
            for _ in range(shard_count)
        ]
        for statement in self._ddl_log:
            for shard in new_shards:
                shard._execute_statement(statement, None)
        self.topology.reshard(shard_count)
        for name, rows in data.items():
            partitioned = self.topology.partitioned(name)
            if partitioned is not None and shard_count > 1:
                owned: dict[int, list[tuple]] = {}
                for row in rows:
                    owned.setdefault(
                        shard_of(row[partitioned.position], shard_count), []
                    ).append(row)
                for index, shard in enumerate(new_shards):
                    if shard.catalog.has_table(name):
                        shard.catalog.table(name).bulk_load(
                            owned.get(index, ())
                        )
            else:
                for shard in new_shards:
                    if shard.catalog.has_table(name):
                        shard.catalog.table(name).bulk_load(rows)
        for shard in new_shards:
            for expression in shard.audit_manager.expressions():
                shard.audit_manager.view(expression.name).refresh()
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
        self._shards = new_shards
        self.health.reset(shard_count)
        self._stale_replicas.clear()
        self.plan_cache.clear()
        for shard in old_shards:
            shard.close()


def connect_cluster(**kwargs) -> ClusterDatabase:
    """Convenience constructor mirroring :func:`repro.database.connect`."""
    return ClusterDatabase(**kwargs)


__all__ = [
    "CANCEL_GRACE_S",
    "ClusterDatabase",
    "ClusterRecoveryReport",
    "connect_cluster",
]
