"""Exception hierarchy for the repro database engine.

Every error raised by the engine derives from :class:`ReproError` so that
applications can catch engine failures without masking programming errors.
The hierarchy mirrors the major subsystems: SQL front end, binding/planning,
execution, storage/constraints, and the audit framework.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro engine."""


class SqlSyntaxError(ReproError):
    """The SQL text could not be tokenized or parsed.

    Carries the offending position so callers can point at the source.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class BindError(ReproError):
    """Name resolution or type checking of a statement failed."""


class CatalogError(ReproError):
    """A catalog object is missing, duplicated, or inconsistently defined."""


class StorageError(ReproError):
    """A storage-level operation failed (row format, index maintenance)."""


class ConstraintError(StorageError):
    """A declared constraint (primary key, not null, foreign key) was violated."""


class ExecutionError(ReproError):
    """A runtime failure while executing a physical plan."""


class OperationCancelledError(ExecutionError):
    """A cooperative cancellation checkpoint observed a cancelled token.

    Raised from inside plan execution when the statement's
    :class:`~repro.concurrency.CancellationToken` has been cancelled —
    e.g. a cluster scatter fragment whose deadline expired. The partial
    work's ACCESSED state is still merged by the caller (§II: rows a
    cancelled fragment already touched were disclosed)."""


class PlanError(ReproError):
    """The optimizer produced or received an invalid plan shape."""


class TriggerError(ReproError):
    """Trigger definition or firing failed (e.g. cascade depth exceeded)."""


class PipelineClosedError(TriggerError):
    """A trigger batch was submitted to a closed trigger pipeline.

    Raised instead of blocking on (or silently dropping into) the queue of
    a pipeline whose worker has been shut down.
    """


class AccessDeniedError(TriggerError):
    """A BEFORE-timing SELECT trigger vetoed the query's results.

    The query already executed (accesses were recorded and logged), but a
    ``DENY`` action withheld the result set from the caller.
    """

    def __init__(self, message: str = "access denied by SELECT trigger"
                 ) -> None:
        super().__init__(message)
        self.message = message


class AuditError(ReproError):
    """Audit expression definition, compilation, or placement failed."""


class LineageError(AuditError):
    """A plan shape the lineage-capturing executor cannot certify.

    Raised by ``rows_lineage`` on operators without an exact lineage
    implementation; the offline auditor treats it as "fall back to
    deletion testing", never as a user-visible failure.
    """


class DurabilityError(ReproError):
    """A failure in the durable audit journal subsystem."""


class JournalCorruptionError(DurabilityError):
    """A journal segment contains a record that fails its CRC check.

    Torn writes at the tail of the *last* segment are expected after a
    crash and are tolerated; corruption anywhere else means the journal
    (or the disk under it) was damaged and recovery refuses to guess.
    """


class AuditUnavailableError(DurabilityError):
    """The audit trail cannot be made durable and policy is ``fail_closed``.

    Queries that accessed sensitive data raise this instead of returning
    results when the audit journal or the trigger pipeline is down —
    serving the rows would create an unauditable disclosure.
    """


class AuditTrailIncompleteError(AuditError):
    """An audit-log read under ``fail_closed`` while the trail has gaps.

    Failed trigger batches, dead-lettered firings, or recorded journal
    gaps mean the log may be missing disclosures; ``fail_closed`` refuses
    to present it as complete.
    """


class AuditTrailWarning(UserWarning):
    """The audit trail may be incomplete (``fail_open`` counterpart of
    :class:`AuditTrailIncompleteError`)."""


class ServerError(ReproError):
    """A failure in the network serving layer (``repro.server``)."""


class ProtocolError(ServerError):
    """A malformed, oversized, or out-of-sequence wire-protocol frame."""


class AuthenticationError(ServerError):
    """The connection handshake presented credentials the server rejects."""


class ServerOverloadedError(ServerError):
    """Admission control shed this connection.

    The server is at its connection cap and the bounded admission queue
    is full (or the queue wait timed out). Load is shed with this typed
    error instead of queueing unboundedly; clients should back off and
    retry. ``retry_after`` (seconds, when known) is a machine-readable
    backoff hint that rides the wire in the error frame, so remote
    clients can sleep instead of hammering a shedding server.
    """

    def __init__(
        self, message: str, retry_after: float | None = None
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class StatementTimeoutError(ServerError):
    """A statement exceeded the server's per-statement timeout.

    The client gets this error instead of rows. The server does not kill
    the executing thread (Python offers no safe preemption): the
    statement runs to completion in the background and its audit-trigger
    firings still land — a timeout withholds results, never evidence.
    """


class ServerShutdownError(ServerError):
    """The statement arrived while the server was draining for shutdown."""


class ConnectionClosedError(ServerError):
    """The server closed this connection (shutdown, idle reaping, or a
    network failure) before or while a response was expected."""


class ClusterError(ReproError):
    """A failure in the sharded execution layer (``repro.cluster``)."""


class ClusterRoutingError(ClusterError):
    """A statement the coordinator cannot route soundly across shards.

    Raised instead of silently computing a wrong (partition-local) answer:
    e.g. joining two hash-partitioned tables, reading a partitioned table
    from inside a subquery expression, or reassigning a partition key in
    an UPDATE. The statement is valid SQL — run it on a single-node
    :class:`~repro.database.Database` or restructure it.
    """


class ClusterDegradedError(ClusterError):
    """A statement refused because shards it needs are unavailable.

    Raised for reads when the audit policy is ``fail_closed`` (or
    ``degraded_reads`` is off) and a shard is quarantined, timed out, or
    failed past its retry budget — partial results would be an
    incompletely audited disclosure. Always raised for DML that targets
    a quarantined shard's partitions and for DDL while any shard is
    quarantined: applying either on a subset of shards would diverge the
    replicas. ``shards`` names the offending shard indexes.
    """

    def __init__(self, message: str, shards: tuple[int, ...] = ()) -> None:
        super().__init__(message)
        self.shards = tuple(shards)


class ShardTimeoutError(ClusterError):
    """A scatter fragment missed its per-shard deadline.

    The fragment's cancellation token is cancelled (it stops at its next
    cooperative checkpoint and releases its shard read lock); the
    coordinator then applies the degraded-read policy. Deadline misses
    are never retried — a slow shard only gets slower under more load.
    """


class ReplicationError(ReproError):
    """A failure in the journal-shipping replication layer
    (``repro.replication``)."""


class ReadOnlyReplicaError(ReplicationError):
    """A mutating statement was sent to a read-only replica.

    Replicas replay the primary's journal; accepting local DML or DDL
    would diverge them from the stream. Run writes against the primary
    — the replica serves SELECTs only.
    """


class TransactionError(ReproError):
    """Invalid transaction control (COMMIT/ROLLBACK without BEGIN, ...)."""


class UnsupportedSqlError(ReproError):
    """A syntactically valid construct that this engine does not implement."""
