"""Exception hierarchy for the repro database engine.

Every error raised by the engine derives from :class:`ReproError` so that
applications can catch engine failures without masking programming errors.
The hierarchy mirrors the major subsystems: SQL front end, binding/planning,
execution, storage/constraints, and the audit framework.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro engine."""


class SqlSyntaxError(ReproError):
    """The SQL text could not be tokenized or parsed.

    Carries the offending position so callers can point at the source.
    """

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class BindError(ReproError):
    """Name resolution or type checking of a statement failed."""


class CatalogError(ReproError):
    """A catalog object is missing, duplicated, or inconsistently defined."""


class StorageError(ReproError):
    """A storage-level operation failed (row format, index maintenance)."""


class ConstraintError(StorageError):
    """A declared constraint (primary key, not null, foreign key) was violated."""


class ExecutionError(ReproError):
    """A runtime failure while executing a physical plan."""


class PlanError(ReproError):
    """The optimizer produced or received an invalid plan shape."""


class TriggerError(ReproError):
    """Trigger definition or firing failed (e.g. cascade depth exceeded)."""


class AccessDeniedError(TriggerError):
    """A BEFORE-timing SELECT trigger vetoed the query's results.

    The query already executed (accesses were recorded and logged), but a
    ``DENY`` action withheld the result set from the caller.
    """

    def __init__(self, message: str = "access denied by SELECT trigger"
                 ) -> None:
        super().__init__(message)
        self.message = message


class AuditError(ReproError):
    """Audit expression definition, compilation, or placement failed."""


class LineageError(AuditError):
    """A plan shape the lineage-capturing executor cannot certify.

    Raised by ``rows_lineage`` on operators without an exact lineage
    implementation; the offline auditor treats it as "fall back to
    deletion testing", never as a user-visible failure.
    """


class TransactionError(ReproError):
    """Invalid transaction control (COMMIT/ROLLBACK without BEGIN, ...)."""


class UnsupportedSqlError(ReproError):
    """A syntactically valid construct that this engine does not implement."""
