"""TPC-H schema (all eight tables, TPC-H v2 column set)."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.database import Database

TABLE_NAMES = (
    "region",
    "nation",
    "supplier",
    "part",
    "partsupp",
    "customer",
    "orders",
    "lineitem",
)

_DDL = (
    """
    CREATE TABLE region (
        r_regionkey INT PRIMARY KEY,
        r_name VARCHAR NOT NULL,
        r_comment VARCHAR
    )
    """,
    """
    CREATE TABLE nation (
        n_nationkey INT PRIMARY KEY,
        n_name VARCHAR NOT NULL,
        n_regionkey INT NOT NULL,
        n_comment VARCHAR,
        FOREIGN KEY (n_regionkey) REFERENCES region (r_regionkey)
    )
    """,
    """
    CREATE TABLE supplier (
        s_suppkey INT PRIMARY KEY,
        s_name VARCHAR NOT NULL,
        s_address VARCHAR,
        s_nationkey INT NOT NULL,
        s_phone VARCHAR,
        s_acctbal DECIMAL(15, 2),
        s_comment VARCHAR,
        FOREIGN KEY (s_nationkey) REFERENCES nation (n_nationkey)
    )
    """,
    """
    CREATE TABLE part (
        p_partkey INT PRIMARY KEY,
        p_name VARCHAR NOT NULL,
        p_mfgr VARCHAR,
        p_brand VARCHAR,
        p_type VARCHAR,
        p_size INT,
        p_container VARCHAR,
        p_retailprice DECIMAL(15, 2),
        p_comment VARCHAR
    )
    """,
    """
    CREATE TABLE partsupp (
        ps_partkey INT NOT NULL,
        ps_suppkey INT NOT NULL,
        ps_availqty INT,
        ps_supplycost DECIMAL(15, 2),
        ps_comment VARCHAR,
        PRIMARY KEY (ps_partkey, ps_suppkey)
    )
    """,
    """
    CREATE TABLE customer (
        c_custkey INT PRIMARY KEY,
        c_name VARCHAR NOT NULL,
        c_address VARCHAR,
        c_nationkey INT NOT NULL,
        c_phone VARCHAR,
        c_acctbal DECIMAL(15, 2),
        c_mktsegment VARCHAR,
        c_comment VARCHAR,
        FOREIGN KEY (c_nationkey) REFERENCES nation (n_nationkey)
    )
    """,
    """
    CREATE TABLE orders (
        o_orderkey INT PRIMARY KEY,
        o_custkey INT NOT NULL,
        o_orderstatus VARCHAR,
        o_totalprice DECIMAL(15, 2),
        o_orderdate DATE,
        o_orderpriority VARCHAR,
        o_clerk VARCHAR,
        o_shippriority INT,
        o_comment VARCHAR,
        FOREIGN KEY (o_custkey) REFERENCES customer (c_custkey)
    )
    """,
    """
    CREATE TABLE lineitem (
        l_orderkey INT NOT NULL,
        l_partkey INT NOT NULL,
        l_suppkey INT NOT NULL,
        l_linenumber INT NOT NULL,
        l_quantity DECIMAL(15, 2),
        l_extendedprice DECIMAL(15, 2),
        l_discount DECIMAL(15, 2),
        l_tax DECIMAL(15, 2),
        l_returnflag VARCHAR,
        l_linestatus VARCHAR,
        l_shipdate DATE,
        l_commitdate DATE,
        l_receiptdate DATE,
        l_shipinstruct VARCHAR,
        l_shipmode VARCHAR,
        l_comment VARCHAR,
        PRIMARY KEY (l_orderkey, l_linenumber)
    )
    """,
)

#: secondary indexes mirroring the access paths a tuned TPC-H install has
_INDEX_DDL = (
    "CREATE INDEX idx_orders_custkey ON orders (o_custkey)",
    "CREATE INDEX idx_orders_orderdate ON orders (o_orderdate)",
    "CREATE INDEX idx_lineitem_orderkey ON lineitem (l_orderkey)",
    "CREATE INDEX idx_customer_mktsegment ON customer (c_mktsegment)",
    "CREATE INDEX idx_customer_nationkey ON customer (c_nationkey)",
    "CREATE INDEX idx_supplier_nationkey ON supplier (s_nationkey)",
)


def create_schema(database: "Database", with_indexes: bool = True) -> None:
    """Create all eight TPC-H tables (plus standard secondary indexes)."""
    for ddl in _DDL:
        database.execute(ddl)
    if with_indexes:
        for ddl in _INDEX_DDL:
            database.execute(ddl)
