"""Deterministic TPC-H data generator.

A faithful-in-distribution, scaled-down stand-in for ``dbgen``: table
cardinalities, key/foreign-key structure, value domains (market segments,
order dates, return flags, phone country codes, ...) follow the TPC-H
specification, so predicate selectivities — the quantity the paper's
experiments sweep — behave like the real benchmark. Generation is
deterministic for a given (scale_factor, seed): tests and benchmarks see
identical databases across runs.

Rows are loaded through ``Table.bulk_load`` (no per-row trigger or
view-maintenance overhead); declare audit expressions *after* loading, or
call ``refresh()`` on their views.
"""

from __future__ import annotations

import datetime
import random
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.database import Database

_REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")

#: the 25 TPC-H nations with their region keys
_NATIONS = (
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
)

MARKET_SEGMENTS = (
    "AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"
)
_ORDER_PRIORITIES = (
    "1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"
)
_SHIP_MODES = ("REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB")
_SHIP_INSTRUCTIONS = (
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"
)
_CONTAINERS = ("SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX")
_TYPE_SYLLABLES_1 = ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
_TYPE_SYLLABLES_2 = ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
_TYPE_SYLLABLES_3 = ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")

START_DATE = datetime.date(1992, 1, 1)
END_DATE = datetime.date(1998, 8, 2)
_DATE_SPAN = (END_DATE - START_DATE).days


class TpchGenerator:
    """Generates TPC-H tables at a given scale factor."""

    def __init__(self, scale_factor: float = 0.001, seed: int = 42) -> None:
        if scale_factor <= 0:
            raise ValueError("scale_factor must be positive")
        self.scale_factor = scale_factor
        self.seed = seed
        self.customer_count = max(5, round(150_000 * scale_factor))
        self.supplier_count = max(2, round(10_000 * scale_factor))
        self.part_count = max(10, round(200_000 * scale_factor))
        self.orders_per_customer = 10  # 1.5M orders / 150K customers

    def _rng(self, salt: str) -> random.Random:
        return random.Random(f"{self.seed}:{salt}")

    # ------------------------------------------------------------------

    def region_rows(self):
        for key, name in enumerate(_REGIONS):
            yield (key, name, f"region {name.lower()}")

    def nation_rows(self):
        for key, (name, region_key) in enumerate(_NATIONS):
            yield (key, name, region_key, f"nation {name.lower()}")

    def supplier_rows(self):
        rng = self._rng("supplier")
        for key in range(1, self.supplier_count + 1):
            nation = rng.randrange(25)
            yield (
                key,
                f"Supplier#{key:09d}",
                f"addr-s{key}",
                nation,
                _phone(nation, key, rng),
                round(rng.uniform(-999.99, 9999.99), 2),
                f"supplier comment {key}",
            )

    def part_rows(self):
        rng = self._rng("part")
        for key in range(1, self.part_count + 1):
            type_name = " ".join((
                rng.choice(_TYPE_SYLLABLES_1),
                rng.choice(_TYPE_SYLLABLES_2),
                rng.choice(_TYPE_SYLLABLES_3),
            ))
            yield (
                key,
                f"part {key} {type_name.lower()}",
                f"Manufacturer#{1 + key % 5}",
                f"Brand#{1 + key % 5}{1 + key % 5}",
                type_name,
                rng.randrange(1, 51),
                rng.choice(_CONTAINERS),
                round(900 + (key % 1000) * 0.1 + 100 * (key % 10), 2),
                f"part comment {key}",
            )

    def partsupp_rows(self):
        rng = self._rng("partsupp")
        for part_key in range(1, self.part_count + 1):
            for replica in range(4):
                supp_key = 1 + (part_key + replica * 7) % self.supplier_count
                yield (
                    part_key,
                    supp_key,
                    rng.randrange(1, 10_000),
                    round(rng.uniform(1.0, 1000.0), 2),
                    f"partsupp {part_key}/{supp_key}",
                )

    def customer_rows(self):
        rng = self._rng("customer")
        for key in range(1, self.customer_count + 1):
            nation = rng.randrange(25)
            yield (
                key,
                f"Customer#{key:09d}",
                f"addr-c{key}",
                nation,
                _phone(nation, key, rng),
                round(rng.uniform(-999.99, 9999.99), 2),
                rng.choice(MARKET_SEGMENTS),
                f"customer comment {key}",
            )

    def order_rows(self):
        rng = self._rng("orders")
        order_key = 0
        for customer_key in range(1, self.customer_count + 1):
            if customer_key % 3 == 0:
                continue  # TPC-H: one third of customers have no orders
            for __ in range(self.orders_per_customer):
                order_key += 1
                order_date = START_DATE + datetime.timedelta(
                    days=rng.randrange(_DATE_SPAN - 151)
                )
                yield (
                    order_key,
                    customer_key,
                    rng.choice("OFP"),
                    round(rng.uniform(1_000.0, 400_000.0), 2),
                    order_date,
                    rng.choice(_ORDER_PRIORITIES),
                    f"Clerk#{rng.randrange(1000):09d}",
                    0,
                    f"order comment {order_key}",
                )

    def lineitem_rows(self):
        rng = self._rng("lineitem")
        for order in self.order_rows():
            order_key = order[0]
            order_date = order[4]
            for line_number in range(1, rng.randrange(1, 8)):
                quantity = rng.randrange(1, 51)
                part_key = rng.randrange(1, self.part_count + 1)
                supp_key = 1 + (part_key + rng.randrange(4) * 7) \
                    % self.supplier_count
                extended = round(quantity * rng.uniform(900.0, 2000.0), 2)
                ship_date = order_date + datetime.timedelta(
                    days=rng.randrange(1, 122)
                )
                commit_date = order_date + datetime.timedelta(
                    days=rng.randrange(30, 91)
                )
                receipt_date = ship_date + datetime.timedelta(
                    days=rng.randrange(1, 31)
                )
                return_flag = (
                    rng.choice("RA") if receipt_date <= datetime.date(
                        1995, 6, 17
                    ) else "N"
                )
                yield (
                    order_key,
                    part_key,
                    supp_key,
                    line_number,
                    float(quantity),
                    extended,
                    round(rng.uniform(0.0, 0.10), 2),
                    round(rng.uniform(0.0, 0.08), 2),
                    return_flag,
                    "F" if ship_date <= datetime.date(1995, 6, 17) else "O",
                    ship_date,
                    commit_date,
                    receipt_date,
                    rng.choice(_SHIP_INSTRUCTIONS),
                    rng.choice(_SHIP_MODES),
                    f"lineitem {order_key}/{line_number}",
                )

    # ------------------------------------------------------------------

    def load(self, database: "Database") -> dict[str, int]:
        """Bulk-load all eight tables; returns per-table row counts."""
        catalog = database.catalog
        counts = {}
        loaders = (
            ("region", self.region_rows),
            ("nation", self.nation_rows),
            ("supplier", self.supplier_rows),
            ("part", self.part_rows),
            ("partsupp", self.partsupp_rows),
            ("customer", self.customer_rows),
            ("orders", self.order_rows),
            ("lineitem", self.lineitem_rows),
        )
        for name, rows in loaders:
            counts[name] = catalog.table(name).bulk_load(rows())
        database.execute("ANALYZE")
        return counts


def _phone(nation: int, key: int, rng: random.Random) -> str:
    """TPC-H phone format: country code = nation key + 10."""
    return (
        f"{nation + 10}-{rng.randrange(100, 1000)}-"
        f"{rng.randrange(100, 1000)}-{rng.randrange(1000, 10_000)}"
    )


def load_tpch(
    database: "Database",
    scale_factor: float = 0.001,
    seed: int = 42,
    with_indexes: bool = True,
) -> dict[str, int]:
    """Create the schema and load data; returns per-table row counts."""
    from repro.tpch.schema import create_schema

    create_schema(database, with_indexes=with_indexes)
    return TpchGenerator(scale_factor, seed).load(database)
