"""TPC-H substrate: schema DDL, deterministic data generator, query workload."""

from repro.tpch.schema import create_schema, TABLE_NAMES
from repro.tpch.datagen import TpchGenerator, load_tpch
from repro.tpch.queries import (
    MICRO_BENCHMARK_QUERY,
    QUERIES,
    QUERY_PARAMETERS,
    audit_expression_sql,
    query_sql,
)

__all__ = [
    "create_schema",
    "TABLE_NAMES",
    "TpchGenerator",
    "load_tpch",
    "MICRO_BENCHMARK_QUERY",
    "QUERIES",
    "QUERY_PARAMETERS",
    "audit_expression_sql",
    "query_sql",
]
