"""The paper's TPC-H query workload (§V-C).

Seven queries that reference the ``customer`` table and contain no
self-join of it — the selection rule stated in the paper — adapted to this
engine's dialect: Q3, Q5, Q7, Q8, Q10, Q18, Q22. They cover the operator
inventory the paper stresses: complex aggregates, top-k, joins of up to 8
tables, derived tables, and (NOT) EXISTS / IN / scalar subqueries.

FROM lists follow the original TPC-H text; the optimizer's greedy
join-reordering pass picks the execution order.

Plus the §V-A micro-benchmark join query and the audit expression used in
the evaluation (all customers of one market segment, ≈20 % of the table).
"""

from __future__ import annotations

import datetime

MICRO_BENCHMARK_QUERY = """
SELECT *
FROM orders, customer
WHERE c_custkey = o_custkey
  AND c_acctbal > :acctbal
  AND o_orderdate > :orderdate
"""

#: the audit expression of §V: one market segment of customer
AUDIT_EXPRESSION_TEMPLATE = """
CREATE AUDIT EXPRESSION {name} AS
SELECT * FROM customer
WHERE c_mktsegment = '{segment}'
FOR SENSITIVE TABLE customer, PARTITION BY c_custkey
"""


def audit_expression_sql(
    name: str = "audit_customer", segment: str = "BUILDING"
) -> str:
    """CREATE AUDIT EXPRESSION for one market segment (§V)."""
    return AUDIT_EXPRESSION_TEMPLATE.format(name=name, segment=segment)


Q3 = """
SELECT l_orderkey,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       o_orderdate, o_shippriority
FROM customer, orders, lineitem
WHERE c_mktsegment = :segment
  AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < :date
  AND l_shipdate > :date
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10
"""

Q5 = """
SELECT n_name,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey
  AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = :region
  AND o_orderdate >= :date
  AND o_orderdate < :date + INTERVAL '1' YEAR
GROUP BY n_name
ORDER BY revenue DESC
"""

Q7 = """
SELECT supp_nation, cust_nation, l_year, SUM(volume) AS revenue
FROM (
    SELECT n1.n_name AS supp_nation,
           n2.n_name AS cust_nation,
           EXTRACT(YEAR FROM l_shipdate) AS l_year,
           l_extendedprice * (1 - l_discount) AS volume
    FROM supplier, lineitem, orders, customer, nation n1, nation n2
    WHERE s_suppkey = l_suppkey
      AND o_orderkey = l_orderkey
      AND c_custkey = o_custkey
      AND s_nationkey = n1.n_nationkey
      AND c_nationkey = n2.n_nationkey
      AND ((n1.n_name = :nation1 AND n2.n_name = :nation2)
           OR (n1.n_name = :nation2 AND n2.n_name = :nation1))
      AND l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
) shipping
GROUP BY supp_nation, cust_nation, l_year
ORDER BY supp_nation, cust_nation, l_year
"""

Q8 = """
SELECT o_year,
       SUM(CASE WHEN nation = :nation THEN volume ELSE 0 END) / SUM(volume)
           AS mkt_share
FROM (
    SELECT EXTRACT(YEAR FROM o_orderdate) AS o_year,
           l_extendedprice * (1 - l_discount) AS volume,
           n2.n_name AS nation
    FROM part, supplier, lineitem, orders, customer,
         nation n1, nation n2, region
    WHERE p_partkey = l_partkey
      AND s_suppkey = l_suppkey
      AND l_orderkey = o_orderkey
      AND o_custkey = c_custkey
      AND c_nationkey = n1.n_nationkey
      AND n1.n_regionkey = r_regionkey
      AND r_name = :region
      AND s_nationkey = n2.n_nationkey
      AND o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
      AND p_type = :type
) all_nations
GROUP BY o_year
ORDER BY o_year
"""

Q10 = """
SELECT c_custkey, c_name,
       SUM(l_extendedprice * (1 - l_discount)) AS revenue,
       c_acctbal, n_name, c_address, c_phone, c_comment
FROM customer, orders, lineitem, nation
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate >= :date
  AND o_orderdate < :date + INTERVAL '3' MONTH
  AND l_returnflag = 'R'
  AND c_nationkey = n_nationkey
GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name,
         c_address, c_comment
ORDER BY revenue DESC
LIMIT 20
"""

Q18 = """
SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice,
       SUM(l_quantity) AS total_quantity
FROM customer, orders, lineitem
WHERE o_orderkey IN (
        SELECT l_orderkey
        FROM lineitem
        GROUP BY l_orderkey
        HAVING SUM(l_quantity) > :quantity
      )
  AND c_custkey = o_custkey
  AND o_orderkey = l_orderkey
GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
ORDER BY o_totalprice DESC, o_orderdate
LIMIT 100
"""

Q22 = """
SELECT cntrycode, COUNT(*) AS numcust, SUM(c_acctbal) AS totacctbal
FROM (
    SELECT SUBSTRING(c_phone FROM 1 FOR 2) AS cntrycode, c_acctbal
    FROM customer
    WHERE SUBSTRING(c_phone FROM 1 FOR 2)
          IN (:cc1, :cc2, :cc3, :cc4, :cc5, :cc6, :cc7)
      AND c_acctbal > (
            SELECT AVG(c_acctbal)
            FROM customer
            WHERE c_acctbal > 0.00
              AND SUBSTRING(c_phone FROM 1 FOR 2)
                  IN (:cc1, :cc2, :cc3, :cc4, :cc5, :cc6, :cc7)
          )
      AND NOT EXISTS (
            SELECT * FROM orders WHERE o_custkey = c_custkey
          )
) custsale
GROUP BY cntrycode
ORDER BY cntrycode
"""

QUERIES: dict[str, str] = {
    "Q3": Q3,
    "Q5": Q5,
    "Q7": Q7,
    "Q8": Q8,
    "Q10": Q10,
    "Q18": Q18,
    "Q22": Q22,
}

#: validated default parameters (substitution values from the TPC-H spec,
#: with Q18's quantity threshold scaled so small databases still qualify)
QUERY_PARAMETERS: dict[str, dict[str, object]] = {
    "Q3": {
        "segment": "BUILDING",
        "date": datetime.date(1995, 3, 15),
    },
    "Q5": {
        "region": "ASIA",
        "date": datetime.date(1994, 1, 1),
    },
    "Q7": {
        "nation1": "FRANCE",
        "nation2": "GERMANY",
    },
    "Q8": {
        "nation": "BRAZIL",
        "region": "AMERICA",
        "type": "ECONOMY ANODIZED STEEL",
    },
    "Q10": {
        "date": datetime.date(1993, 10, 1),
    },
    "Q18": {
        "quantity": 170,
    },
    "Q22": {
        "cc1": "13", "cc2": "31", "cc3": "23", "cc4": "29",
        "cc5": "30", "cc6": "18", "cc7": "17",
    },
}


def query_sql(name: str) -> str:
    """Query text by name (e.g. ``"Q10"``)."""
    return QUERIES[name]
