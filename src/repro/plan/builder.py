"""AST-to-logical-plan builder (the binder).

Responsibilities:

* name resolution with nested scopes (correlated subqueries bind to outer
  rows with an ``outer_level``);
* SELECT semantics: FROM joins, WHERE, GROUP BY/HAVING with aggregate
  extraction, DISTINCT, ORDER BY with hidden sort columns, LIMIT/TOP;
* binding of subquery expressions — each gets its own logical plan stored
  in the expression node's ``plan`` field.

The builder performs *no* optimization: it produces a canonical left-deep
plan that the optimizer (``repro.optimizer``) then rewrites.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

from repro.errors import BindError
from repro.expr.functions import is_scalar_function
from repro.expr.aggregates import is_aggregate_name
from repro.expr.nodes import (
    ColumnRef,
    Expression,
    FunctionCall,
    Star,
    SubqueryExpression,
    transform,
)
from repro.plan import logical
from repro.plan.logical import (
    Aggregate,
    AggregateSpec,
    Distinct,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    PlanColumn,
    Project,
    Scan,
    Sort,
    SortKey,
)
from repro.sql import ast

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.catalog.catalog import Catalog


class Scope:
    """One level of name resolution: the columns of a plan's output row.

    ``parent`` chains to the enclosing query block (or to a pseudo-scope
    such as a trigger's NEW/OLD row).
    """

    def __init__(
        self, columns: tuple[PlanColumn, ...], parent: "Scope | None" = None
    ) -> None:
        self.columns = columns
        self.parent = parent

    def resolve(self, name: str, qualifier: str | None) -> tuple[int, int]:
        """Return ``(outer_level, slot)`` for a column reference."""
        scope: Scope | None = self
        level = 0
        while scope is not None:
            matches = [
                index
                for index, column in enumerate(scope.columns)
                if column.name == name
                and (qualifier is None or column.qualifier == qualifier)
            ]
            if len(matches) > 1:
                display = f"{qualifier}.{name}" if qualifier else name
                raise BindError(f"ambiguous column reference {display!r}")
            if matches:
                return level, matches[0]
            scope = scope.parent
            level += 1
        display = f"{qualifier}.{name}" if qualifier else name
        raise BindError(f"unknown column {display!r}")


def normalize(expression: Expression) -> Expression:
    """Strip display-only fields so bound expressions compare structurally."""

    def visit(node: Expression) -> Expression:
        if isinstance(node, ColumnRef):
            return ColumnRef(
                name="", qualifier=None,
                index=node.index, outer_level=node.outer_level,
            )
        return node

    return transform(expression, visit)


def expressions_match(left: Expression, right: Expression) -> bool:
    """Structural equality of bound expressions, ignoring display names."""
    return normalize(left) == normalize(right)


class PlanBuilder:
    """Builds bound logical plans from parsed statements."""

    def __init__(self, catalog: "Catalog") -> None:
        self._catalog = catalog

    # ------------------------------------------------------------------
    # public API

    def build_select(
        self,
        statement: ast.SelectStatement,
        outer_scope: Scope | None = None,
    ) -> LogicalPlan:
        """Build the logical plan for one SELECT block."""
        plan, scope = self._build_from(statement.from_items, outer_scope)

        if statement.where is not None:
            predicate = self.bind_expression(statement.where, scope)
            plan = Filter(plan, predicate)

        select_expressions, names = self._expand_select_items(
            statement.items, scope
        )
        bound_select = [
            self.bind_expression(expression, scope)
            for expression in select_expressions
        ]
        bound_having = (
            self.bind_expression(statement.having, scope)
            if statement.having is not None
            else None
        )

        # order-by keys: resolve select-list aliases first, else bind
        order_specs = self._prepare_order_by(
            statement.order_by, names, bound_select, scope
        )

        group_expressions = tuple(
            self.bind_expression(expression, scope)
            for expression in statement.group_by
        )
        has_aggregates = any(
            _find_aggregates(expression) for expression in bound_select
        ) or (bound_having is not None and _find_aggregates(bound_having)) \
            or any(
                spec[1] is not None and _find_aggregates(spec[1])
                for spec in order_specs
            )

        if group_expressions or has_aggregates:
            plan, bound_select, bound_having, order_specs = self._aggregate(
                plan,
                group_expressions,
                bound_select,
                bound_having,
                order_specs,
            )
        elif bound_having is not None:
            raise BindError("HAVING requires GROUP BY or aggregates")

        return self._finish(
            plan,
            bound_select,
            names,
            order_specs,
            distinct=statement.distinct,
            limit=statement.limit,
        )

    # ------------------------------------------------------------------
    # FROM clause

    def _build_from(
        self,
        from_items: tuple[ast.FromItem, ...],
        outer_scope: Scope | None,
    ) -> tuple[LogicalPlan, Scope]:
        if not from_items:
            plan: LogicalPlan = OneRow()
            return plan, Scope((), outer_scope)
        plan = None
        for item in from_items:
            item_plan = self._build_from_item(item, outer_scope)
            if plan is None:
                plan = item_plan
            else:
                plan = Join(plan, item_plan, logical.JOIN_INNER, None)
        assert plan is not None
        return plan, Scope(plan.columns, outer_scope)

    def _build_from_item(
        self, item: ast.FromItem, outer_scope: Scope | None
    ) -> LogicalPlan:
        if isinstance(item, ast.TableRef):
            table = self._catalog.table(item.name)
            return Scan(
                table_name=table.schema.name,
                alias=item.binding_name.lower(),
                schema=table.schema,
            )
        if isinstance(item, ast.SubqueryRef):
            subplan = self.build_select(item.select, outer_scope)
            return _requalify(subplan, item.alias.lower())
        if isinstance(item, ast.JoinRef):
            left = self._build_from_item(item.left, outer_scope)
            right = self._build_from_item(item.right, outer_scope)
            kind = (
                logical.JOIN_LEFT if item.kind == "LEFT" else logical.JOIN_INNER
            )
            condition = None
            if item.condition is not None:
                scope = Scope(left.columns + right.columns, outer_scope)
                condition = self.bind_expression(item.condition, scope)
            return Join(left, right, kind, condition)
        raise BindError(f"unsupported FROM item {type(item).__name__}")

    # ------------------------------------------------------------------
    # select list

    def _expand_select_items(
        self, items: tuple[ast.SelectItem, ...], scope: Scope
    ) -> tuple[list[Expression], list[str]]:
        """Expand ``*`` and derive output names (pre-binding)."""
        expressions: list[Expression] = []
        names: list[str] = []
        for item in items:
            if isinstance(item.expression, Star):
                qualifier = item.expression.qualifier
                matched = False
                for column in scope.columns:
                    if qualifier is not None and column.qualifier != qualifier:
                        continue
                    matched = True
                    expressions.append(
                        ColumnRef(column.name, qualifier=column.qualifier)
                    )
                    names.append(column.name)
                if not matched:
                    raise BindError(
                        f"no columns match {qualifier or ''}.*"
                    )
                continue
            expressions.append(item.expression)
            names.append(item.alias or _derive_name(item.expression, len(names)))
        return expressions, names

    # ------------------------------------------------------------------
    # expression binding

    def bind_expression(
        self, expression: Expression, scope: Scope
    ) -> Expression:
        """Bind column references and subqueries in ``expression``."""
        if isinstance(expression, ColumnRef):
            if expression.is_bound:
                return expression
            level, slot = scope.resolve(expression.name, expression.qualifier)
            return replace(expression, index=slot, outer_level=level)
        if isinstance(expression, SubqueryExpression):
            bound_children = [
                self.bind_expression(child, scope)
                for child in expression.children()
            ]
            if bound_children:
                expression = expression.replace_children(bound_children)
            assert expression.select is not None
            subplan = self.build_select(expression.select, outer_scope=scope)
            return replace(expression, plan=subplan)
        if isinstance(expression, FunctionCall):
            name = expression.name.lower()
            if not is_aggregate_name(name) and not is_scalar_function(name):
                raise BindError(f"unknown function {expression.name!r}")
            args = tuple(
                argument if isinstance(argument, Star)
                else self.bind_expression(argument, scope)
                for argument in expression.args
            )
            return replace(expression, name=name, args=args)
        children = expression.children()
        if not children:
            return expression
        bound = [self.bind_expression(child, scope) for child in children]
        return expression.replace_children(bound)

    # ------------------------------------------------------------------
    # aggregation

    def _aggregate(
        self,
        plan: LogicalPlan,
        group_expressions: tuple[Expression, ...],
        bound_select: list[Expression],
        bound_having: Expression | None,
        order_specs: list[tuple[int | None, Expression | None, bool]],
    ):
        """Insert an Aggregate node and rewrite dependents over its output."""
        aggregate_calls: list[FunctionCall] = []

        def register(call: FunctionCall) -> int:
            for index, existing in enumerate(aggregate_calls):
                if expressions_match(existing, call):
                    return index
            aggregate_calls.append(call)
            return len(aggregate_calls) - 1

        for expression in bound_select:
            for call in _find_aggregates(expression):
                register(call)
        if bound_having is not None:
            for call in _find_aggregates(bound_having):
                register(call)
        for __, expression, __ascending in order_specs:
            if expression is not None:
                for call in _find_aggregates(expression):
                    register(call)

        group_count = len(group_expressions)
        columns = []
        for index, expression in enumerate(group_expressions):
            if isinstance(expression, ColumnRef):
                columns.append(
                    PlanColumn(expression.name, expression.qualifier)
                )
            else:
                columns.append(PlanColumn(f"group{index}"))
        for index, call in enumerate(aggregate_calls):
            columns.append(PlanColumn(f"{call.name}{index}"))

        specs = tuple(
            AggregateSpec(
                name=call.name,
                argument=(
                    None
                    if len(call.args) == 1 and isinstance(call.args[0], Star)
                    else call.args[0]
                ),
                distinct=call.distinct,
            )
            for call in aggregate_calls
        )
        aggregate = Aggregate(plan, group_expressions, specs, tuple(columns))

        def rewrite(expression: Expression) -> Expression:
            return _rewrite_over_groups(
                expression, group_expressions, aggregate_calls, group_count
            )

        bound_select = [rewrite(expression) for expression in bound_select]
        if bound_having is not None:
            bound_having = rewrite(bound_having)
        order_specs = [
            (slot, rewrite(expression) if expression is not None else None,
             ascending)
            for slot, expression, ascending in order_specs
        ]
        result_plan: LogicalPlan = aggregate
        if bound_having is not None:
            result_plan = Filter(result_plan, bound_having)
        return result_plan, bound_select, bound_having, order_specs

    # ------------------------------------------------------------------
    # order by / distinct / limit

    def _prepare_order_by(
        self,
        order_by: tuple[ast.OrderItem, ...],
        names: list[str],
        bound_select: list[Expression],
        scope: Scope,
    ) -> list[tuple[int | None, Expression | None, bool]]:
        """Resolve each ORDER BY item to (select slot | bound expression).

        A bare identifier matching a select alias refers to that output
        column; an integer literal is a 1-based ordinal; anything else is
        bound over the FROM/aggregate scope.
        """
        specs: list[tuple[int | None, Expression | None, bool]] = []
        for item in order_by:
            expression = item.expression
            if isinstance(expression, ColumnRef) and not expression.is_bound \
                    and expression.qualifier is None \
                    and expression.name in names:
                specs.append(
                    (names.index(expression.name), None, item.ascending)
                )
                continue
            from repro.expr.nodes import Literal

            if isinstance(expression, Literal) and isinstance(
                expression.value, int
            ):
                ordinal = expression.value
                if not 1 <= ordinal <= len(names):
                    raise BindError(f"ORDER BY ordinal {ordinal} out of range")
                specs.append((ordinal - 1, None, item.ascending))
                continue
            bound = self.bind_expression(expression, scope)
            # an order key identical to a select item reuses its slot
            slot = next(
                (
                    index
                    for index, candidate in enumerate(bound_select)
                    if expressions_match(candidate, bound)
                ),
                None,
            )
            if slot is not None:
                specs.append((slot, None, item.ascending))
            else:
                specs.append((None, bound, item.ascending))
        return specs

    def _finish(
        self,
        plan: LogicalPlan,
        bound_select: list[Expression],
        names: list[str],
        order_specs: list[tuple[int | None, Expression | None, bool]],
        distinct: bool,
        limit: int | None,
    ) -> LogicalPlan:
        """Assemble Project / Distinct / Sort / Limit above ``plan``."""
        visible = len(bound_select)
        hidden: list[Expression] = []
        keys: list[SortKey] = []
        for slot, expression, ascending in order_specs:
            if slot is None:
                assert expression is not None
                slot = visible + len(hidden)
                hidden.append(expression)
            keys.append(
                SortKey(ColumnRef(f"sort{slot}", index=slot), ascending)
            )

        if distinct and hidden:
            raise BindError(
                "ORDER BY expressions must appear in the select list "
                "when DISTINCT is used"
            )

        columns = tuple(
            _project_column(expression, name, plan)
            for expression, name in zip(bound_select, names)
        ) + tuple(
            PlanColumn(f"__sort{index}") for index in range(len(hidden))
        )
        plan = Project(plan, tuple(bound_select) + tuple(hidden), columns)

        if distinct:
            plan = Distinct(plan)
        if keys:
            plan = Sort(plan, tuple(keys))
        if limit is not None:
            plan = Limit(plan, limit)
        if hidden:
            strip = tuple(
                ColumnRef(columns[index].name, index=index)
                for index in range(visible)
            )
            plan = Project(plan, strip, columns[:visible])
        return plan


class OneRow(LogicalPlan):
    """Leaf producing a single empty row (FROM-less SELECT)."""

    columns: tuple[PlanColumn, ...] = ()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, OneRow)

    def __hash__(self) -> int:
        return hash(type(self))


def _project_column(
    expression: Expression, name: str, child: LogicalPlan
) -> PlanColumn:
    """Derive the output PlanColumn for a projected expression.

    Bare column references keep their origin so downstream consumers (the
    audit machinery, EXPLAIN output) can trace base-table columns through
    projections.
    """
    if isinstance(expression, ColumnRef) and expression.outer_level == 0 \
            and expression.index is not None:
        source = child.columns[expression.index]
        return PlanColumn(name, source.qualifier, source.origin)
    return PlanColumn(name)


def _derive_name(expression: Expression, position: int) -> str:
    if isinstance(expression, ColumnRef):
        return expression.name
    if isinstance(expression, FunctionCall):
        return expression.name
    return f"col{position}"


def _find_aggregates(expression: Expression) -> list[FunctionCall]:
    """Aggregate calls in a bound tree (not entering subqueries)."""
    found: list[FunctionCall] = []
    for node in expression.walk():
        if isinstance(node, FunctionCall) and is_aggregate_name(node.name):
            found.append(node)
    return found


def _rewrite_over_groups(
    expression: Expression,
    group_expressions: tuple[Expression, ...],
    aggregate_calls: list[FunctionCall],
    group_count: int,
) -> Expression:
    """Rewrite a bound expression to address the Aggregate output row."""
    for index, group_expression in enumerate(group_expressions):
        if expressions_match(expression, group_expression):
            name = (
                group_expression.name
                if isinstance(group_expression, ColumnRef)
                else f"group{index}"
            )
            return ColumnRef(name, index=index)
    if isinstance(expression, FunctionCall) and is_aggregate_name(
        expression.name
    ):
        for index, call in enumerate(aggregate_calls):
            if expressions_match(expression, call):
                return ColumnRef(
                    f"{call.name}{index}", index=group_count + index
                )
        raise BindError("unregistered aggregate call")  # pragma: no cover
    if isinstance(expression, ColumnRef) and expression.outer_level == 0:
        raise BindError(
            f"column {expression.display()!r} must appear in GROUP BY "
            "or inside an aggregate"
        )
    if isinstance(expression, SubqueryExpression):
        # A subquery's own plan is bound against outer scopes, not the
        # aggregate output; correlated references into a grouped block
        # are not supported (matches mainstream engines' restrictions).
        return expression
    children = expression.children()
    if not children:
        return expression
    rewritten = [
        _rewrite_over_groups(
            child, group_expressions, aggregate_calls, group_count
        )
        for child in children
    ]
    return expression.replace_children(rewritten)


def _requalify(plan: LogicalPlan, alias: str) -> LogicalPlan:
    """Re-label a derived table's columns under ``alias``."""
    expressions = tuple(
        ColumnRef(column.name, index=index)
        for index, column in enumerate(plan.columns)
    )
    columns = tuple(
        PlanColumn(column.name, alias, column.origin)
        for column in plan.columns
    )
    return Project(plan, expressions, columns)
