"""Logical plan operators.

A logical plan is a tree of operators, each advertising its output columns
as a tuple of :class:`PlanColumn`. Expressions inside operators are *bound*:
column references are slot ordinals into the child's output row (or, for
correlated references, into an outer row).

The audit placement algorithm (``repro.audit.placement``) manipulates these
trees directly: it inserts :class:`Audit` nodes above sensitive-table scans
and pulls them up through operators that commute with a filter on the
partition-by slot, exactly as the paper's Algorithm 1 prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.errors import PlanError
from repro.expr.nodes import Expression

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.catalog.schema import TableSchema


@dataclass(frozen=True)
class PlanColumn:
    """One output column of a plan operator.

    ``origin`` is ``(table_name, column_name)`` when the value flows
    unchanged from a base-table column, else ``None`` — used by diagnostics
    and the audit machinery to recognize partition-by key columns.
    """

    name: str
    qualifier: str | None = None
    origin: tuple[str, str] | None = None


JOIN_INNER = "inner"
JOIN_LEFT = "left"
JOIN_SEMI = "semi"
JOIN_ANTI = "anti"


class LogicalPlan:
    """Base class for logical operators."""

    columns: tuple[PlanColumn, ...]

    def children(self) -> tuple["LogicalPlan", ...]:
        return ()

    def replace_children(
        self, children: Sequence["LogicalPlan"]
    ) -> "LogicalPlan":
        if children:
            raise PlanError(f"{type(self).__name__} takes no children")
        return self

    def walk(self) -> Iterator["LogicalPlan"]:
        """Pre-order traversal (does not enter subquery plans)."""
        yield self
        for child in self.children():
            yield from child.walk()

    @property
    def arity(self) -> int:
        return len(self.columns)


@dataclass(frozen=True)
class Scan(LogicalPlan):
    """Leaf: full scan of a base table under ``alias``.

    ``predicate`` is a pushed-down single-table filter; the physical
    planner may turn it into an index seek. Following the paper (§III),
    the leaf-level audit operator sits *above* the scan including its
    pushed predicate.
    """

    table_name: str
    alias: str
    schema: "TableSchema"
    predicate: Expression | None = None
    columns: tuple[PlanColumn, ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        columns = tuple(
            PlanColumn(
                name=column.name,
                qualifier=self.alias,
                origin=(self.table_name, column.name),
            )
            for column in self.schema.columns
        )
        object.__setattr__(self, "columns", columns)


@dataclass(frozen=True)
class Filter(LogicalPlan):
    """Row filter: keeps rows whose predicate evaluates to TRUE."""

    child: LogicalPlan
    predicate: Expression

    @property
    def columns(self) -> tuple[PlanColumn, ...]:  # type: ignore[override]
        return self.child.columns

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def replace_children(self, children: Sequence[LogicalPlan]) -> "Filter":
        (child,) = children
        return replace(self, child=child)


@dataclass(frozen=True)
class Project(LogicalPlan):
    """Computes a new row from expressions over the child row."""

    child: LogicalPlan
    expressions: tuple[Expression, ...]
    columns: tuple[PlanColumn, ...]

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def replace_children(self, children: Sequence[LogicalPlan]) -> "Project":
        (child,) = children
        return replace(self, child=child)


@dataclass(frozen=True)
class Join(LogicalPlan):
    """Join of two inputs; output row is ``left ++ right``.

    ``kind`` is inner/left/semi/anti. For semi and anti joins the output is
    the left row only. ``condition`` binds over the combined row.
    """

    left: LogicalPlan
    right: LogicalPlan
    kind: str
    condition: Expression | None

    @property
    def columns(self) -> tuple[PlanColumn, ...]:  # type: ignore[override]
        if self.kind in (JOIN_SEMI, JOIN_ANTI):
            return self.left.columns
        return self.left.columns + self.right.columns

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.left, self.right)

    def replace_children(self, children: Sequence[LogicalPlan]) -> "Join":
        left, right = children
        return replace(self, left=left, right=right)


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate computation: ``name(argument)`` with DISTINCT flag.

    ``argument`` is None for ``COUNT(*)``.
    """

    name: str
    argument: Expression | None
    distinct: bool = False


@dataclass(frozen=True)
class Aggregate(LogicalPlan):
    """Hash aggregation. Output = group columns, then aggregate columns.

    With no group keys the operator emits exactly one row (global
    aggregate), even over empty input.
    """

    child: LogicalPlan
    group_expressions: tuple[Expression, ...]
    aggregates: tuple[AggregateSpec, ...]
    columns: tuple[PlanColumn, ...]

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def replace_children(self, children: Sequence[LogicalPlan]) -> "Aggregate":
        (child,) = children
        return replace(self, child=child)


@dataclass(frozen=True)
class SortKey:
    """One sort key: expression over child row plus direction."""

    expression: Expression
    ascending: bool = True


@dataclass(frozen=True)
class Sort(LogicalPlan):
    """Full sort of the input."""

    child: LogicalPlan
    keys: tuple[SortKey, ...]

    @property
    def columns(self) -> tuple[PlanColumn, ...]:  # type: ignore[override]
        return self.child.columns

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def replace_children(self, children: Sequence[LogicalPlan]) -> "Sort":
        (child,) = children
        return replace(self, child=child)


@dataclass(frozen=True)
class Limit(LogicalPlan):
    """Emit at most ``count`` rows. Above a Sort this is the top-k operator
    of the paper's Example 3.2."""

    child: LogicalPlan
    count: int

    @property
    def columns(self) -> tuple[PlanColumn, ...]:  # type: ignore[override]
        return self.child.columns

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def replace_children(self, children: Sequence[LogicalPlan]) -> "Limit":
        (child,) = children
        return replace(self, child=child)


@dataclass(frozen=True)
class Distinct(LogicalPlan):
    """Duplicate elimination over full rows."""

    child: LogicalPlan

    @property
    def columns(self) -> tuple[PlanColumn, ...]:  # type: ignore[override]
        return self.child.columns

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def replace_children(self, children: Sequence[LogicalPlan]) -> "Distinct":
        (child,) = children
        return replace(self, child=child)


@dataclass(frozen=True)
class Audit(LogicalPlan):
    """The audit operator (§III-B): a no-op data viewer.

    Probes slot ``id_slot`` of every passing row against the sensitive-ID
    set of audit expression ``audit_name`` and records hits in the query's
    ACCESSED state. Output rows and columns are exactly the child's.

    ``scan_alias`` names the sensitive-table instance this operator guards
    (one operator per instance; relevant for self-joins).
    """

    child: LogicalPlan
    audit_name: str
    id_slot: int
    scan_alias: str

    @property
    def columns(self) -> tuple[PlanColumn, ...]:  # type: ignore[override]
        return self.child.columns

    def children(self) -> tuple[LogicalPlan, ...]:
        return (self.child,)

    def replace_children(self, children: Sequence[LogicalPlan]) -> "Audit":
        (child,) = children
        return replace(self, child=child)


@dataclass(frozen=True)
class Gather(LogicalPlan):
    """Leaf standing for a scatter-gather exchange boundary.

    The cluster coordinator splits a plan at the highest shard-safe node,
    ships the subtree below the cut to every shard, and rebuilds the
    remainder over a ``Gather`` leaf. At execution time the physical
    :class:`~repro.exec.operators.exchange.GatherSource` reads the merged
    per-shard streams out of ``context.gather_rows[key]`` — the leaf
    itself carries only the fragment's output columns and that key.
    """

    key: int
    columns: tuple[PlanColumn, ...]


def map_expressions(plan: LogicalPlan, fn) -> LogicalPlan:
    """Rebuild ``plan`` with ``fn`` applied to every expression it holds.

    Children are processed first. ``fn`` receives each expression exactly
    once and is responsible for descending into subquery plans itself
    (expressions do not know their nesting depth; callers that rebase
    slots track it — see ``repro.plan.rebase``).
    """
    from dataclasses import replace as _replace

    children = tuple(map_expressions(child, fn) for child in plan.children())
    if children:
        plan = plan.replace_children(children)
    if isinstance(plan, Scan):
        if plan.predicate is not None:
            plan = _replace(plan, predicate=fn(plan.predicate))
    elif isinstance(plan, Filter):
        plan = _replace(plan, predicate=fn(plan.predicate))
    elif isinstance(plan, Project):
        plan = _replace(
            plan, expressions=tuple(fn(e) for e in plan.expressions)
        )
    elif isinstance(plan, Join):
        if plan.condition is not None:
            plan = _replace(plan, condition=fn(plan.condition))
    elif isinstance(plan, Aggregate):
        plan = _replace(
            plan,
            group_expressions=tuple(
                fn(e) for e in plan.group_expressions
            ),
            aggregates=tuple(
                _replace(
                    spec,
                    argument=fn(spec.argument)
                    if spec.argument is not None else None,
                )
                for spec in plan.aggregates
            ),
        )
    elif isinstance(plan, Sort):
        plan = _replace(
            plan,
            keys=tuple(
                _replace(key, expression=fn(key.expression))
                for key in plan.keys
            ),
        )
    return plan


def format_plan(plan: LogicalPlan, indent: int = 0) -> str:
    """Readable multi-line rendering of a plan tree (for tests/debugging)."""
    pad = "  " * indent
    label = type(plan).__name__
    details = ""
    if isinstance(plan, Scan):
        details = f" {plan.table_name} AS {plan.alias}"
        if plan.predicate is not None:
            details += " [pushed predicate]"
    elif isinstance(plan, Join):
        details = f" {plan.kind}"
    elif isinstance(plan, Audit):
        details = f" expr={plan.audit_name} slot={plan.id_slot}"
    elif isinstance(plan, Limit):
        details = f" count={plan.count}"
    elif isinstance(plan, Aggregate):
        details = (
            f" groups={len(plan.group_expressions)}"
            f" aggs={len(plan.aggregates)}"
        )
    lines = [f"{pad}{label}{details}"]
    for child in plan.children():
        lines.append(format_plan(child, indent + 1))
    return "\n".join(lines)
