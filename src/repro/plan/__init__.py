"""Logical query plans and the AST-to-plan builder (binder)."""

from repro.plan import logical
from repro.plan.logical import LogicalPlan, PlanColumn
from repro.plan.builder import PlanBuilder

__all__ = ["logical", "LogicalPlan", "PlanColumn", "PlanBuilder"]
