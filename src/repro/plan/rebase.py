"""Slot rebasing that follows references into nested subquery plans.

When the optimizer moves a predicate across a join boundary it must shift
the slot ordinals of every reference to the moved row — including
references that live *inside subquery plans* of that predicate, where the
same row is addressed with ``outer_level == nesting depth``. A plain
expression-tree rewrite misses those; this module tracks the depth.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.expr.nodes import ColumnRef, Expression, SubqueryExpression
from repro.plan.logical import LogicalPlan, map_expressions

SlotFunction = Callable[[int], int]


def remap_slots(expression: Expression, slot_fn: SlotFunction) -> Expression:
    """Rewrite every reference to the expression's level-0 row.

    ``slot_fn`` maps old slot ordinals to new ones. References inside
    nested subquery plans that reach back to the same row (their
    ``outer_level`` equals their nesting depth) are rewritten too; all
    other references — deeper levels or subquery-local — are untouched.
    """
    return _rebuild_expression(expression, slot_fn, depth=0)


def _rebuild_expression(
    expression: Expression, slot_fn: SlotFunction, depth: int
) -> Expression:
    if isinstance(expression, ColumnRef):
        if expression.outer_level == depth and expression.index is not None:
            return replace(expression, index=slot_fn(expression.index))
        return expression
    if isinstance(expression, SubqueryExpression):
        children = expression.children()
        if children:
            expression = expression.replace_children([
                _rebuild_expression(child, slot_fn, depth)
                for child in children
            ])
        if expression.plan is not None:
            expression = replace(
                expression,
                plan=_rebuild_plan(expression.plan, slot_fn, depth + 1),
            )
        return expression
    children = expression.children()
    if not children:
        return expression
    return expression.replace_children([
        _rebuild_expression(child, slot_fn, depth) for child in children
    ])


def _rebuild_plan(
    plan: LogicalPlan, slot_fn: SlotFunction, depth: int
) -> LogicalPlan:
    return map_expressions(
        plan, lambda e: _rebuild_expression(e, slot_fn, depth)
    )


def deep_referenced_slots(expression: Expression) -> set[int]:
    """Every slot of the expression's level-0 row that is referenced,
    including back-references from inside nested subquery plans.

    The shallow ``repro.expr.nodes.referenced_slots`` misses subquery-
    internal references; optimizer passes that decide whether a predicate
    can cross a join boundary must use this version.
    """
    found: set[int] = set()
    _collect_slots(expression, 0, found)
    return found


def _collect_slots(
    expression: Expression, depth: int, found: set[int]
) -> None:
    if isinstance(expression, ColumnRef):
        if expression.outer_level == depth and expression.index is not None:
            found.add(expression.index)
        return
    if isinstance(expression, SubqueryExpression):
        for child in expression.children():
            _collect_slots(child, depth, found)
        if expression.plan is not None:
            _collect_plan_slots(expression.plan, depth + 1, found)
        return
    for child in expression.children():
        _collect_slots(child, depth, found)


def _collect_plan_slots(
    plan: LogicalPlan, depth: int, found: set[int]
) -> None:
    def fn(expression: Expression) -> Expression:
        _collect_slots(expression, depth, found)
        return expression

    map_expressions(plan, fn)
