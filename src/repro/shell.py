"""Interactive SQL shell: ``python -m repro``.

A small REPL over :class:`repro.Database` for exploring the auditing
features. Statements end with ``;``; dot-commands inspect state:

.. code-block:: text

    repro> CREATE TABLE patients (patientid INT PRIMARY KEY, name VARCHAR);
    repro> .tables
    repro> .audit
    repro> .explain SELECT * FROM patients
    repro> .user dr_house
    repro> .quit

The shell prints each SELECT's rows plus its ACCESSED state, making the
audit machinery visible interactively.

The same REPL also speaks to a remote server
(``python -m repro --connect host:port --user alice``): statements go
over the wire through :class:`repro.server.client.Connection`, errors
come back as the same typed exceptions, and ``.user`` re-authenticates
the connection. Engine-introspection dot commands (``.tables``,
``.explain``, ...) need the in-process engine and say so in remote mode.
"""

from __future__ import annotations

import sys
from typing import IO

from repro.database import Database, QueryResult
from repro.errors import ReproError

PROMPT = "repro> "
CONTINUATION = "  ...> "

_HELP = """\
Statements end with ';'. Dot commands:
  .help                 this text
  .tables               list tables with row counts
  .schema <table>       columns of a table
  .audit                audit expressions, views, and triggers
  .explain <select>     logical + physical plan (instrumented)
  .user <name>          switch the session user (for user_id())
  .heuristic <name>     leaf-node | highest-commutative-node | highest-node
  .notifications        show and clear pending SEND EMAIL/NOTIFY messages
  .health               audit-trail damage counters (+ cluster state)
  .quit                 exit\
"""

#: dot commands that read engine internals and so need a local database
_LOCAL_ONLY = (".tables", ".schema", ".audit", ".explain", ".heuristic",
               ".notifications")


class Shell:
    """REPL state: one database (local engine or remote connection),
    one output stream."""

    def __init__(
        self,
        database: object | None = None,
        stdout: IO[str] | None = None,
    ) -> None:
        self.database = database or Database(user_id="shell")
        self.stdout = stdout or sys.stdout
        #: remote mode: ``database`` is a server Connection, not an engine
        self.remote = not hasattr(self.database, "catalog")
        # The shell's identity. Locally this is applied per statement via
        # the thread-local ``Session.override`` — NOT by mutating
        # ``session.user_id``, which would change the process-wide base
        # identity and mis-attribute concurrent queries (e.g. async
        # trigger batches of other threads) to the shell user.
        if self.remote:
            self.user_id = self.database.user_id
        else:
            self.user_id = self.database.session.user_id

    # ------------------------------------------------------------------

    def write(self, text: str = "") -> None:
        print(text, file=self.stdout)

    def run(self, stdin: IO[str] | None = None) -> None:
        """Read-eval-print until EOF or ``.quit``."""
        stream = stdin or sys.stdin
        buffer: list[str] = []
        interactive = stream is sys.stdin and sys.stdin.isatty()
        while True:
            if interactive:  # pragma: no cover - manual use only
                prompt = CONTINUATION if buffer else PROMPT
                try:
                    line = input(prompt)
                except EOFError:
                    break
            else:
                line = stream.readline()
                if not line:
                    break
                line = line.rstrip("\n")
            if not buffer and line.strip().startswith("."):
                if not self.dot_command(line.strip()):
                    break
                continue
            buffer.append(line)
            statement = "\n".join(buffer)
            if statement.rstrip().endswith(";"):
                buffer.clear()
                self.execute(statement)

    # ------------------------------------------------------------------

    def execute(self, sql: str) -> None:
        try:
            if self.remote:
                result = self.database.execute(sql)
            else:
                # thread-local impersonation: the statement (and the
                # ACCESSED metadata its trigger actions capture) runs as
                # the shell's user without touching the engine's base
                # identity
                with self.database.session.override(
                    sql.strip(), self.user_id
                ):
                    result = self.database.execute(sql)
        except ReproError as error:
            self.write(f"error: {error}")
            return
        self.print_result(result)

    def print_result(self, result: QueryResult) -> None:
        if result.columns:
            self.write(" | ".join(result.columns))
            self.write("-+-".join("-" * len(c) for c in result.columns))
            for row in result.rows:
                self.write(" | ".join(_render(value) for value in row))
            self.write(f"({len(result.rows)} rows)")
            for name, ids in sorted(result.accessed.items()):
                shown = ", ".join(map(_render, sorted(ids, key=repr)[:10]))
                more = "" if len(ids) <= 10 else f", ... ({len(ids)} total)"
                self.write(f"ACCESSED[{name}]: {shown}{more}")
        elif result.rowcount:
            self.write(f"ok ({result.rowcount} rows affected)")
        else:
            self.write("ok")

    # ------------------------------------------------------------------

    def dot_command(self, line: str) -> bool:
        """Handle a dot command; returns False to exit the loop."""
        command, __, argument = line.partition(" ")
        argument = argument.strip()
        if command in (".quit", ".exit"):
            return False
        if command == ".help":
            self.write(_HELP)
        elif command == ".user":
            self._switch_user(argument)
        elif command in _LOCAL_ONLY and self.remote:
            self.write(
                f"error: {command} needs the in-process engine "
                "(this shell is connected to a server)"
            )
        elif command == ".tables":
            for table in sorted(
                self.database.catalog.tables(),
                key=lambda table: table.schema.name,
            ):
                self.write(f"{table.schema.name}  ({len(table)} rows)")
        elif command == ".schema":
            self._schema(argument)
        elif command == ".audit":
            self._audit_summary()
        elif command == ".explain":
            try:
                self.write(self.database.explain(argument))
            except ReproError as error:
                self.write(f"error: {error}")
        elif command == ".heuristic":
            if argument:
                self.database.audit_manager.heuristic = argument
            self.write(
                f"placement heuristic: "
                f"{self.database.audit_manager.heuristic}"
            )
        elif command == ".health":
            self._health()
        elif command == ".notifications":
            for message in self.database.notifications:
                self.write(f"  {message}")
            self.write(
                f"({len(self.database.notifications)} notifications)"
            )
            self.database.notifications.clear()
        else:
            self.write(f"unknown command {command!r} (try .help)")
        return True

    def _health(self) -> None:
        """``.health``: audit-trail damage, locally or over the wire.

        Works in both modes — remotely it surfaces the server's
        ``{"type": "health"}`` frame, so an operator at a client shell
        sees the same counters an in-process caller would.
        """
        try:
            if self.remote:
                report = self.database.health()
            else:
                cluster_health = getattr(
                    self.database, "cluster_health", None
                )
                report = {
                    "audit_trail": self.database.audit_trail_health(),
                    "cluster": (
                        cluster_health()
                        if callable(cluster_health) else None
                    ),
                }
        except ReproError as error:
            self.write(f"error: {error}")
            return
        for key, value in sorted(report.get("audit_trail", {}).items()):
            self.write(f"audit_trail.{key}: {value}")
        cluster = report.get("cluster")
        if cluster is None:
            self.write("cluster: (single node)")
        else:
            for key, value in sorted(cluster.items()):
                self.write(f"cluster.{key}: {value}")

    def _switch_user(self, argument: str) -> None:
        if argument:
            if self.remote:
                try:
                    # re-authenticate: the server, not the client,
                    # decides whether the identity switch is allowed
                    self.user_id = self.database.set_user(argument)
                except ReproError as error:
                    self.write(f"error: {error}")
                    return
            else:
                self.user_id = argument
        self.write(f"user: {self.user_id}")

    def _schema(self, table_name: str) -> None:
        try:
            table = self.database.catalog.table(table_name)
        except ReproError as error:
            self.write(f"error: {error}")
            return
        for column in table.schema.columns:
            flags = []
            if column.name in table.schema.primary_key:
                flags.append("PRIMARY KEY")
            if not column.nullable:
                flags.append("NOT NULL")
            suffix = f"  {' '.join(flags)}" if flags else ""
            self.write(f"{column.name}  {column.data_type}{suffix}")

    def _audit_summary(self) -> None:
        manager = self.database.audit_manager
        expressions = manager.expressions()
        if not expressions:
            self.write("no audit expressions")
        for expression in expressions:
            view = manager.view(expression.name)
            self.write(
                f"{expression.name}: table={expression.sensitive_table} "
                f"partition_by={expression.partition_by} "
                f"ids={len(view)} probe={view.probe_structure}"
            )
        triggers = list(self.database.catalog.triggers())
        for trigger in triggers:
            kind = type(trigger).__name__
            self.write(f"trigger {trigger.name} ({kind})")
        self.write(f"heuristic: {manager.heuristic}")


def _render(value: object) -> str:
    if value is None:
        return "NULL"
    return str(value)


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    arguments = list(argv if argv is not None else sys.argv[1:])
    connect_to: str | None = None
    user = "shell"
    password: str | None = None
    tpch_scale: float | None = None
    index = 0
    while index < len(arguments):
        argument = arguments[index]
        if argument == "--connect":
            index += 1
            connect_to = arguments[index]
        elif argument == "--user":
            index += 1
            user = arguments[index]
        elif argument == "--password":
            index += 1
            password = arguments[index]
        elif argument == "--tpch":
            tpch_scale = 0.002
            if index + 1 < len(arguments):
                try:
                    tpch_scale = float(arguments[index + 1])
                    index += 1
                except ValueError:
                    pass
        else:
            print(f"unknown argument {argument!r}", file=sys.stderr)
            print(
                "usage: python -m repro [--tpch [SF]] "
                "[--connect HOST:PORT [--user NAME] [--password PW]]",
                file=sys.stderr,
            )
            return 2
        index += 1

    if connect_to is not None:
        from repro.server.client import Connection

        host, _, port_text = connect_to.rpartition(":")
        if not host:
            print(
                f"--connect expects HOST:PORT, got {connect_to!r}",
                file=sys.stderr,
            )
            return 2
        try:
            connection = Connection(
                host, int(port_text), user_id=user, password=password
            )
        except ReproError as error:
            print(f"cannot connect: {error}", file=sys.stderr)
            return 1
        shell = Shell(connection)
        shell.write(
            f"repro shell — connected to {connect_to} as "
            f"{connection.user_id}; .help for commands"
        )
        try:
            shell.run()
        finally:
            connection.close()
        return 0

    database = Database(user_id=user)
    if tpch_scale is not None:
        from repro.tpch import load_tpch

        counts = load_tpch(database, scale_factor=tpch_scale)
        print(
            "loaded TPC-H "
            + ", ".join(f"{name}={count}" for name, count in counts.items())
        )
    shell = Shell(database)
    shell.write("repro shell — type .help for commands, .quit to exit")
    shell.run()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
