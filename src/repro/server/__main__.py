"""Standalone server: ``python -m repro.server``.

Starts a :class:`~repro.server.Server` over a fresh
:class:`~repro.database.Database`, optionally journaled and seeded from
an SQL script, and serves until SIGTERM/SIGINT — which trigger the
audited graceful shutdown (drain statements, drain triggers, close the
journal) before the process exits.

Examples::

    python -m repro.server --port 7432
    python -m repro.server --port 0 --journal /var/lib/repro/journal \\
        --init schema.sql --trigger-mode async --user alice:s3cret
    python -m repro.server --frontend async --replicate \\
        --journal /var/lib/repro/journal --init schema.sql

The bound address is printed as ``repro server listening on HOST:PORT``
(useful with ``--port 0``); scripted harnesses parse that line.

``--frontend async`` serves through :class:`~repro.server.AsyncServer`
(event loop + bounded worker pool) instead of a thread per connection;
``--replicate`` journals every committed DML/DDL statement so read
replicas (:class:`~repro.replication.ReplicaDatabase`) can subscribe —
it requires ``--journal``.
"""

from __future__ import annotations

import argparse
import signal
import sys

from repro.database import Database
from repro.server.aserver import DEFAULT_WORKERS, AsyncServer
from repro.server.auth import StaticAuthenticator
from repro.server.server import (
    DEFAULT_ADMISSION_QUEUE,
    DEFAULT_MAX_CONNECTIONS,
    Server,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a repro database over TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=7432,
        help="TCP port (0 = ephemeral, printed at startup)",
    )
    parser.add_argument(
        "--journal", default=None, metavar="DIR",
        help="attach a write-ahead audit journal at this directory",
    )
    parser.add_argument(
        "--fsync", default="batch", choices=("always", "batch", "off"),
        help="journal fsync policy (default: batch)",
    )
    parser.add_argument(
        "--audit-policy", default="fail_open",
        choices=("fail_open", "fail_closed"),
    )
    parser.add_argument(
        "--trigger-mode", default="sync", choices=("sync", "async"),
        help="SELECT-trigger firing mode (default: sync)",
    )
    parser.add_argument(
        "--init", default=None, metavar="FILE",
        help="SQL script executed once at startup (schema, triggers, data)",
    )
    parser.add_argument(
        "--max-connections", type=int, default=DEFAULT_MAX_CONNECTIONS,
    )
    parser.add_argument(
        "--admission-queue", type=int, default=DEFAULT_ADMISSION_QUEUE,
        help="connections allowed to wait for a slot before shedding",
    )
    parser.add_argument(
        "--admission-timeout", type=float, default=5.0,
        help="seconds a queued connection waits before it is shed",
    )
    parser.add_argument(
        "--statement-timeout", type=float, default=None, metavar="SECONDS",
    )
    parser.add_argument(
        "--idle-timeout", type=float, default=None, metavar="SECONDS",
        help="reap connections silent for this long",
    )
    parser.add_argument(
        "--user", action="append", default=[], metavar="NAME:PASSWORD",
        help="enable static authentication; repeatable",
    )
    parser.add_argument(
        "--shutdown-timeout", type=float, default=30.0,
        help="seconds graceful shutdown waits for in-flight statements",
    )
    parser.add_argument(
        "--frontend", default="threaded", choices=("threaded", "async"),
        help="thread-per-connection or asyncio front end",
    )
    parser.add_argument(
        "--workers", type=int, default=DEFAULT_WORKERS,
        help="statement worker threads (async front end only)",
    )
    parser.add_argument(
        "--replicate", action="store_true",
        help="journal committed statements for read replicas "
        "(requires --journal)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    arguments = build_parser().parse_args(argv)
    database = Database(
        user_id="server",
        journal_path=arguments.journal,
        journal_fsync=arguments.fsync,
        audit_policy=arguments.audit_policy,
    )
    database.trigger_mode = arguments.trigger_mode
    if arguments.replicate:
        if not arguments.journal:
            print("--replicate requires --journal", file=sys.stderr)
            return 2
        # set BEFORE --init runs so schema DDL is journaled too — a
        # replica bootstrapping from seq 0 then reconstructs everything
        database.replicate_statements = True
    if arguments.init:
        with open(arguments.init, "r", encoding="utf-8") as handle:
            database.execute_script(handle.read())
    authenticator = None
    if arguments.user:
        credentials = {}
        for pair in arguments.user:
            name, separator, password = pair.partition(":")
            if not separator:
                print(
                    f"--user must be NAME:PASSWORD, got {pair!r}",
                    file=sys.stderr,
                )
                return 2
            credentials[name] = password
        authenticator = StaticAuthenticator(credentials)
    common = dict(
        host=arguments.host,
        port=arguments.port,
        max_connections=arguments.max_connections,
        admission_queue=arguments.admission_queue,
        admission_timeout=arguments.admission_timeout,
        statement_timeout=arguments.statement_timeout,
        idle_timeout=arguments.idle_timeout,
        authenticator=authenticator,
    )
    if arguments.frontend == "async":
        server = AsyncServer(database, workers=arguments.workers, **common)
    else:
        server = Server(database, **common)
    server.start()
    print(
        f"repro server listening on {server.host}:{server.port}", flush=True
    )

    def _graceful(signum, frame):  # noqa: ARG001 — signal signature
        # run the drain off the signal frame; serve_forever unblocks
        # when shutdown completes
        import threading

        threading.Thread(
            target=server.shutdown,
            kwargs={"timeout": arguments.shutdown_timeout},
            name="repro-shutdown",
            daemon=True,
        ).start()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    server.serve_forever()
    stats = server.stats()
    print(
        f"repro server stopped "
        f"(statements={stats['statements_total']}, "
        f"timeouts={stats['timeouts_total']}, "
        f"reaped={stats['reaped_total']})",
        flush=True,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
