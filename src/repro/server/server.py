"""The threaded TCP server multiplexing clients onto one ``Database``.

Architecture (DESIGN.md §9)::

    accept thread ──► AdmissionController ──► handler thread per client
                                                   │  (handshake, frames)
                                                   ▼
                                   statement executor (thread pool)
                                     DrainGate ▸ Session.override ▸
                                     Database.execute ▸ stream batches

Each connection is authenticated once (the handshake sets its
``user_id``); every statement then executes under
``Session.override(sql, user)`` on an executor thread, so audit-trigger
attribution is per-connection even though the engine and its async
trigger pipeline are shared. Results stream back in bounded ``rows``
frames followed by a ``done`` frame carrying the ACCESSED metadata;
engine errors become typed ``error`` frames the client re-raises.

Production-shape controls are built in, not bolted on:

* **admission control** — connection cap + bounded wait queue, typed
  :class:`~repro.errors.ServerOverloadedError` shedding;
* **per-statement timeout** — the client gets
  :class:`~repro.errors.StatementTimeoutError`; the statement itself
  runs to completion so its audit firings still land;
* **idle reaping** — connections silent past ``idle_timeout`` are closed
  with a ``goodbye`` frame;
* **audited graceful shutdown** — stop accepting, shed queued
  admissions, drain in-flight statements (:class:`DrainGate`), drain the
  async trigger pipeline, and only then close the database (which closes
  the audit journal) — so every journaled intent gets its commit and no
  recorded firing is lost.
"""

from __future__ import annotations

import concurrent.futures
import select
import socket
import threading
import time
from typing import TYPE_CHECKING

from repro.concurrency import DrainGate, GateClosedError
from repro.durability.journal import JournalCursor
from repro.errors import (
    AuthenticationError,
    ConnectionClosedError,
    DurabilityError,
    ProtocolError,
    ReproError,
    ServerError,
    ServerOverloadedError,
    ServerShutdownError,
    StatementTimeoutError,
)
from repro.server.admission import AdmissionController
from repro.server.auth import (
    Authenticator,
    ClientSession,
    OpenAuthenticator,
)
from repro.server import protocol

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.database import Database, QueryResult

#: rows per ``rows`` frame (bounds per-frame memory, keeps latency low)
DEFAULT_BATCH_ROWS = 256

#: idle journal-stream heartbeat: an empty ``journal`` frame refreshing
#: ``primary_seq`` so a subscriber's lag metric stays honest on a quiet
#: primary (both front ends send it; the socket tailer's liveness and
#: EOF detection rely on the traffic)
DEFAULT_HEARTBEAT_INTERVAL = 1.0

DEFAULT_MAX_CONNECTIONS = 32
DEFAULT_ADMISSION_QUEUE = 8


class Server:
    """A threaded TCP front end over one :class:`~repro.database.Database`.

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    :meth:`start`). The server owns the database's shutdown by default
    (``close_database=True``): :meth:`shutdown` drains and closes it so
    the audit journal ends with zero uncommitted intents.
    """

    def __init__(
        self,
        database: "Database",
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_connections: int = DEFAULT_MAX_CONNECTIONS,
        admission_queue: int = DEFAULT_ADMISSION_QUEUE,
        admission_timeout: float = 5.0,
        statement_timeout: float | None = None,
        idle_timeout: float | None = None,
        reap_interval: float = 0.25,
        handshake_timeout: float = 5.0,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        authenticator: Authenticator | None = None,
        close_database: bool = True,
    ) -> None:
        self.database = database
        self.host = host
        self.port = port
        self.statement_timeout = statement_timeout
        self.idle_timeout = idle_timeout
        self.batch_rows = max(1, batch_rows)
        self.authenticator = authenticator or OpenAuthenticator()
        self._close_database = close_database
        self._handshake_timeout = handshake_timeout
        self._reap_interval = reap_interval
        self.admission = AdmissionController(
            max_connections,
            queue_limit=admission_queue,
            queue_timeout=admission_timeout,
        )
        #: in-flight statement accounting; closed+drained by shutdown
        self.gate = DrainGate()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=max_connections + 4,
            thread_name_prefix="repro-stmt",
        )
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._reaper_thread: threading.Thread | None = None
        self._connections: dict[socket.socket, ClientSession] = {}
        self._handlers: list[threading.Thread] = []
        self._conn_lock = threading.Lock()
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._shutdown_lock = threading.Lock()
        self._started = False
        # telemetry
        self.statements_total = 0
        self.timeouts_total = 0
        self.reaped_total = 0

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> "Server":
        """Bind, listen, and spawn the accept (and reaper) threads."""
        if self._started:
            raise ServerError("server already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(128)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._started = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-accept", daemon=True
        )
        self._accept_thread.start()
        if self.idle_timeout is not None:
            self._reaper_thread = threading.Thread(
                target=self._reap_loop, name="repro-reaper", daemon=True
            )
            self._reaper_thread.start()
        return self

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def __enter__(self) -> "Server":
        if not self._started:
            self.start()
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        self.shutdown()
        return False

    def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes (signal-handler friendly)."""
        if not self._started:
            self.start()
        self._stopped.wait()

    def shutdown(self, timeout: float | None = 30.0) -> dict:
        """Audited graceful shutdown; idempotent and thread-safe.

        Ordering is the durability contract: (1) stop accepting and shed
        queued admissions, (2) refuse new statements, (3) drain in-flight
        statements, (4) drain the async trigger pipeline so every
        journaled intent commits, (5) close client connections, (6) close
        the database — trigger pipeline then audit journal. Returns a
        stats dict describing what was drained.
        """
        with self._shutdown_lock:
            if self._stopped.is_set():
                return self._shutdown_stats(drained=True)
            self._stopping.set()
            self.admission.close()
            if self._listener is not None:
                _quietly_close(self._listener)
            self.gate.close()
            drained = self.gate.drain(timeout)
            self.database.drain_triggers()
            with self._conn_lock:
                sockets = list(self._connections)
            for sock in sockets:
                _say_goodbye(sock, "server shutdown")
            accept = self._accept_thread
            if accept is not None and accept is not threading.current_thread():
                accept.join(timeout=5.0)
            with self._conn_lock:
                handlers = list(self._handlers)
            for handler in handlers:
                if handler is not threading.current_thread():
                    handler.join(timeout=5.0)
            self._executor.shutdown(wait=False)
            if self._close_database:
                self.database.close()
            self._stopped.set()
            return self._shutdown_stats(drained=drained)

    def _shutdown_stats(self, drained: bool) -> dict:
        return {
            "drained": drained,
            "statements_total": self.statements_total,
            "timeouts_total": self.timeouts_total,
            "reaped_total": self.reaped_total,
            "admission": self.admission.stats(),
        }

    def stats(self) -> dict:
        """Live serving counters (tests and operators)."""
        with self._conn_lock:
            connections = len(self._connections)
        return {
            "connections": connections,
            "in_flight": self.gate.active,
            "statements_total": self.statements_total,
            "timeouts_total": self.timeouts_total,
            "reaped_total": self.reaped_total,
            "admission": self.admission.stats(),
        }

    # ------------------------------------------------------------------
    # accept / reap threads

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stopping.is_set():
            try:
                sock, addr = self._listener.accept()
            except OSError:
                return  # listener closed: shutdown
            # without TCP_NODELAY, Nagle holds the small rows/done frames
            # for the peer's delayed ACK — ~40 ms per statement on
            # loopback, dwarfing execution itself
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            handler = threading.Thread(
                target=self._serve_connection,
                args=(sock, f"{addr[0]}:{addr[1]}"),
                name=f"repro-client-{addr[1]}",
                daemon=True,
            )
            with self._conn_lock:
                self._handlers.append(handler)
            handler.start()

    def _reap_loop(self) -> None:
        while not self._stopping.is_set():
            self._stopping.wait(self._reap_interval)
            if self._stopping.is_set():
                return
            assert self.idle_timeout is not None
            with self._conn_lock:
                victims = [
                    sock
                    for sock, session in self._connections.items()
                    if session.idle_for() > self.idle_timeout
                ]
            for sock in victims:
                self.reaped_total += 1
                _say_goodbye(sock, "idle timeout")

    # ------------------------------------------------------------------
    # per-connection handler

    def _serve_connection(self, sock: socket.socket, peer: str) -> None:
        session: ClientSession | None = None
        try:
            try:
                self.admission.admit()
            except ServerOverloadedError as error:
                _quietly_send(sock, protocol.error_frame(error))
                return
            try:
                session = self._handshake(sock, peer)
                if session is None:
                    return
                with self._conn_lock:
                    self._connections[sock] = session
                self._frame_loop(sock, session)
            finally:
                self.admission.release()
        except (ConnectionClosedError, OSError):
            pass  # peer vanished; nothing to tell it
        except ProtocolError as error:
            _quietly_send(sock, protocol.error_frame(error))
        finally:
            if session is not None:
                with self._conn_lock:
                    self._connections.pop(sock, None)
            _quietly_close(sock)
            with self._conn_lock:
                if threading.current_thread() in self._handlers:
                    self._handlers.remove(threading.current_thread())

    def _handshake(
        self, sock: socket.socket, peer: str
    ) -> ClientSession | None:
        sock.settimeout(self._handshake_timeout)
        try:
            frame = protocol.recv_frame(sock)
        except socket.timeout:
            _quietly_send(
                sock,
                protocol.error_frame(
                    ProtocolError("handshake timed out waiting for hello")
                ),
            )
            return None
        finally:
            sock.settimeout(None)
        if frame is None:
            return None
        if frame.get("type") != "hello":
            raise ProtocolError(
                f"expected a hello frame, got {frame.get('type')!r}"
            )
        if frame.get("protocol") != protocol.PROTOCOL_VERSION:
            raise ProtocolError(
                f"unsupported protocol version {frame.get('protocol')!r} "
                f"(server speaks {protocol.PROTOCOL_VERSION})"
            )
        try:
            user = self.authenticator.authenticate(
                frame.get("user", ""), frame.get("password")
            )
        except AuthenticationError as error:
            _quietly_send(sock, protocol.error_frame(error))
            return None
        session = ClientSession(user_id=user, peer=peer)
        protocol.send_frame(
            sock,
            {
                "type": "hello_ok",
                "server": "repro",
                "protocol": protocol.PROTOCOL_VERSION,
                "session": session.session_id,
            },
        )
        return session

    def _frame_loop(self, sock: socket.socket, session: ClientSession) -> None:
        while True:
            frame = protocol.recv_frame(sock)
            if frame is None:
                return
            session.touch()
            kind = frame.get("type")
            if kind == "execute":
                self._handle_execute(sock, session, frame)
                session.touch()
            elif kind == "set_user":
                self._handle_set_user(sock, session, frame)
            elif kind == "health":
                self._handle_health(sock)
            elif kind == "ping":
                protocol.send_frame(sock, {"type": "pong"})
            elif kind == "intent":
                self._handle_intent(sock, session, frame)
            elif kind == "subscribe":
                self._handle_subscribe(sock, frame)
                return  # a subscribed connection is a one-way stream
            elif kind == "quit":
                _say_goodbye(sock, "client quit")
                return
            else:
                protocol.send_frame(
                    sock,
                    protocol.error_frame(
                        ProtocolError(f"unknown frame type {kind!r}")
                    ),
                )

    def _handle_health(self, sock: socket.socket) -> None:
        """Answer a ``health`` frame: trail damage + cluster breaker state.

        ``cluster`` is null on a single-node server; over a
        :class:`~repro.cluster.ClusterDatabase` it carries the
        ``cluster_health()`` snapshot (per-shard circuit states,
        degraded-read / retry / deadline counters, stale replicas), so
        remote operators can distinguish "gaps because the journal
        hiccuped" from "gaps because shard 2 is quarantined".
        """
        cluster_health = getattr(self.database, "cluster_health", None)
        protocol.send_frame(
            sock,
            {
                "type": "health",
                "audit_trail": self.database.audit_trail_health(),
                "cluster": (
                    cluster_health() if callable(cluster_health) else None
                ),
            },
        )

    # ------------------------------------------------------------------
    # replication frames (DESIGN.md §13)

    def _handle_intent(
        self, sock: socket.socket, session: ClientSession, frame: dict
    ) -> None:
        """A replica hands a firing to this (primary) server.

        The intent is journaled and fired under the *original* session's
        attribution (the replica forwards the sql/user it computed the
        ACCESSED set under), so the primary's audit log is identical to
        the single-node log for the same statement stream.
        """
        try:
            accessed = protocol.decode_accessed(frame.get("accessed") or {})
        except ReproError as error:
            protocol.send_frame(sock, protocol.error_frame(error))
            return
        sql_text = frame.get("sql", "")
        user_id = frame.get("user", "")
        try:
            with self.gate.entered():
                seq = self.database.apply_forwarded_intent(
                    accessed, sql_text, user_id
                )
        except GateClosedError:
            protocol.send_frame(
                sock,
                protocol.error_frame(
                    ServerShutdownError(
                        "server is draining for shutdown; intent refused"
                    )
                ),
            )
            return
        except Exception as error:  # noqa: BLE001 — typed frame
            protocol.send_frame(sock, protocol.error_frame(error))
            return
        protocol.send_frame(sock, {"type": "intent_ok", "seq": seq})

    def _handle_subscribe(self, sock: socket.socket, frame: dict) -> None:
        """Turn this connection into a one-way journal stream."""
        journal = getattr(self.database, "journal", None)
        if journal is None:
            protocol.send_frame(
                sock,
                protocol.error_frame(
                    DurabilityError(
                        "no audit journal attached; nothing to stream"
                    )
                ),
            )
            return
        try:
            from_seq = int(frame.get("from_seq") or 0)
        except (TypeError, ValueError):
            protocol.send_frame(
                sock,
                protocol.error_frame(
                    ProtocolError("subscribe from_seq is not an integer")
                ),
            )
            return
        protocol.send_frame(
            sock, {"type": "subscribe_ok", "next_seq": journal.next_seq}
        )
        cursor = JournalCursor(journal.path, from_seq=from_seq)
        last_beat = time.monotonic()
        while not self._stopping.is_set():
            records = cursor.poll()
            if records:
                protocol.send_frame(sock, {
                    "type": "journal",
                    "records": [
                        {"seq": r.seq, "kind": r.kind, "data": r.data}
                        for r in records
                    ],
                    "primary_seq": journal.next_seq,
                })
                last_beat = time.monotonic()
                continue
            if time.monotonic() - last_beat >= DEFAULT_HEARTBEAT_INTERVAL:
                # idle heartbeat keeps the replica's lag metric honest
                protocol.send_frame(sock, {
                    "type": "journal",
                    "records": [],
                    "primary_seq": journal.next_seq,
                })
                last_beat = time.monotonic()
            # idle: watch the socket so a departing subscriber is
            # noticed promptly (readable + empty recv = EOF)
            readable, _, _ = select.select([sock], [], [], 0.02)
            if readable:
                try:
                    if not sock.recv(1, socket.MSG_PEEK):
                        return
                except OSError:
                    return

    # ------------------------------------------------------------------
    # statements

    def _handle_execute(
        self, sock: socket.socket, session: ClientSession, frame: dict
    ) -> None:
        sql = frame.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            protocol.send_frame(
                sock,
                protocol.error_frame(
                    ProtocolError("execute frame carries no sql")
                ),
            )
            return
        raw_parameters = frame.get("parameters") or None
        parameters = None
        if raw_parameters is not None:
            parameters = {
                name: protocol.decode_value(value)
                for name, value in raw_parameters.items()
            }
        future = self._executor.submit(
            self._run_statement, session, sql, parameters
        )
        try:
            result = future.result(timeout=self.statement_timeout)
        except concurrent.futures.TimeoutError:
            # the statement is NOT killed: Python offers no safe thread
            # preemption, and killing it would strand a journaled intent
            # without its firing. Results are withheld; audit runs on.
            self.timeouts_total += 1
            protocol.send_frame(
                sock,
                protocol.error_frame(
                    StatementTimeoutError(
                        f"statement exceeded {self.statement_timeout:.3f}s "
                        "(it completes in the background; its audit "
                        "records are preserved)"
                    )
                ),
            )
            return
        except GateClosedError:
            protocol.send_frame(
                sock,
                protocol.error_frame(
                    ServerShutdownError(
                        "server is draining for shutdown; statement refused"
                    )
                ),
            )
            return
        except ReproError as error:
            protocol.send_frame(sock, protocol.error_frame(error))
            return
        except Exception as error:  # noqa: BLE001 — typed frame, not a dead conn
            protocol.send_frame(sock, protocol.error_frame(error))
            return
        self.statements_total += 1
        self._stream_result(sock, result)

    def _run_statement(
        self,
        session: ClientSession,
        sql: str,
        parameters: dict[str, object] | None,
    ) -> "QueryResult":
        """Executor-thread body: gate, impersonate, execute."""
        with self.gate.entered():
            session.statements += 1
            # the override pins this executor thread's identity to the
            # connection for the duration of the statement — including
            # the ACCESSED capture the async pipeline snapshots — so a
            # shared engine still attributes per-connection
            with self.database.session.override(sql, session.user_id):
                return self.database.execute(sql, parameters)

    def _stream_result(self, sock: socket.socket, result: "QueryResult") -> None:
        rows = result.rows
        for start in range(0, len(rows), self.batch_rows):
            protocol.send_frame(
                sock,
                {
                    "type": "rows",
                    "rows": [
                        protocol.encode_row(row)
                        for row in rows[start:start + self.batch_rows]
                    ],
                },
            )
        done = {
            "type": "done",
            "columns": list(result.columns),
            "rowcount": result.rowcount,
            "accessed": protocol.encode_accessed(result.accessed),
        }
        if getattr(self.database, "replicate_statements", False):
            # read-your-writes token: a replica that has applied every
            # journal record below this seq has seen this statement
            token = self.database.replication_token()
            if token is not None:
                done["token"] = token
        protocol.send_frame(sock, done)

    def _handle_set_user(
        self, sock: socket.socket, session: ClientSession, frame: dict
    ) -> None:
        try:
            user = self.authenticator.authenticate(
                frame.get("user", ""), frame.get("password")
            )
        except AuthenticationError as error:
            protocol.send_frame(sock, protocol.error_frame(error))
            return
        session.user_id = user
        protocol.send_frame(sock, {"type": "ok", "user": user})


# ----------------------------------------------------------------------
# socket helpers (best-effort: the peer may already be gone)

def _quietly_send(sock: socket.socket, frame: dict) -> None:
    try:
        protocol.send_frame(sock, frame)
    except OSError:
        pass


def _say_goodbye(sock: socket.socket, reason: str) -> None:
    _quietly_send(sock, {"type": "goodbye", "reason": reason})
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass


def _quietly_close(sock: socket.socket) -> None:
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


__all__ = [
    "Server",
    "DEFAULT_BATCH_ROWS",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_MAX_CONNECTIONS",
    "DEFAULT_ADMISSION_QUEUE",
]
