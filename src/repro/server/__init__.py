"""repro.server — the network serving layer (DESIGN.md §9).

The paper's setting is a DBMS serving live queries from many
authenticated users; this package gives the reproduction that boundary:

* :class:`Server` — threaded TCP server multiplexing clients onto one
  shared :class:`~repro.database.Database`, with authenticated sessions,
  admission control (connection cap + bounded queue +
  :class:`~repro.errors.ServerOverloadedError` shedding), per-statement
  timeouts, idle-connection reaping, and audited graceful shutdown;
* :class:`Connection` — the blocking client library (also what
  ``python -m repro --connect host:port`` uses);
* :mod:`repro.server.protocol` — the length-prefixed JSON wire protocol.

Run a standalone server with ``python -m repro.server``; embed one with
``Database.serve(...)``.
"""

from repro.server.admission import AdmissionController
from repro.server.auth import (
    Authenticator,
    ClientSession,
    OpenAuthenticator,
    StaticAuthenticator,
)
from repro.server.client import Connection
from repro.server.server import (
    DEFAULT_ADMISSION_QUEUE,
    DEFAULT_BATCH_ROWS,
    DEFAULT_MAX_CONNECTIONS,
    Server,
)

__all__ = [
    "Server",
    "Connection",
    "AdmissionController",
    "Authenticator",
    "OpenAuthenticator",
    "StaticAuthenticator",
    "ClientSession",
    "DEFAULT_MAX_CONNECTIONS",
    "DEFAULT_ADMISSION_QUEUE",
    "DEFAULT_BATCH_ROWS",
]
