"""repro.server — the network serving layer (DESIGN.md §9).

The paper's setting is a DBMS serving live queries from many
authenticated users; this package gives the reproduction that boundary:

* :class:`Server` — threaded TCP server multiplexing clients onto one
  shared :class:`~repro.database.Database`, with authenticated sessions,
  admission control (connection cap + bounded queue +
  :class:`~repro.errors.ServerOverloadedError` shedding), per-statement
  timeouts, idle-connection reaping, and audited graceful shutdown;
* :class:`AsyncServer` — the asyncio front end (DESIGN.md §13): same
  protocol and shutdown contract, but idle connections cost a file
  descriptor + coroutine instead of a thread, statements bridge onto a
  bounded worker pool, clients may pipeline, and streaming is
  backpressure-aware. Also the replication endpoint (``subscribe`` /
  ``intent`` frames);
* :class:`Connection` — the blocking client library (also what
  ``python -m repro --connect host:port`` uses), with opt-in overload
  retries and ``execute_many`` pipelining;
* :mod:`repro.server.protocol` — the length-prefixed JSON wire protocol.

Run a standalone server with ``python -m repro.server`` (pick the front
end with ``--frontend threaded|async``); embed one with
``Database.serve(...)`` or ``Database.serve_async(...)``.
"""

from repro.server.admission import (
    AdmissionController,
    AsyncAdmissionController,
)
from repro.server.aserver import (
    DEFAULT_ASYNC_CONNECTIONS,
    DEFAULT_MAX_PIPELINE,
    DEFAULT_WORKERS,
    AsyncServer,
)
from repro.server.auth import (
    Authenticator,
    ClientSession,
    OpenAuthenticator,
    StaticAuthenticator,
)
from repro.server.client import Connection
from repro.server.server import (
    DEFAULT_ADMISSION_QUEUE,
    DEFAULT_BATCH_ROWS,
    DEFAULT_MAX_CONNECTIONS,
    Server,
)

__all__ = [
    "Server",
    "AsyncServer",
    "Connection",
    "AdmissionController",
    "AsyncAdmissionController",
    "Authenticator",
    "OpenAuthenticator",
    "StaticAuthenticator",
    "ClientSession",
    "DEFAULT_MAX_CONNECTIONS",
    "DEFAULT_ADMISSION_QUEUE",
    "DEFAULT_BATCH_ROWS",
    "DEFAULT_ASYNC_CONNECTIONS",
    "DEFAULT_MAX_PIPELINE",
    "DEFAULT_WORKERS",
]
