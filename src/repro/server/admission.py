"""Connection admission control: cap, bounded queue, load shedding.

The server multiplexes clients onto one :class:`~repro.database.Database`
whose write side is exclusive, so admitting unbounded connections only
converts overload into timeouts. Instead admission is two-stage:

* up to ``max_active`` connections are served concurrently;
* up to ``queue_limit`` more *wait* (bounded, FIFO-fair via the
  condition queue) for at most ``queue_timeout`` seconds;
* everyone else is shed immediately with
  :class:`~repro.errors.ServerOverloadedError` — a typed, retryable
  signal rather than a hung socket.
"""

from __future__ import annotations

import asyncio
import collections
import threading
import time

from repro.errors import ServerOverloadedError


class AdmissionController:
    """Bounded two-stage admission: active slots plus a waiting room."""

    def __init__(
        self,
        max_active: int,
        queue_limit: int = 0,
        queue_timeout: float = 5.0,
    ) -> None:
        if max_active < 1:
            raise ValueError("max_active must be >= 1")
        self._condition = threading.Condition()
        self._max_active = max_active
        self._queue_limit = max(0, queue_limit)
        self._queue_timeout = queue_timeout
        self._active = 0
        self._waiting = 0
        self._closed = False
        # telemetry
        self.admitted_total = 0
        self.shed_total = 0
        self.peak_active = 0
        self.peak_waiting = 0

    @property
    def active(self) -> int:
        with self._condition:
            return self._active

    @property
    def waiting(self) -> int:
        with self._condition:
            return self._waiting

    def close(self) -> None:
        """Refuse new admissions (shutdown); waiters are woken and shed."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    def admit(self) -> None:
        """Claim one active slot or raise :class:`ServerOverloadedError`.

        Blocks in the bounded waiting room when the cap is reached;
        sheds immediately when the waiting room is full, when the wait
        exceeds ``queue_timeout``, or when the controller is closed.
        """
        deadline = time.monotonic() + self._queue_timeout
        with self._condition:
            if self._closed:
                self.shed_total += 1
                # shutting down: retrying this endpoint is pointless, so
                # no retry_after hint rides the error
                raise ServerOverloadedError("server is shutting down")
            if self._active >= self._max_active:
                if self._waiting >= self._queue_limit:
                    self.shed_total += 1
                    # the waiting room drains within one queue timeout;
                    # that is the honest machine-readable backoff hint
                    raise ServerOverloadedError(
                        f"server at capacity ({self._max_active} active, "
                        f"{self._waiting} queued); retry later",
                        retry_after=self._queue_timeout,
                    )
                self._waiting += 1
                self.peak_waiting = max(self.peak_waiting, self._waiting)
                try:
                    while self._active >= self._max_active:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0 or self._closed:
                            self.shed_total += 1
                            raise ServerOverloadedError(
                                "gave up waiting for a connection slot "
                                f"after {self._queue_timeout:.1f}s",
                                retry_after=self._queue_timeout,
                            )
                        self._condition.wait(remaining)
                finally:
                    self._waiting -= 1
            self._active += 1
            self.admitted_total += 1
            self.peak_active = max(self.peak_active, self._active)

    def release(self) -> None:
        """Return one active slot; wakes a queued waiter."""
        with self._condition:
            if self._active <= 0:
                raise RuntimeError("release() without a matching admit()")
            self._active -= 1
            self._condition.notify()

    def stats(self) -> dict[str, int]:
        with self._condition:
            return {
                "active": self._active,
                "waiting": self._waiting,
                "admitted_total": self.admitted_total,
                "shed_total": self.shed_total,
                "peak_active": self.peak_active,
                "peak_waiting": self.peak_waiting,
            }


class AsyncAdmissionController:
    """:class:`AdmissionController` semantics on asyncio primitives.

    Same two-stage policy, same telemetry fields, but :meth:`admit`
    *awaits* instead of blocking a thread, so an asyncio front end can
    queue thousands of waiters at coroutine cost. Single-loop use only
    (the asyncio server's event loop); no internal locking is needed.
    """

    def __init__(
        self,
        max_active: int,
        queue_limit: int = 0,
        queue_timeout: float = 5.0,
    ) -> None:
        if max_active < 1:
            raise ValueError("max_active must be >= 1")
        self._max_active = max_active
        self._queue_limit = max(0, queue_limit)
        self._queue_timeout = queue_timeout
        self._active = 0
        self._waiters: collections.deque[asyncio.Future] = (
            collections.deque()
        )
        self._closed = False
        # telemetry (mirrors AdmissionController)
        self.admitted_total = 0
        self.shed_total = 0
        self.peak_active = 0
        self.peak_waiting = 0

    @property
    def active(self) -> int:
        return self._active

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def close(self) -> None:
        """Refuse new admissions (shutdown); queued waiters are shed."""
        self._closed = True
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.set_exception(
                    ServerOverloadedError("server is shutting down")
                )

    async def admit(self) -> None:
        """Claim one active slot or raise :class:`ServerOverloadedError`."""
        if self._closed:
            self.shed_total += 1
            raise ServerOverloadedError("server is shutting down")
        if self._active < self._max_active and not self._waiters:
            self._active += 1
            self.admitted_total += 1
            self.peak_active = max(self.peak_active, self._active)
            return
        if len(self._waiters) >= self._queue_limit:
            self.shed_total += 1
            raise ServerOverloadedError(
                f"server at capacity ({self._max_active} active, "
                f"{len(self._waiters)} queued); retry later",
                retry_after=self._queue_timeout,
            )
        waiter = asyncio.get_running_loop().create_future()
        self._waiters.append(waiter)
        self.peak_waiting = max(self.peak_waiting, len(self._waiters))
        try:
            # wait_for cancels the waiter on timeout; if release() set a
            # result in that same instant, cancellation fails and the
            # grant is returned normally instead — no slot is leaked
            await asyncio.wait_for(waiter, self._queue_timeout)
        except asyncio.TimeoutError:
            try:
                self._waiters.remove(waiter)
            except ValueError:
                pass
            self.shed_total += 1
            raise ServerOverloadedError(
                "gave up waiting for a connection slot "
                f"after {self._queue_timeout:.1f}s",
                retry_after=self._queue_timeout,
            ) from None
        except ServerOverloadedError:
            self.shed_total += 1
            raise
        # a granted waiter's slot was transferred by release()
        self.admitted_total += 1
        self.peak_active = max(self.peak_active, self._active)

    def release(self) -> None:
        """Return one active slot; hands it to the next queued waiter."""
        if self._active <= 0:
            raise RuntimeError("release() without a matching admit()")
        self._active -= 1
        while self._waiters and self._active < self._max_active:
            waiter = self._waiters.popleft()
            if waiter.done():
                continue  # cancelled by its timeout
            self._active += 1
            waiter.set_result(None)

    def stats(self) -> dict[str, int]:
        return {
            "active": self._active,
            "waiting": len(self._waiters),
            "admitted_total": self.admitted_total,
            "shed_total": self.shed_total,
            "peak_active": self.peak_active,
            "peak_waiting": self.peak_waiting,
        }


__all__ = ["AdmissionController", "AsyncAdmissionController"]
