"""Blocking client: ``Connection`` speaks the wire protocol.

Usage mirrors the in-process API — the same
:class:`~repro.database.QueryResult` comes back, ACCESSED metadata
included, and server-side engine errors re-raise as the same
:mod:`repro.errors` classes::

    from repro.server.client import Connection

    with Connection("127.0.0.1", 7432, user_id="dr_house") as conn:
        result = conn.execute("SELECT * FROM patients WHERE age > 30")
        result.accessed   # {'audit_alice': frozenset({1})}

A ``Connection`` is one authenticated session: the handshake pins
``user_id`` server-side, so every audit-log row this connection causes
is attributed to it. One connection serves one thread at a time (a lock
serializes concurrent ``execute`` calls); open one connection per worker
thread for parallel load.
"""

from __future__ import annotations

import socket
import threading
import time

from repro.errors import (
    ConnectionClosedError,
    ProtocolError,
    ServerOverloadedError,
)
from repro.server import protocol


class Connection:
    """A blocking, authenticated connection to a :class:`~repro.server.Server`.

    ``retries`` opts into automatic reconnection when the server sheds
    the handshake with :class:`~repro.errors.ServerOverloadedError`: the
    client sleeps for the error's machine-readable ``retry_after`` hint
    (exponential backoff capped at ``max_backoff`` when the server sent
    none) and tries again, up to ``retries`` additional attempts. The
    default (``retries=0``) preserves fail-fast shedding.

    ``max_pipeline`` bounds how many :meth:`execute_many` frames may be
    in flight (sent but not yet answered) at once — both servers cap
    per-connection pipelining anyway, and an unbounded burst can
    deadlock against a server whose reply buffer fills while the client
    is still blocked in ``sendall``.
    """

    def __init__(
        self,
        host: str,
        port: int,
        user_id: str = "anonymous",
        password: str | None = None,
        connect_timeout: float = 10.0,
        response_timeout: float | None = None,
        retries: int = 0,
        max_backoff: float = 5.0,
        max_pipeline: int = 32,
    ) -> None:
        self.host = host
        self.port = port
        self.user_id = user_id
        self.max_pipeline = max(1, max_pipeline)
        self._lock = threading.Lock()
        self._closed = False
        self.session_id: int | None = None
        #: read-your-writes token from the last ``done`` frame (None
        #: until the server journals statements for replication)
        self.last_token: int | None = None
        attempt = 0
        while True:
            try:
                self._connect(
                    host, port, user_id, password,
                    connect_timeout, response_timeout,
                )
                return
            except ServerOverloadedError as error:
                if attempt >= retries:
                    raise
                hint = getattr(error, "retry_after", None)
                if isinstance(hint, (int, float)) and hint > 0:
                    delay = min(float(hint), max_backoff)
                else:
                    delay = min(0.05 * (2 ** attempt), max_backoff)
                attempt += 1
                time.sleep(delay)

    def _connect(
        self,
        host: str,
        port: int,
        user_id: str,
        password: str | None,
        connect_timeout: float,
        response_timeout: float | None,
    ) -> None:
        self._closed = False
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except OSError as error:
            raise ConnectionClosedError(
                f"cannot connect to {host}:{port}: {error}"
            ) from error
        self._sock.settimeout(response_timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            self._send(
                {
                    "type": "hello",
                    "protocol": protocol.PROTOCOL_VERSION,
                    "user": user_id,
                    "password": password,
                }
            )
            frame = self._recv()
            if frame.get("type") != "hello_ok":
                # typed rejections (AuthenticationError,
                # ServerOverloadedError, ...) re-raise as themselves
                self._dispatch_control(frame)
            self.session_id = frame.get("session")
        except BaseException:
            self._abort()
            raise

    # ------------------------------------------------------------------

    def execute(self, sql: str, parameters: dict[str, object] | None = None):
        """Run one statement; returns a :class:`~repro.database.QueryResult`.

        Engine failures raise the same :mod:`repro.errors` classes the
        in-process API raises (``AccessDeniedError``, ``SqlSyntaxError``,
        ``StatementTimeoutError``, ...).
        """
        message: dict = {"type": "execute", "sql": sql}
        if parameters:
            message["parameters"] = {
                name: protocol.encode_value(value)
                for name, value in parameters.items()
            }
        with self._lock:
            self._send(message)
            return self._read_result()

    def _read_result(self):
        """Read one statement's reply: rows* then done (or control)."""
        from repro.database import QueryResult

        rows: list[tuple] = []
        while True:
            frame = self._recv()
            kind = frame.get("type")
            if kind == "rows":
                rows.extend(
                    protocol.decode_row(row) for row in frame["rows"]
                )
            elif kind == "done":
                token = frame.get("token")
                if isinstance(token, int):
                    self.last_token = token
                return QueryResult(
                    columns=tuple(frame.get("columns", ())),
                    rows=rows,
                    accessed=protocol.decode_accessed(
                        frame.get("accessed", {})
                    ),
                    rowcount=frame.get("rowcount", len(rows)),
                )
            else:
                self._dispatch_control(frame)

    def execute_many(
        self,
        statements: list[str | tuple[str, dict | None]],
        raise_on_error: bool = True,
    ) -> list:
        """Pipeline a batch of statements: send all, then read all.

        One network round trip instead of ``len(statements)`` — the
        payoff of the server-side per-connection pipeline. Replies come
        back in statement order. A failing statement does not corrupt
        its neighbors: its slot holds the (typed) exception. With
        ``raise_on_error`` the first failure re-raises *after* the full
        reply stream is drained, so the connection stays usable.

        At most ``max_pipeline`` statements are in flight at a time:
        the first window is sent in one burst, then each drained reply
        tops the window back up. Blasting the whole batch before
        reading anything would deadlock once requests plus unread
        replies exceed the kernel socket buffers (the server blocks —
        or pauses, under the async front end's write high-water mark —
        writing replies the client is not reading, while the client
        blocks in ``sendall`` the server is not reading).
        """
        frames = []
        for statement in statements:
            if isinstance(statement, tuple):
                sql, parameters = statement
            else:
                sql, parameters = statement, None
            message: dict = {"type": "execute", "sql": sql}
            if parameters:
                message["parameters"] = {
                    name: protocol.encode_value(value)
                    for name, value in parameters.items()
                }
            frames.append(message)
        with self._lock:
            encoded = [
                protocol.frame_bytes(message) for message in frames
            ]
            if self._closed:
                raise ConnectionClosedError("connection is closed")
            outcomes: list = []
            sent = 0
            while len(outcomes) < len(encoded):
                window_end = min(
                    len(encoded), len(outcomes) + self.max_pipeline
                )
                if window_end > sent:
                    try:
                        self._sock.sendall(
                            b"".join(encoded[sent:window_end])
                        )
                    except OSError as error:
                        self._abort()
                        raise ConnectionClosedError(
                            f"send failed: {error}"
                        ) from error
                    sent = window_end
                try:
                    outcomes.append(self._read_result())
                except ConnectionClosedError:
                    raise  # the remaining replies are unrecoverable
                except Exception as error:  # noqa: BLE001 — typed engine error
                    outcomes.append(error)
        if raise_on_error:
            for outcome in outcomes:
                if isinstance(outcome, BaseException):
                    raise outcome
        return outcomes

    def forward_intent(
        self, accessed: dict, sql_text: str, user_id: str
    ) -> int | None:
        """Hand a replica-computed firing to the primary (DESIGN.md §13).

        Returns the journal seq of the intent record the primary wrote
        (None when the primary has no journal attached).
        """
        with self._lock:
            self._send({
                "type": "intent",
                "accessed": protocol.encode_accessed(accessed),
                "sql": sql_text,
                "user": user_id,
            })
            frame = self._recv()
            if frame.get("type") != "intent_ok":
                self._dispatch_control(frame)
            return frame.get("seq")

    def set_user(self, user_id: str, password: str | None = None) -> str:
        """Re-authenticate this connection as ``user_id``."""
        with self._lock:
            self._send(
                {"type": "set_user", "user": user_id, "password": password}
            )
            frame = self._recv()
            if frame.get("type") != "ok":
                self._dispatch_control(frame)
            self.user_id = frame["user"]
            return self.user_id

    def ping(self) -> bool:
        with self._lock:
            self._send({"type": "ping"})
            frame = self._recv()
            if frame.get("type") != "pong":
                self._dispatch_control(frame)
            return True

    def health(self) -> dict:
        """Server-side health: audit-trail damage + cluster breaker state.

        Returns ``{"audit_trail": {...}, "cluster": {...} | None}`` —
        the database's :meth:`~repro.database.Database.
        audit_trail_health` counters, and the ``cluster_health()``
        snapshot when the server fronts a cluster (``None`` otherwise).
        """
        with self._lock:
            self._send({"type": "health"})
            frame = self._recv()
            if frame.get("type") != "health":
                self._dispatch_control(frame)
            return {
                "audit_trail": frame.get("audit_trail", {}),
                "cluster": frame.get("cluster"),
            }

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Announce quit and close the socket (idempotent)."""
        with self._lock:
            if self._closed:
                return
            try:
                protocol.send_frame(self._sock, {"type": "quit"})
            except OSError:
                pass
            self._abort()

    def _abort(self) -> None:
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------

    def _send(self, message: dict) -> None:
        if self._closed:
            raise ConnectionClosedError("connection is closed")
        try:
            protocol.send_frame(self._sock, message)
        except OSError as error:
            self._abort()
            raise ConnectionClosedError(
                f"send failed: {error}"
            ) from error

    def _recv(self) -> dict:
        if self._closed:
            raise ConnectionClosedError("connection is closed")
        try:
            frame = protocol.recv_frame(self._sock)
        except socket.timeout as error:
            self._abort()
            raise ConnectionClosedError(
                "timed out waiting for a server response"
            ) from error
        except OSError as error:
            self._abort()
            raise ConnectionClosedError(
                f"receive failed: {error}"
            ) from error
        if frame is None:
            self._abort()
            raise ConnectionClosedError(
                "server closed the connection"
            )
        return frame

    def _dispatch_control(self, frame: dict) -> None:
        """Handle an error/goodbye frame arriving where data was expected."""
        kind = frame.get("type")
        if kind == "error":
            protocol.raise_error_frame(frame)
        if kind == "goodbye":
            self._abort()
            raise ConnectionClosedError(
                f"server closed the connection: {frame.get('reason')}"
            )
        raise ProtocolError(f"unexpected frame type {kind!r}")


def connect(
    host: str,
    port: int,
    user_id: str = "anonymous",
    password: str | None = None,
    **kwargs,
) -> Connection:
    """Convenience constructor mirroring :func:`repro.database.connect`."""
    return Connection(host, port, user_id=user_id, password=password, **kwargs)


__all__ = ["Connection", "connect"]
