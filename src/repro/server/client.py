"""Blocking client: ``Connection`` speaks the wire protocol.

Usage mirrors the in-process API — the same
:class:`~repro.database.QueryResult` comes back, ACCESSED metadata
included, and server-side engine errors re-raise as the same
:mod:`repro.errors` classes::

    from repro.server.client import Connection

    with Connection("127.0.0.1", 7432, user_id="dr_house") as conn:
        result = conn.execute("SELECT * FROM patients WHERE age > 30")
        result.accessed   # {'audit_alice': frozenset({1})}

A ``Connection`` is one authenticated session: the handshake pins
``user_id`` server-side, so every audit-log row this connection causes
is attributed to it. One connection serves one thread at a time (a lock
serializes concurrent ``execute`` calls); open one connection per worker
thread for parallel load.
"""

from __future__ import annotations

import socket
import threading

from repro.errors import ConnectionClosedError, ProtocolError
from repro.server import protocol


class Connection:
    """A blocking, authenticated connection to a :class:`~repro.server.Server`."""

    def __init__(
        self,
        host: str,
        port: int,
        user_id: str = "anonymous",
        password: str | None = None,
        connect_timeout: float = 10.0,
        response_timeout: float | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.user_id = user_id
        self._lock = threading.Lock()
        self._closed = False
        self.session_id: int | None = None
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except OSError as error:
            raise ConnectionClosedError(
                f"cannot connect to {host}:{port}: {error}"
            ) from error
        self._sock.settimeout(response_timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            self._send(
                {
                    "type": "hello",
                    "protocol": protocol.PROTOCOL_VERSION,
                    "user": user_id,
                    "password": password,
                }
            )
            frame = self._recv()
            if frame.get("type") != "hello_ok":
                # typed rejections (AuthenticationError,
                # ServerOverloadedError, ...) re-raise as themselves
                self._dispatch_control(frame)
            self.session_id = frame.get("session")
        except BaseException:
            self._abort()
            raise

    # ------------------------------------------------------------------

    def execute(self, sql: str, parameters: dict[str, object] | None = None):
        """Run one statement; returns a :class:`~repro.database.QueryResult`.

        Engine failures raise the same :mod:`repro.errors` classes the
        in-process API raises (``AccessDeniedError``, ``SqlSyntaxError``,
        ``StatementTimeoutError``, ...).
        """
        from repro.database import QueryResult

        message: dict = {"type": "execute", "sql": sql}
        if parameters:
            message["parameters"] = {
                name: protocol.encode_value(value)
                for name, value in parameters.items()
            }
        with self._lock:
            self._send(message)
            rows: list[tuple] = []
            while True:
                frame = self._recv()
                kind = frame.get("type")
                if kind == "rows":
                    rows.extend(
                        protocol.decode_row(row) for row in frame["rows"]
                    )
                elif kind == "done":
                    return QueryResult(
                        columns=tuple(frame.get("columns", ())),
                        rows=rows,
                        accessed=protocol.decode_accessed(
                            frame.get("accessed", {})
                        ),
                        rowcount=frame.get("rowcount", len(rows)),
                    )
                else:
                    self._dispatch_control(frame)

    def set_user(self, user_id: str, password: str | None = None) -> str:
        """Re-authenticate this connection as ``user_id``."""
        with self._lock:
            self._send(
                {"type": "set_user", "user": user_id, "password": password}
            )
            frame = self._recv()
            if frame.get("type") != "ok":
                self._dispatch_control(frame)
            self.user_id = frame["user"]
            return self.user_id

    def ping(self) -> bool:
        with self._lock:
            self._send({"type": "ping"})
            frame = self._recv()
            if frame.get("type") != "pong":
                self._dispatch_control(frame)
            return True

    def health(self) -> dict:
        """Server-side health: audit-trail damage + cluster breaker state.

        Returns ``{"audit_trail": {...}, "cluster": {...} | None}`` —
        the database's :meth:`~repro.database.Database.
        audit_trail_health` counters, and the ``cluster_health()``
        snapshot when the server fronts a cluster (``None`` otherwise).
        """
        with self._lock:
            self._send({"type": "health"})
            frame = self._recv()
            if frame.get("type") != "health":
                self._dispatch_control(frame)
            return {
                "audit_trail": frame.get("audit_trail", {}),
                "cluster": frame.get("cluster"),
            }

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Announce quit and close the socket (idempotent)."""
        with self._lock:
            if self._closed:
                return
            try:
                protocol.send_frame(self._sock, {"type": "quit"})
            except OSError:
                pass
            self._abort()

    def _abort(self) -> None:
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------

    def _send(self, message: dict) -> None:
        if self._closed:
            raise ConnectionClosedError("connection is closed")
        try:
            protocol.send_frame(self._sock, message)
        except OSError as error:
            self._abort()
            raise ConnectionClosedError(
                f"send failed: {error}"
            ) from error

    def _recv(self) -> dict:
        if self._closed:
            raise ConnectionClosedError("connection is closed")
        try:
            frame = protocol.recv_frame(self._sock)
        except socket.timeout as error:
            self._abort()
            raise ConnectionClosedError(
                "timed out waiting for a server response"
            ) from error
        except OSError as error:
            self._abort()
            raise ConnectionClosedError(
                f"receive failed: {error}"
            ) from error
        if frame is None:
            self._abort()
            raise ConnectionClosedError(
                "server closed the connection"
            )
        return frame

    def _dispatch_control(self, frame: dict) -> None:
        """Handle an error/goodbye frame arriving where data was expected."""
        kind = frame.get("type")
        if kind == "error":
            protocol.raise_error_frame(frame)
        if kind == "goodbye":
            self._abort()
            raise ConnectionClosedError(
                f"server closed the connection: {frame.get('reason')}"
            )
        raise ProtocolError(f"unexpected frame type {kind!r}")


def connect(
    host: str,
    port: int,
    user_id: str = "anonymous",
    password: str | None = None,
    **kwargs,
) -> Connection:
    """Convenience constructor mirroring :func:`repro.database.connect`."""
    return Connection(host, port, user_id=user_id, password=password, **kwargs)


__all__ = ["Connection", "connect"]
