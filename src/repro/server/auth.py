"""Authenticated per-connection sessions.

The audit log's whole value is *attribution*: ``user_id()`` in a trigger
action must name the human who ran the query, which is only trustworthy
if identity is established at the database boundary (the handshake), not
claimed per-statement by the embedding process. The server therefore
authenticates once per connection (and on explicit ``set_user``
re-authentication) and pins the resulting ``user_id`` into every
statement via the thread-local ``Session.override`` API.

Two authenticators ship:

* :class:`OpenAuthenticator` — any non-empty user name is accepted
  (development default; identity is still per-connection, just
  unverified);
* :class:`StaticAuthenticator` — a fixed user → password map, constant
  -time comparison, unknown users rejected.
"""

from __future__ import annotations

import hmac
import itertools
import threading
import time
from dataclasses import dataclass, field

from repro.errors import AuthenticationError

_SESSION_IDS = itertools.count(1)


class Authenticator:
    """Base contract: :meth:`authenticate` returns the canonical user id
    or raises :class:`AuthenticationError`."""

    def authenticate(self, user: str, password: str | None) -> str:
        raise NotImplementedError


class OpenAuthenticator(Authenticator):
    """Accept any non-empty user name (no password check)."""

    def authenticate(self, user: str, password: str | None) -> str:
        if not user or not isinstance(user, str):
            raise AuthenticationError("a non-empty user name is required")
        return user


class StaticAuthenticator(Authenticator):
    """A fixed user → password table."""

    def __init__(self, credentials: dict[str, str]) -> None:
        self._credentials = dict(credentials)

    def authenticate(self, user: str, password: str | None) -> str:
        expected = self._credentials.get(user)
        if expected is None:
            raise AuthenticationError(f"unknown user {user!r}")
        if not hmac.compare_digest(expected, password or ""):
            raise AuthenticationError(f"bad password for user {user!r}")
        return user


@dataclass
class ClientSession:
    """One connection's server-side state."""

    user_id: str
    peer: str = ""
    session_id: int = field(default_factory=lambda: next(_SESSION_IDS))
    started_at: float = field(default_factory=time.monotonic)
    #: monotonic timestamp of the last frame received (idle reaping)
    last_activity: float = field(default_factory=time.monotonic)
    statements: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def touch(self) -> None:
        with self._lock:
            self.last_activity = time.monotonic()

    def idle_for(self, now: float | None = None) -> float:
        with self._lock:
            return (now or time.monotonic()) - self.last_activity


__all__ = [
    "Authenticator",
    "OpenAuthenticator",
    "StaticAuthenticator",
    "ClientSession",
]
