"""The asyncio front end: thousands of connections, a bounded thread pool.

Same wire protocol, same engine, different concurrency shape
(DESIGN.md §13)::

    event loop (1 thread) ──► AsyncAdmissionController
      per connection: reader coroutine ──► bounded frame queue
                      consumer coroutine ◄─┘   (pipelining, in order)
                           │ run_in_executor (bounded worker pool)
                           ▼
              DrainGate ▸ Session.override ▸ Database.execute

Where :class:`~repro.server.server.Server` spends a thread per
connection, here an idle connection costs a file descriptor and two
coroutines; only *executing* statements occupy one of ``workers``
threads. That changes what the front end can offer:

* **statement pipelining** — a client may send N ``execute`` frames
  before reading any reply; the per-connection consumer preserves reply
  order, and consecutive pipelined statements are bridged to the worker
  pool in one hop, amortizing the executor round-trip;
* **backpressure-aware streaming** — ``rows`` frames go through
  ``drain()`` against a write-buffer high-water mark, so a slow reader
  pauses its own statement stream (queue fills, reader coroutine stops
  reading) instead of ballooning server memory;
* **admission at coroutine cost** — the same two-stage shed policy as
  the threaded server, but queued waiters are futures, not threads.

The replication frames land here too: ``subscribe`` turns a connection
into a journal stream (a :class:`~repro.durability.JournalCursor` tails
the primary's segments), and ``intent`` lets a replica hand a firing
back to the primary (:meth:`~repro.database.Database.
apply_forwarded_intent`). Graceful shutdown keeps the threaded server's
durability ordering: stop accepting → close the gate and drain in-flight
statements → drain the trigger pipeline → goodbye connections → close
the database.
"""

from __future__ import annotations

import asyncio
import collections
import concurrent.futures
import socket
import threading
from typing import TYPE_CHECKING

from repro.concurrency import DrainGate, GateClosedError
from repro.durability.journal import JournalCursor
from repro.errors import (
    AuthenticationError,
    ConnectionClosedError,
    DurabilityError,
    ProtocolError,
    ReproError,
    ServerError,
    ServerOverloadedError,
    ServerShutdownError,
    StatementTimeoutError,
)
from repro.server import protocol
from repro.server.admission import AsyncAdmissionController
from repro.server.auth import (
    Authenticator,
    ClientSession,
    OpenAuthenticator,
)
from repro.server.server import (
    DEFAULT_BATCH_ROWS,
    DEFAULT_HEARTBEAT_INTERVAL,
)

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.database import Database, QueryResult

#: default connection cap — connections are cheap here, so the default
#: is two orders of magnitude above the threaded server's
DEFAULT_ASYNC_CONNECTIONS = 2048
DEFAULT_ASYNC_ADMISSION_QUEUE = 128

#: execute frames a connection may have in flight before its reader
#: coroutine stops reading (per-connection pipeline depth)
DEFAULT_MAX_PIPELINE = 32

#: bounded worker pool bridging onto the threaded engine — the knob that
#: decouples thread count from connection count
DEFAULT_WORKERS = 8

#: consecutive pipelined execute frames bridged to the pool in one hop
DEFAULT_EXEC_BATCH = 16

#: transport write-buffer high-water mark: past this, ``drain()`` blocks
#: and the connection's streaming (and reading) pauses
DEFAULT_WRITE_HIGH_WATER = 256 * 1024

#: journal-subscription tail poll interval while the stream is idle
DEFAULT_SUBSCRIBE_POLL = 0.02


class _AsyncConnection:
    """Per-connection state shared by the reader/consumer coroutines."""

    __slots__ = (
        "reader", "writer", "session", "closed_event",
        "peer_done", "dead", "subscribed",
    )

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        session: ClientSession,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.session = session
        #: set when the peer is gone or shutdown wants the stream ended
        self.closed_event = asyncio.Event()
        self.peer_done = False
        #: the socket died mid-reply: discard queued frames, stop writing
        self.dead = False
        #: journal subscribers idle by design; exempt from reaping
        self.subscribed = False


class AsyncServer:
    """An asyncio TCP front end over one :class:`~repro.database.Database`.

    Drop-in peer of the threaded :class:`~repro.server.server.Server`:
    same protocol, same blocking :class:`~repro.server.client.Connection`
    client, same shutdown contract. ``start()``/``shutdown()`` are
    synchronous — the event loop runs on a background thread, so the
    server embeds anywhere the threaded one does.
    """

    def __init__(
        self,
        database: "Database",
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_connections: int = DEFAULT_ASYNC_CONNECTIONS,
        admission_queue: int = DEFAULT_ASYNC_ADMISSION_QUEUE,
        admission_timeout: float = 5.0,
        statement_timeout: float | None = None,
        idle_timeout: float | None = None,
        reap_interval: float = 0.25,
        handshake_timeout: float = 5.0,
        batch_rows: int = DEFAULT_BATCH_ROWS,
        max_pipeline: int = DEFAULT_MAX_PIPELINE,
        workers: int = DEFAULT_WORKERS,
        exec_batch: int = DEFAULT_EXEC_BATCH,
        write_high_water: int = DEFAULT_WRITE_HIGH_WATER,
        subscribe_poll_interval: float = DEFAULT_SUBSCRIBE_POLL,
        authenticator: Authenticator | None = None,
        close_database: bool = True,
    ) -> None:
        self.database = database
        self.host = host
        self.port = port
        self.statement_timeout = statement_timeout
        self.idle_timeout = idle_timeout
        self.batch_rows = max(1, batch_rows)
        self.max_pipeline = max(1, max_pipeline)
        self.workers = max(1, workers)
        # a statement timeout needs one wait_for per statement, so the
        # one-hop batching of consecutive executes is disabled with it
        self.exec_batch = 1 if statement_timeout is not None \
            else max(1, exec_batch)
        self.write_high_water = max(1, write_high_water)
        self.authenticator = authenticator or OpenAuthenticator()
        self._close_database = close_database
        self._handshake_timeout = handshake_timeout
        self._reap_interval = reap_interval
        self._subscribe_poll = subscribe_poll_interval
        self._heartbeat_interval = DEFAULT_HEARTBEAT_INTERVAL
        self.admission = AsyncAdmissionController(
            max_connections,
            queue_limit=admission_queue,
            queue_timeout=admission_timeout,
        )
        #: in-flight statement accounting; closed+drained by shutdown
        self.gate = DrainGate()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="repro-aworker",
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._asyncio_server: asyncio.base_events.Server | None = None
        self._stop_event: asyncio.Event | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._connections: dict[asyncio.StreamWriter, _AsyncConnection] = {}
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._stopping = False
        self._stopped = threading.Event()
        self._shutdown_lock = threading.Lock()
        self._started = False
        # telemetry
        self.statements_total = 0
        self.timeouts_total = 0
        self.reaped_total = 0
        self.subscriptions_total = 0
        self.intents_forwarded_total = 0
        #: pipelined execute frames bridged in multi-statement hops
        self.batched_statements_total = 0

    # ------------------------------------------------------------------
    # lifecycle (synchronous surface, threaded-server parity)

    def start(self) -> "AsyncServer":
        """Spawn the event-loop thread; returns once the port is bound."""
        if self._started:
            raise ServerError("server already started")
        self._started = True
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-aserver", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            error = self._startup_error
            self._startup_error = None
            raise error
        return self

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def __enter__(self) -> "AsyncServer":
        if not self._started:
            self.start()
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        self.shutdown()
        return False

    def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes (signal-handler friendly)."""
        if not self._started:
            self.start()
        self._stopped.wait()

    def shutdown(self, timeout: float | None = 30.0) -> dict:
        """Audited graceful shutdown; same ordering as the threaded server.

        (1) stop accepting and shed queued admissions, (2) refuse new
        statements, (3) drain in-flight statements, (4) drain the async
        trigger pipeline, (5) goodbye + close connections, (6) close the
        database (pipeline, then journal).
        """
        with self._shutdown_lock:
            if self._stopped.is_set():
                return self._shutdown_stats(drained=True)
            self._stopping = True
            loop = self._loop
            if loop is not None and loop.is_running():
                loop.call_soon_threadsafe(self._stop_accepting)
            self.gate.close()
            drained = self.gate.drain(timeout)
            self.database.drain_triggers()
            if loop is not None and loop.is_running():
                loop.call_soon_threadsafe(self._finalize_connections)
            thread = self._thread
            if thread is not None and thread is not threading.current_thread():
                thread.join(timeout=10.0)
            self._executor.shutdown(wait=False)
            if self._close_database:
                self.database.close()
            self._stopped.set()
            return self._shutdown_stats(drained=drained)

    def _shutdown_stats(self, drained: bool) -> dict:
        return {
            "drained": drained,
            "statements_total": self.statements_total,
            "timeouts_total": self.timeouts_total,
            "reaped_total": self.reaped_total,
            "admission": self.admission.stats(),
        }

    def stats(self) -> dict:
        """Live serving counters (tests and operators)."""
        return {
            "connections": len(self._connections),
            "in_flight": self.gate.active,
            "workers": self.workers,
            "statements_total": self.statements_total,
            "timeouts_total": self.timeouts_total,
            "reaped_total": self.reaped_total,
            "subscriptions_total": self.subscriptions_total,
            "intents_forwarded_total": self.intents_forwarded_total,
            "batched_statements_total": self.batched_statements_total,
            "admission": self.admission.stats(),
        }

    # ------------------------------------------------------------------
    # event-loop thread

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as error:  # noqa: BLE001 — surfaced via start()
            self._startup_error = self._startup_error or error
        finally:
            self._ready.set()
            self._stopped.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._client_connected, self.host, self.port, backlog=512
            )
        except OSError as error:
            self._startup_error = ServerError(
                f"cannot bind {self.host}:{self.port}: {error}"
            )
            return
        self._asyncio_server = server
        self.port = server.sockets[0].getsockname()[1]
        reaper: asyncio.Task | None = None
        if self.idle_timeout is not None:
            reaper = asyncio.create_task(self._reap_loop())
        self._ready.set()
        await self._stop_event.wait()
        if reaper is not None:
            reaper.cancel()
        server.close()
        if self._conn_tasks:
            # connections got EOF/goodbye in _finalize_connections; give
            # their coroutines a moment to unwind, then cancel stragglers
            await asyncio.wait(list(self._conn_tasks), timeout=5.0)
        for task in list(self._conn_tasks):
            task.cancel()
        try:
            await server.wait_closed()
        except Exception:  # noqa: BLE001 — best-effort teardown
            pass

    def _stop_accepting(self) -> None:
        """Loop-thread half of shutdown step (1)."""
        self.admission.close()
        if self._asyncio_server is not None:
            self._asyncio_server.close()

    def _finalize_connections(self) -> None:
        """Loop-thread half of shutdown step (5)."""
        for conn in list(self._connections.values()):
            try:
                conn.writer.write(protocol.frame_bytes(
                    {"type": "goodbye", "reason": "server shutdown"}
                ))
            except Exception:  # noqa: BLE001 — peer may be gone
                pass
            conn.peer_done = True
            conn.closed_event.set()
            try:
                conn.writer.close()
            except Exception:  # noqa: BLE001
                pass
        if self._stop_event is not None:
            self._stop_event.set()

    async def _reap_loop(self) -> None:
        assert self.idle_timeout is not None
        while not self._stopping:
            await asyncio.sleep(self._reap_interval)
            for conn in list(self._connections.values()):
                if conn.subscribed or conn.peer_done:
                    continue
                if conn.session.idle_for() > self.idle_timeout:
                    self.reaped_total += 1
                    try:
                        conn.writer.write(protocol.frame_bytes(
                            {"type": "goodbye", "reason": "idle timeout"}
                        ))
                    except Exception:  # noqa: BLE001
                        pass
                    conn.peer_done = True
                    conn.closed_event.set()
                    try:
                        conn.writer.close()
                    except Exception:  # noqa: BLE001
                        pass

    # ------------------------------------------------------------------
    # per-connection coroutines

    async def _client_connected(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._stopping:
            writer.close()
            return
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        sock = writer.get_extra_info("socket")
        if sock is not None:
            # Nagle vs delayed-ACK stalls small reply frames, same as in
            # the threaded server
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        writer.transport.set_write_buffer_limits(high=self.write_high_water)
        conn: _AsyncConnection | None = None
        try:
            try:
                await self.admission.admit()
            except ServerOverloadedError as error:
                await self._write_best_effort(
                    writer, protocol.error_frame(error)
                )
                return
            try:
                session = await self._handshake(reader, writer)
                if session is None:
                    return
                conn = _AsyncConnection(reader, writer, session)
                self._connections[writer] = conn
                queue: asyncio.Queue = asyncio.Queue(
                    maxsize=self.max_pipeline
                )
                consumer = asyncio.create_task(self._consume(conn, queue))
                try:
                    await self._read_loop(conn, queue)
                finally:
                    await consumer
            finally:
                self.admission.release()
        except asyncio.CancelledError:
            pass  # shutdown teardown cancelled a straggler
        except (ConnectionClosedError, ConnectionResetError,
                BrokenPipeError, OSError):
            pass  # peer vanished; nothing to tell it
        except ProtocolError as error:
            await self._write_best_effort(writer, protocol.error_frame(error))
        finally:
            if conn is not None:
                self._connections.pop(writer, None)
            try:
                writer.close()
            except Exception:  # noqa: BLE001
                pass

    async def _handshake(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> ClientSession | None:
        try:
            frame = await asyncio.wait_for(
                protocol.read_frame_async(reader), self._handshake_timeout
            )
        except asyncio.TimeoutError:
            await self._write_best_effort(
                writer,
                protocol.error_frame(
                    ProtocolError("handshake timed out waiting for hello")
                ),
            )
            return None
        if frame is None:
            return None
        if frame.get("type") != "hello":
            raise ProtocolError(
                f"expected a hello frame, got {frame.get('type')!r}"
            )
        if frame.get("protocol") != protocol.PROTOCOL_VERSION:
            raise ProtocolError(
                f"unsupported protocol version {frame.get('protocol')!r} "
                f"(server speaks {protocol.PROTOCOL_VERSION})"
            )
        try:
            user = self.authenticator.authenticate(
                frame.get("user", ""), frame.get("password")
            )
        except AuthenticationError as error:
            await self._write_best_effort(writer, protocol.error_frame(error))
            return None
        peer = writer.get_extra_info("peername") or ("?", 0)
        session = ClientSession(user_id=user, peer=f"{peer[0]}:{peer[1]}")
        writer.write(protocol.frame_bytes({
            "type": "hello_ok",
            "server": "repro",
            "protocol": protocol.PROTOCOL_VERSION,
            "session": session.session_id,
        }))
        await writer.drain()
        return session

    async def _read_loop(
        self, conn: _AsyncConnection, queue: asyncio.Queue
    ) -> None:
        try:
            while True:
                # backpressure: a write buffer past the high-water mark
                # pauses this connection's reads until the peer catches
                # up — pipelined statements cannot outrun their replies
                await conn.writer.drain()
                frame = await protocol.read_frame_async(conn.reader)
                if frame is None:
                    break
                conn.session.touch()
                await queue.put(frame)
                if frame.get("type") == "quit":
                    break
        finally:
            conn.closed_event.set()
            await queue.put(None)

    async def _consume(
        self, conn: _AsyncConnection, queue: asyncio.Queue
    ) -> None:
        """Single consumer per connection: replies stay in request order."""
        pending: collections.deque = collections.deque()
        while True:
            item = pending.popleft() if pending else await queue.get()
            if item is None:
                return
            if conn.dead:
                continue  # discard: the peer is gone mid-reply
            try:
                await self._dispatch(conn, queue, pending, item)
            except (ConnectionClosedError, ConnectionResetError,
                    BrokenPipeError, OSError):
                conn.dead = True
                conn.closed_event.set()
            except ProtocolError as error:
                try:
                    await self._send(conn, protocol.error_frame(error))
                except Exception:  # noqa: BLE001
                    conn.dead = True
                    conn.closed_event.set()

    async def _dispatch(
        self,
        conn: _AsyncConnection,
        queue: asyncio.Queue,
        pending: collections.deque,
        frame: dict,
    ) -> None:
        kind = frame.get("type")
        if kind == "execute":
            batch = [frame]
            # greedy pipelining: bridge consecutive queued executes to
            # the worker pool in one hop (order preserved; a non-execute
            # frame ends the run and is handled next)
            while len(batch) < self.exec_batch:
                try:
                    nxt = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if isinstance(nxt, dict) and nxt.get("type") == "execute":
                    batch.append(nxt)
                else:
                    pending.append(nxt)
                    break
            await self._handle_executes(conn, batch)
            conn.session.touch()
        elif kind == "set_user":
            await self._handle_set_user(conn, frame)
        elif kind == "health":
            await self._handle_health(conn)
        elif kind == "ping":
            await self._send(conn, {"type": "pong"})
        elif kind == "intent":
            await self._handle_intent(conn, frame)
        elif kind == "subscribe":
            await self._stream_journal(conn, frame)
        elif kind == "quit":
            await self._send(
                conn, {"type": "goodbye", "reason": "client quit"}
            )
            conn.peer_done = True
        else:
            await self._send(
                conn,
                protocol.error_frame(
                    ProtocolError(f"unknown frame type {kind!r}")
                ),
            )

    # ------------------------------------------------------------------
    # statements

    async def _handle_executes(
        self, conn: _AsyncConnection, frames: list[dict]
    ) -> None:
        prepared: list[tuple | BaseException] = []
        for frame in frames:
            sql = frame.get("sql")
            if not isinstance(sql, str) or not sql.strip():
                prepared.append(
                    ProtocolError("execute frame carries no sql")
                )
                continue
            raw_parameters = frame.get("parameters") or None
            parameters = None
            if raw_parameters is not None:
                try:
                    parameters = {
                        name: protocol.decode_value(value)
                        for name, value in raw_parameters.items()
                    }
                except ReproError as error:
                    prepared.append(error)
                    continue
            prepared.append((sql, parameters))
        work = [item for item in prepared if isinstance(item, tuple)]
        results: list = []
        if work:
            if len(work) > 1:
                self.batched_statements_total += len(work)
            loop = asyncio.get_running_loop()
            future = loop.run_in_executor(
                self._executor, self._run_batch, conn.session, work
            )
            if self.statement_timeout is not None:
                # exec_batch is 1 in timeout mode: one wait per statement
                try:
                    results = await asyncio.wait_for(
                        asyncio.shield(future), self.statement_timeout
                    )
                except asyncio.TimeoutError:
                    # not killed (no safe preemption): the statement
                    # finishes in the background and its audit firings
                    # land — a timeout withholds results, never evidence
                    self.timeouts_total += 1
                    results = [
                        StatementTimeoutError(
                            "statement exceeded "
                            f"{self.statement_timeout:.3f}s (it completes "
                            "in the background; its audit records are "
                            "preserved)"
                        )
                    ]
            else:
                results = await future
        cursor = 0
        for item in prepared:
            if isinstance(item, BaseException):
                await self._send(conn, protocol.error_frame(item))
                continue
            outcome = results[cursor]
            cursor += 1
            if isinstance(outcome, GateClosedError):
                await self._send(
                    conn,
                    protocol.error_frame(
                        ServerShutdownError(
                            "server is draining for shutdown; "
                            "statement refused"
                        )
                    ),
                )
            elif isinstance(outcome, BaseException):
                await self._send(conn, protocol.error_frame(outcome))
            else:
                self.statements_total += 1
                await self._stream_result(conn, outcome)

    def _run_batch(
        self,
        session: ClientSession,
        items: list[tuple[str, dict | None]],
    ) -> list:
        """Worker-pool body: run a pipelined run of statements in order.

        Per-statement failures become list entries, not raises — the
        consumer maps each back to an ``error`` frame so one bad
        statement never corrupts the framing of its pipeline neighbors.
        """
        outcomes: list = []
        for sql, parameters in items:
            try:
                with self.gate.entered():
                    session.statements += 1
                    # pins this worker thread's identity to the
                    # connection for the statement's duration, so the
                    # shared engine attributes per-connection
                    with self.database.session.override(
                        sql, session.user_id
                    ):
                        outcomes.append(
                            self.database.execute(sql, parameters)
                        )
            except BaseException as error:  # noqa: BLE001 — typed frame
                outcomes.append(error)
        return outcomes

    async def _stream_result(
        self, conn: _AsyncConnection, result: "QueryResult"
    ) -> None:
        rows = result.rows
        for start in range(0, len(rows), self.batch_rows):
            await self._send(conn, {
                "type": "rows",
                "rows": [
                    protocol.encode_row(row)
                    for row in rows[start:start + self.batch_rows]
                ],
            })
        done = {
            "type": "done",
            "columns": list(result.columns),
            "rowcount": result.rowcount,
            "accessed": protocol.encode_accessed(result.accessed),
        }
        if getattr(self.database, "replicate_statements", False):
            token = self.database.replication_token()
            if token is not None:
                done["token"] = token
        await self._send(conn, done)

    # ------------------------------------------------------------------
    # control frames

    async def _handle_set_user(
        self, conn: _AsyncConnection, frame: dict
    ) -> None:
        try:
            user = self.authenticator.authenticate(
                frame.get("user", ""), frame.get("password")
            )
        except AuthenticationError as error:
            await self._send(conn, protocol.error_frame(error))
            return
        conn.session.user_id = user
        await self._send(conn, {"type": "ok", "user": user})

    async def _handle_health(self, conn: _AsyncConnection) -> None:
        cluster_health = getattr(self.database, "cluster_health", None)
        await self._send(conn, {
            "type": "health",
            "audit_trail": self.database.audit_trail_health(),
            "cluster": (
                cluster_health() if callable(cluster_health) else None
            ),
        })

    # ------------------------------------------------------------------
    # replication frames (DESIGN.md §13)

    async def _handle_intent(
        self, conn: _AsyncConnection, frame: dict
    ) -> None:
        """A replica hands a firing to this (primary) server."""
        try:
            accessed = protocol.decode_accessed(frame.get("accessed") or {})
        except ReproError as error:
            await self._send(conn, protocol.error_frame(error))
            return
        sql_text = frame.get("sql", "")
        user_id = frame.get("user", "")

        def body() -> int | None:
            with self.gate.entered():
                return self.database.apply_forwarded_intent(
                    accessed, sql_text, user_id
                )

        loop = asyncio.get_running_loop()
        try:
            seq = await loop.run_in_executor(self._executor, body)
        except GateClosedError:
            await self._send(
                conn,
                protocol.error_frame(
                    ServerShutdownError(
                        "server is draining for shutdown; intent refused"
                    )
                ),
            )
            return
        except Exception as error:  # noqa: BLE001 — typed frame
            await self._send(conn, protocol.error_frame(error))
            return
        self.intents_forwarded_total += 1
        await self._send(conn, {"type": "intent_ok", "seq": seq})

    async def _stream_journal(
        self, conn: _AsyncConnection, frame: dict
    ) -> None:
        """Turn this connection into a one-way journal stream."""
        journal = getattr(self.database, "journal", None)
        if journal is None:
            await self._send(
                conn,
                protocol.error_frame(
                    DurabilityError(
                        "no audit journal attached; nothing to stream"
                    )
                ),
            )
            return
        try:
            from_seq = int(frame.get("from_seq") or 0)
        except (TypeError, ValueError):
            await self._send(
                conn,
                protocol.error_frame(
                    ProtocolError("subscribe from_seq is not an integer")
                ),
            )
            return
        conn.subscribed = True
        self.subscriptions_total += 1
        await self._send(
            conn, {"type": "subscribe_ok", "next_seq": journal.next_seq}
        )
        cursor = JournalCursor(journal.path, from_seq=from_seq)
        loop = asyncio.get_running_loop()
        last_beat = loop.time()
        while not (
            self._stopping
            or conn.peer_done
            or conn.closed_event.is_set()
            or conn.writer.is_closing()
        ):
            records = await loop.run_in_executor(
                self._executor, cursor.poll
            )
            if records:
                await self._send(conn, {
                    "type": "journal",
                    "records": [
                        {"seq": r.seq, "kind": r.kind, "data": r.data}
                        for r in records
                    ],
                    "primary_seq": journal.next_seq,
                })
                last_beat = loop.time()
                continue
            if loop.time() - last_beat >= self._heartbeat_interval:
                # idle heartbeat keeps the replica's lag metric honest
                await self._send(conn, {
                    "type": "journal",
                    "records": [],
                    "primary_seq": journal.next_seq,
                })
                last_beat = loop.time()
            try:
                await asyncio.wait_for(
                    conn.closed_event.wait(), self._subscribe_poll
                )
            except asyncio.TimeoutError:
                pass
            else:
                break  # subscriber disconnected: stop tailing

    # ------------------------------------------------------------------
    # write helpers

    async def _send(self, conn: _AsyncConnection, frame: dict) -> None:
        if conn.writer.is_closing():
            raise ConnectionClosedError("client connection closed")
        conn.writer.write(protocol.frame_bytes(frame))
        await conn.writer.drain()

    async def _write_best_effort(
        self, writer: asyncio.StreamWriter, frame: dict
    ) -> None:
        try:
            writer.write(protocol.frame_bytes(frame))
            await writer.drain()
        except Exception:  # noqa: BLE001 — the peer may already be gone
            pass


__all__ = [
    "AsyncServer",
    "DEFAULT_ASYNC_CONNECTIONS",
    "DEFAULT_MAX_PIPELINE",
    "DEFAULT_WORKERS",
    "DEFAULT_WRITE_HIGH_WATER",
]
