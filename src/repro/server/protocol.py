"""The wire protocol: length-prefixed JSON frames.

Every message on the socket is one *frame*: a 4-byte big-endian length
followed by that many bytes of UTF-8 compact JSON encoding a single
object with a ``type`` key. Length-prefixing (rather than line framing)
keeps SQL text and string values unescaped-newline-safe; JSON keeps the
journal, the protocol, and the tests mutually greppable.

Client → server frame types::

    {"type": "hello", "protocol": 1, "user": ..., "password": ...}
    {"type": "execute", "sql": ..., "parameters": {...}?}
    {"type": "set_user", "user": ..., "password": ...}
    {"type": "health"}
    {"type": "ping"}
    {"type": "quit"}
    {"type": "subscribe", "from_seq": N}             # journal stream
    {"type": "intent", "accessed": {expr: [ids]},
     "sql": ..., "user": ...}                        # replica firing

Server → client::

    {"type": "hello_ok", "server": ..., "protocol": 1, "session": ...}
    {"type": "rows", "rows": [[...], ...]}          # 1 per batch
    {"type": "done", "columns": [...], "rowcount": N,
     "accessed": {expr: [ids]}, "token": <seq>?}
    {"type": "ok", ...}                              # set_user ack
    {"type": "health", "audit_trail": {...}, "cluster": {...} | null}
    {"type": "pong"}
    {"type": "error", "code": <exception class name>, "message": ...,
     "retry_after": <seconds>?}
    {"type": "goodbye", "reason": ...}
    {"type": "subscribe_ok", "next_seq": N}
    {"type": "journal", "records": [{"seq": ..., "kind": ...,
     "data": {...}}, ...], "primary_seq": N}         # stream batches
    {"type": "intent_ok", "seq": N | null}

The replication frames (DESIGN.md §13): ``subscribe`` switches a
connection into a one-way journal stream — the server replies
``subscribe_ok`` then pushes ``journal`` frames (record payloads are the
journal's own encoded form, IDs tagged via :func:`encode_id`) with
``primary_seq`` carrying the primary's current append position so
replicas can report lag. ``intent`` is the reverse direction: a replica
ships a locally-computed ACCESSED set to the primary, which journals and
fires it under the original attribution and acks with ``intent_ok``.
``token`` on ``done`` frames is the read-your-writes token
(:meth:`~repro.database.Database.replication_token`), present only when
the server journals statements for replication.

``health`` reports the database's audit-trail damage counters
(:meth:`~repro.database.Database.audit_trail_health`) and — when the
server fronts a :class:`~repro.cluster.ClusterDatabase` — the cluster's
fault-tolerance snapshot (``cluster_health()``: per-shard breaker
states, degraded-read / retry / timeout counters); ``cluster`` is null
on a single-node server. ``retry_after`` appears on error frames whose
exception carries a machine-readable backoff hint (admission shedding),
and the client re-raises it on the reconstructed exception.

A statement's response is zero or more ``rows`` frames terminated by
exactly one ``done`` or ``error`` frame, so a client can stream large
results without buffering the whole set. Values ride the wire through
the same typed codec the audit journal uses
(:func:`repro.durability.journal.encode_id`), so dates, datetimes,
Decimals, and composite keys round-trip exactly; SQL ``INTERVAL`` values
get their own tag here. Error frames carry the *name* of the
:mod:`repro.errors` class that was raised server-side; the client
re-raises the same class, so ``except AccessDeniedError:`` works
identically in-process and over the network.
"""

from __future__ import annotations

import json
import socket
import struct

from repro import errors as _errors
from repro.datatypes.intervals import Interval
from repro.durability.journal import ID_TAG, decode_id, encode_id
from repro.errors import (
    ConnectionClosedError,
    DurabilityError,
    ProtocolError,
    ReproError,
)

PROTOCOL_VERSION = 1

#: refuse frames larger than this (a corrupt length prefix must not
#: allocate gigabytes)
MAX_FRAME_BYTES = 32 << 20

_LENGTH = struct.Struct(">I")


# ----------------------------------------------------------------------
# value codec

def encode_value(value: object) -> object:
    """JSON-safe encoding of one SQL value, round-trippable.

    Delegates to the journal's partition-ID codec and adds the one
    engine value type the journal never sees (``INTERVAL``). Raises
    :class:`ProtocolError` on a value that cannot ride the wire
    losslessly.
    """
    if isinstance(value, Interval):
        return {ID_TAG: "interval", "v": [value.count, value.unit]}
    try:
        return encode_id(value)
    except DurabilityError as error:
        raise ProtocolError(str(error)) from error


def decode_value(value: object) -> object:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict) and value.get(ID_TAG) == "interval":
        count, unit = value["v"]
        return Interval(count, unit)
    return decode_id(value)


def encode_row(row: tuple) -> list:
    return [encode_value(value) for value in row]


def decode_row(row: list) -> tuple:
    return tuple(decode_value(value) for value in row)


def encode_accessed(accessed: dict) -> dict:
    return {
        name: [encode_value(value) for value in sorted(ids, key=repr)]
        for name, ids in accessed.items()
    }


def decode_accessed(accessed: dict) -> dict:
    return {
        name: frozenset(decode_value(value) for value in ids)
        for name, ids in accessed.items()
    }


# ----------------------------------------------------------------------
# error codec

def _error_registry() -> dict[str, type]:
    """Name → class for every engine exception (ReproError subclasses)."""
    registry: dict[str, type] = {}
    for name in dir(_errors):
        candidate = getattr(_errors, name)
        if isinstance(candidate, type) and issubclass(candidate, ReproError):
            registry[name] = candidate
    return registry


ERROR_TYPES = _error_registry()


def error_frame(error: BaseException) -> dict:
    """The wire form of one server-side failure."""
    code = type(error).__name__
    if code not in ERROR_TYPES:
        # engine internals (KeyError, AssertionError, ...) must not leak
        # their types into the protocol contract
        code = "ExecutionError"
    frame = {"type": "error", "code": code, "message": str(error)}
    retry_after = getattr(error, "retry_after", None)
    if isinstance(retry_after, (int, float)):
        frame["retry_after"] = float(retry_after)
    return frame


def raise_error_frame(frame: dict) -> None:
    """Re-raise the engine exception an ``error`` frame describes."""
    exc_type = ERROR_TYPES.get(frame.get("code", ""), ReproError)
    error = exc_type(frame.get("message", "server error"))
    retry_after = frame.get("retry_after")
    if isinstance(retry_after, (int, float)):
        # reattach the backoff hint so remote except-clauses can read
        # ``error.retry_after`` exactly like in-process ones
        error.retry_after = float(retry_after)
    raise error


# ----------------------------------------------------------------------
# framing

def frame_bytes(message: dict) -> bytes:
    """Serialize one frame to its on-wire bytes (length prefix included)."""
    try:
        data = json.dumps(message, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as error:
        raise ProtocolError(
            f"frame is not JSON-serializable: {error}"
        ) from error
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(data)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _LENGTH.pack(len(data)) + data


def send_frame(sock: socket.socket, message: dict) -> None:
    """Serialize and send one frame (atomic ``sendall``)."""
    sock.sendall(frame_bytes(message))


def recv_frame(sock: socket.socket) -> dict | None:
    """Receive one frame; None on clean EOF at a frame boundary."""
    header = _recv_exact(sock, _LENGTH.size, eof_ok=True)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"incoming frame claims {length} bytes "
            f"(limit {MAX_FRAME_BYTES}); stream is corrupt or hostile"
        )
    data = _recv_exact(sock, length, eof_ok=False)
    return decode_frame(data)


def decode_frame(data: bytes) -> dict:
    """Decode one frame body (shared by the sync and async read paths)."""
    try:
        message = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable frame: {error}") from error
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("frame is not an object with a 'type' key")
    return message


async def read_frame_async(reader) -> dict | None:
    """Asyncio twin of :func:`recv_frame` over a ``StreamReader``.

    Returns None on a clean EOF at a frame boundary; EOF mid-frame
    raises :class:`~repro.errors.ConnectionClosedError`.
    """
    import asyncio

    try:
        header = await reader.readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ConnectionClosedError(
            "connection closed mid-frame "
            f"({len(error.partial)}/{_LENGTH.size} header bytes received)"
        ) from error
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"incoming frame claims {length} bytes "
            f"(limit {MAX_FRAME_BYTES}); stream is corrupt or hostile"
        )
    try:
        data = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ConnectionClosedError(
            "connection closed mid-frame "
            f"({len(error.partial)}/{length} bytes received)"
        ) from error
    return decode_frame(data)


def _recv_exact(
    sock: socket.socket, count: int, eof_ok: bool
) -> bytes | None:
    chunks: list[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and remaining == count:
                return None
            raise ConnectionClosedError(
                "connection closed mid-frame "
                f"({count - remaining}/{count} bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ERROR_TYPES",
    "encode_value",
    "decode_value",
    "encode_row",
    "decode_row",
    "encode_accessed",
    "decode_accessed",
    "error_frame",
    "raise_error_frame",
    "frame_bytes",
    "decode_frame",
    "send_frame",
    "recv_frame",
    "read_frame_async",
]
