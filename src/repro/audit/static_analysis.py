"""Static-analysis auditing baseline (Oracle FGA style, §VI).

Oracle Fine Grained Auditing decides *statically* whether a query could
touch the audited rows: it checks whether the query's selection region on
the sensitive table provably fails to intersect the audit expression's
selection region. No data is consulted, so semantically-equivalent
predicates expressed through different columns defeat it (Example 6.1) —
the query is flagged even though it never touches audited rows.

We implement the documented behaviour: per-column interval/equality
reasoning over conjunctive predicates. Anything the analyzer cannot reason
about (disjunctions, expressions, subqueries) conservatively counts as
possibly-intersecting, which is precisely the source of FGA's false
positives that the paper's audit operators avoid.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.expr.nodes import (
    Between,
    Binary,
    ColumnRef,
    Expression,
    InList,
    Literal,
    conjuncts,
)
from repro.plan import logical as L
from repro.plan.logical import LogicalPlan

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.audit.expression import AuditExpression
    from repro.database import Database


@dataclass
class _ColumnConstraint:
    """Accumulated constraints on one column of the sensitive table."""

    equals: set = field(default_factory=set)
    not_equals: set = field(default_factory=set)
    lower: object = None  # (value, inclusive)
    upper: object = None
    in_sets: list[frozenset] = field(default_factory=list)

    def add_equals(self, value: object) -> None:
        self.equals.add(value)

    def add_range(self, op: str, value: object) -> None:
        if op in (">", ">="):
            bound = (value, op == ">=")
            if self.lower is None or _tighter_lower(bound, self.lower):
                self.lower = bound
        else:
            bound = (value, op == "<=")
            if self.upper is None or _tighter_upper(bound, self.upper):
                self.upper = bound

    def satisfiable(self) -> bool:
        """Is there any value satisfying all accumulated constraints?"""
        if len(self.equals) > 1:
            return False
        candidates: set | None = None
        if self.equals:
            candidates = set(self.equals)
        for in_set in self.in_sets:
            if candidates is None:
                candidates = set(in_set)
            else:
                candidates &= in_set
            if not candidates:
                return False
        if candidates is not None:
            candidates -= self.not_equals
            if not candidates:
                return False
            return any(self._in_range(value) for value in candidates)
        if self.lower is not None and self.upper is not None:
            low_value, low_inclusive = self.lower
            high_value, high_inclusive = self.upper
            try:
                if low_value > high_value:
                    return False
                if low_value == high_value and not (
                    low_inclusive and high_inclusive
                ):
                    return False
            except TypeError:
                return True  # incomparable: assume satisfiable
        return True

    def _in_range(self, value: object) -> bool:
        try:
            if self.lower is not None:
                low_value, inclusive = self.lower
                if value < low_value or (value == low_value and not inclusive):
                    return False
            if self.upper is not None:
                high_value, inclusive = self.upper
                if value > high_value or (
                    value == high_value and not inclusive
                ):
                    return False
        except TypeError:
            return True
        return True


def _tighter_lower(candidate: tuple, current: tuple) -> bool:
    try:
        if candidate[0] != current[0]:
            return candidate[0] > current[0]
        return not candidate[1] and current[1]
    except TypeError:
        return False


def _tighter_upper(candidate: tuple, current: tuple) -> bool:
    try:
        if candidate[0] != current[0]:
            return candidate[0] < current[0]
        return not candidate[1] and current[1]
    except TypeError:
        return False


class StaticAnalysisAuditor:
    """FGA-style statement-level auditor: flags possibly-accessing queries."""

    def __init__(self, database: "Database") -> None:
        self._database = database

    def flags_query(
        self,
        sql: str,
        audit_expression: str,
        parameters: dict[str, object] | None = None,
    ) -> bool:
        """True if static analysis deems the query a potential access."""
        plan = self._database.plan_query(sql, parameters)
        expression = self._database.audit_manager.expression(audit_expression)
        return self.flags_plan(plan, expression, parameters)

    def flags_plan(
        self,
        plan: LogicalPlan,
        expression: "AuditExpression",
        parameters: dict[str, object] | None = None,
    ) -> bool:
        from repro.audit.offline import _sensitive_scans

        scans = _sensitive_scans(plan, expression.sensitive_table)
        if not scans:
            return False  # the query never references the sensitive table
        audit_constraints = self._audit_predicate_constraints(
            expression, parameters
        )
        for scan in scans:
            constraints = {
                name: _ColumnConstraint(
                    equals=set(c.equals),
                    not_equals=set(c.not_equals),
                    lower=c.lower,
                    upper=c.upper,
                    in_sets=list(c.in_sets),
                )
                for name, c in audit_constraints.items()
            }
            schema = scan.schema
            decidable = True
            if scan.predicate is not None:
                decidable = _accumulate(
                    scan.predicate, schema, constraints, parameters
                )
            if not decidable:
                return True  # cannot reason: conservatively flag
            if all(c.satisfiable() for c in constraints.values()):
                return True
        return False

    def _audit_predicate_constraints(
        self,
        expression: "AuditExpression",
        parameters: dict[str, object] | None,
    ) -> dict[str, _ColumnConstraint]:
        """Constraints the audit expression imposes on sensitive columns."""
        table = self._database.catalog.table(expression.sensitive_table)
        schema = table.schema
        constraints: dict[str, _ColumnConstraint] = {}
        where = expression.select.where
        if where is None:
            return constraints
        # only single-table conjuncts on the sensitive table are usable;
        # join predicates to other tables are ignored (conservative)
        for conjunct in conjuncts(where):
            _accumulate_ast_conjunct(conjunct, schema, constraints, parameters)
        return constraints


def _accumulate(
    predicate: Expression,
    schema,
    constraints: dict[str, _ColumnConstraint],
    parameters: dict[str, object] | None,
) -> bool:
    """Fold a bound scan predicate into the constraint map.

    Returns False when any conjunct is beyond the analyzer (the caller
    then flags conservatively).
    """
    decidable = True
    for conjunct in conjuncts(predicate):
        if not _accumulate_bound_conjunct(
            conjunct, schema, constraints, parameters
        ):
            decidable = False
    return decidable


def _literal_value(
    expression: Expression, parameters: dict[str, object] | None
) -> tuple[bool, object]:
    from repro.expr.nodes import Parameter

    if isinstance(expression, Literal):
        return True, expression.value
    if isinstance(expression, Parameter) and parameters is not None \
            and expression.name in parameters:
        return True, parameters[expression.name]
    return False, None


def _accumulate_bound_conjunct(
    conjunct: Expression,
    schema,
    constraints: dict[str, _ColumnConstraint],
    parameters: dict[str, object] | None,
) -> bool:
    if isinstance(conjunct, Binary) and conjunct.op in (
        "=", "<", "<=", ">", ">=", "<>"
    ):
        sides = [(conjunct.left, conjunct.right, conjunct.op)]
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
                   "=": "=", "<>": "<>"}
        sides.append((conjunct.right, conjunct.left, flipped[conjunct.op]))
        for column_side, value_side, op in sides:
            if not isinstance(column_side, ColumnRef) \
                    or column_side.outer_level != 0 \
                    or column_side.index is None:
                continue
            known, value = _literal_value(value_side, parameters)
            if not known:
                return False
            name = schema.columns[column_side.index].name
            constraint = constraints.setdefault(name, _ColumnConstraint())
            if op == "=":
                constraint.add_equals(value)
            elif op == "<>":
                constraint.not_equals.add(value)
            else:
                constraint.add_range(op, value)
            return True
        return False
    if isinstance(conjunct, Between) and not conjunct.negated:
        if isinstance(conjunct.operand, ColumnRef) \
                and conjunct.operand.index is not None:
            low_known, low = _literal_value(conjunct.low, parameters)
            high_known, high = _literal_value(conjunct.high, parameters)
            if low_known and high_known:
                name = schema.columns[conjunct.operand.index].name
                constraint = constraints.setdefault(
                    name, _ColumnConstraint()
                )
                constraint.add_range(">=", low)
                constraint.add_range("<=", high)
                return True
        return False
    if isinstance(conjunct, InList) and not conjunct.negated:
        if isinstance(conjunct.operand, ColumnRef) \
                and conjunct.operand.index is not None:
            values = []
            for item in conjunct.items:
                known, value = _literal_value(item, parameters)
                if not known:
                    return False
                values.append(value)
            name = schema.columns[conjunct.operand.index].name
            constraint = constraints.setdefault(name, _ColumnConstraint())
            constraint.in_sets.append(frozenset(values))
            return True
        return False
    return False


def _accumulate_ast_conjunct(
    conjunct: Expression,
    schema,
    constraints: dict[str, _ColumnConstraint],
    parameters: dict[str, object] | None,
) -> None:
    """Fold an *unbound* audit-expression conjunct (best effort)."""
    if not isinstance(conjunct, Binary) or conjunct.op not in (
        "=", "<", "<=", ">", ">=", "<>"
    ):
        return
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
               "=": "=", "<>": "<>"}
    for column_side, value_side, op in (
        (conjunct.left, conjunct.right, conjunct.op),
        (conjunct.right, conjunct.left, flipped[conjunct.op]),
    ):
        if not isinstance(column_side, ColumnRef):
            continue
        if not schema.has_column(column_side.name):
            continue
        known, value = _literal_value(value_side, parameters)
        if not known:
            continue
        constraint = constraints.setdefault(
            column_side.name, _ColumnConstraint()
        )
        if op == "=":
            constraint.add_equals(value)
        elif op == "<>":
            constraint.not_equals.add(value)
        else:
            constraint.add_range(op, value)
        return


__all__ = ["StaticAnalysisAuditor"]

# silence an unused-import warning: datetime comparisons flow through the
# generic ordering logic above
_ = datetime
