"""Materialized sensitive-ID views (§IV-A.1).

When an audit expression is declared it is compiled into a materialized
view containing only the partition-by IDs of the rows it selects. The
physical audit operator probes this set — an O(1) hash lookup per row —
instead of evaluating the full audit predicate, which is the paper's key
implementation optimization (no extra I/O for audit-only attributes, less
CPU to propagate them).

The view is maintained under DML via table change observers:

* single-table audit expressions are maintained *incrementally* — the
  predicate is evaluated directly on the changed row, and a per-ID
  refcount of qualifying rows makes deletions O(1) (an ID leaves the
  view exactly when its last qualifying row does, with no table scan);
* expressions that join other tables (e.g. ``Audit_Cancer``) are
  re-materialized when any referenced table changes, the standard fallback
  of materialized-view maintenance.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import TYPE_CHECKING, Callable, Iterator

from repro.audit.expression import AuditExpression
from repro.errors import AuditError
from repro.storage.table import RowChange

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.catalog.catalog import Catalog

#: executes the compiled ID select and returns partition-by IDs
IdMaterializer = Callable[[AuditExpression], set]


class IdView:
    """The materialized set of sensitive partition-by IDs."""

    def __init__(
        self,
        expression: AuditExpression,
        catalog: "Catalog",
        materializer: IdMaterializer,
        probe_structure: str = "set",
        bloom_false_positive_rate: float = 0.01,
    ) -> None:
        if probe_structure not in ("set", "bloom"):
            raise AuditError(
                f"unknown probe structure {probe_structure!r}"
            )
        self.expression = expression
        self.probe_structure = probe_structure
        self._catalog = catalog
        self._materializer = materializer
        self._ids: set = set(materializer(expression))
        self._bloom = None
        if probe_structure == "bloom":
            from repro.audit.bloom import CountingBloomFilter

            self._bloom = CountingBloomFilter(
                expected_items=max(len(self._ids), 64),
                false_positive_rate=bloom_false_positive_rate,
            )
            for value in self._ids:
                self._bloom.add(value)
        self._referenced = _referenced_tables(expression)
        self._single_table = self._referenced == {expression.sensitive_table}
        self._predicate_evaluator = None
        #: qualifying-row count per ID (single-table expressions only):
        #: the incremental-maintenance bookkeeping that makes DELETE/UPDATE
        #: maintenance O(1) instead of a table scan per removed row
        self._id_refcounts: Counter = Counter()
        # Serializes maintenance (refcount read-modify-write, refresh)
        # against concurrent DML threads; probes stay lock-free — the
        # engine's read-write lock already excludes them from writers,
        # and set membership itself is safe under the GIL.
        self._lock = threading.RLock()
        if self._single_table:
            self._predicate_evaluator = _SingleTablePredicate(
                expression, catalog
            )
            self._rebuild_refcounts()
        self._observers_installed = False

    # ------------------------------------------------------------------
    # probing (the audit operator's hot path)

    def __contains__(self, value: object) -> bool:
        return value in self._ids

    def __len__(self) -> int:
        return len(self._ids)

    def __iter__(self) -> Iterator:
        return iter(self._ids)

    def ids(self) -> frozenset:
        with self._lock:
            return frozenset(self._ids)

    @property
    def live_id_set(self):
        """The live probe structure for zero-indirection probing.

        The audit operator's per-row check must be a raw membership test
        (§IV-A.2); probing through ``IdView.__contains__`` would add a
        Python method call per row. Identity is stable: maintenance and
        :meth:`refresh` mutate the structure in place.

        With ``probe_structure='bloom'`` this is the counting Bloom filter
        — probes may return false positives (one-sided, as the paper
        allows) but never false negatives.
        """
        if self._bloom is not None:
            return self._bloom
        return self._ids

    @property
    def probe_size_bytes(self) -> int:
        """Approximate memory of the probe structure (for the ablation)."""
        if self._bloom is not None:
            return self._bloom.size_bytes
        import sys

        return sys.getsizeof(self._ids) + sum(
            sys.getsizeof(value) for value in self._ids
        )

    # ------------------------------------------------------------------
    # maintenance

    def install_observers(self) -> None:
        """Subscribe to change notifications of every referenced table."""
        if self._observers_installed:
            return
        for table_name in self._referenced:
            self._catalog.table(table_name).add_observer(self._on_change)
        self._observers_installed = True

    def uninstall_observers(self) -> None:
        if not self._observers_installed:
            return
        for table_name in self._referenced:
            try:
                self._catalog.table(table_name).remove_observer(
                    self._on_change
                )
            except Exception:  # table may have been dropped already
                pass
        self._observers_installed = False

    def refresh(self) -> None:
        """Full re-materialization (in place: structure identity stable)."""
        with self._lock:
            fresh = self._materializer(self.expression)
            self._ids.clear()
            self._ids.update(fresh)
            if self._bloom is not None:
                self._bloom.clear()
                for value in self._ids:
                    self._bloom.add(value)
            if self._single_table:
                self._rebuild_refcounts()

    def _rebuild_refcounts(self) -> None:
        """One scan establishing the per-ID qualifying-row counts."""
        evaluator = self._predicate_evaluator
        assert evaluator is not None
        with self._lock:
            counts = self._id_refcounts
            counts.clear()
            table = self._catalog.table(self.expression.sensitive_table)
            for row in table.rows():
                if evaluator.matches(row):
                    counts[evaluator.id_of(row)] += 1

    def _add_id(self, value: object) -> None:
        if value not in self._ids:
            self._ids.add(value)
            if self._bloom is not None:
                self._bloom.add(value)

    def _discard_id(self, value: object) -> None:
        if value in self._ids:
            self._ids.discard(value)
            if self._bloom is not None:
                self._bloom.discard(value)

    def _on_change(self, change: RowChange) -> None:
        if not self._single_table:
            self.refresh()
            return
        evaluator = self._predicate_evaluator
        assert evaluator is not None
        with self._lock:
            if change.old_row is not None:
                if evaluator.matches(change.old_row):
                    self._release_id(evaluator.id_of(change.old_row))
            if change.new_row is not None \
                    and evaluator.matches(change.new_row):
                self._retain_id(evaluator.id_of(change.new_row))

    def _retain_id(self, id_value: object) -> None:
        """One more qualifying row carries this ID."""
        with self._lock:
            self._id_refcounts[id_value] += 1
            self._add_id(id_value)

    def _release_id(self, id_value: object) -> None:
        """A qualifying row left; drop the ID when the last one does."""
        with self._lock:
            remaining = self._id_refcounts[id_value] - 1
            if remaining > 0:
                self._id_refcounts[id_value] = remaining
                return
            self._id_refcounts.pop(id_value, None)
            self._discard_id(id_value)


class _SingleTablePredicate:
    """Evaluates a single-table audit predicate directly on stored rows."""

    def __init__(self, expression: AuditExpression, catalog: "Catalog"
                 ) -> None:
        from repro.plan.builder import PlanBuilder, Scope
        from repro.plan.logical import PlanColumn

        table = catalog.table(expression.sensitive_table)
        builder = PlanBuilder(catalog)
        alias = _sensitive_alias(expression)
        columns = tuple(
            PlanColumn(column.name, alias, (table.schema.name, column.name))
            for column in table.schema.columns
        )
        scope = Scope(columns)
        self._predicate = (
            builder.bind_expression(expression.select.where, scope)
            if expression.select.where is not None
            else None
        )
        self._id_position = table.schema.position_of(expression.partition_by)

    def id_of(self, row: tuple) -> object:
        return row[self._id_position]

    def matches(self, row: tuple) -> bool:
        if self._predicate is None:
            return True
        from repro.exec.context import ExecutionContext
        from repro.expr.evaluator import evaluate

        context = ExecutionContext()
        return evaluate(self._predicate, row, context) is True


def _sensitive_alias(expression: AuditExpression) -> str:
    from repro.sql import ast

    for item in expression.select.from_items:
        if isinstance(item, ast.TableRef) \
                and item.name.lower() == expression.sensitive_table:
            return item.binding_name.lower()
    return expression.sensitive_table


def _referenced_tables(expression: AuditExpression) -> set[str]:
    from repro.audit.expression import _referenced_tables as referenced

    try:
        return referenced(expression.select)
    except AuditError:  # pragma: no cover - validated at creation
        return {expression.sensitive_table}
