"""Audit expressions (§II-A).

An audit expression declaratively specifies the sensitive data::

    CREATE AUDIT EXPRESSION <name> AS
    SELECT <sensitive columns> FROM <tables> WHERE <predicate>
    FOR SENSITIVE TABLE <t>, PARTITION BY <key>

Following the paper we validate the restrictions it imposes for privacy
(§II-A, citing [9]): predicates must be simple (no subqueries), and the
expression designates exactly one sensitive table whose partition-by key
identifies the audited individuals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import AuditError
from repro.expr.nodes import contains_subquery
from repro.sql import ast

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.catalog.catalog import Catalog


@dataclass(frozen=True)
class AuditExpression:
    """A validated audit expression definition."""

    name: str
    select: ast.SelectStatement
    sensitive_table: str
    partition_by: str

    @classmethod
    def from_statement(
        cls,
        statement: ast.CreateAuditExpressionStatement,
        catalog: "Catalog",
    ) -> "AuditExpression":
        """Validate a parsed CREATE AUDIT EXPRESSION against the catalog."""
        select = statement.select
        sensitive_table = statement.sensitive_table.lower()
        partition_by = statement.partition_by.lower()

        table = catalog.table(sensitive_table)  # raises if missing
        if not table.schema.has_column(partition_by):
            raise AuditError(
                f"partition-by column {partition_by!r} does not exist in "
                f"sensitive table {sensitive_table!r}"
            )

        referenced = _referenced_tables(select)
        if sensitive_table not in referenced:
            raise AuditError(
                f"sensitive table {sensitive_table!r} must appear in the "
                "audit expression's FROM clause"
            )
        for name in referenced:
            catalog.table(name)  # raises if missing

        if select.where is not None and contains_subquery(select.where):
            raise AuditError(
                "audit expression predicates must be simple: "
                "subqueries are not allowed (§II-A)"
            )
        if select.group_by or select.having or select.order_by \
                or select.limit is not None or select.distinct:
            raise AuditError(
                "audit expressions must be plain SELECT ... FROM ... WHERE"
            )
        return cls(
            name=statement.name.lower(),
            select=select,
            sensitive_table=sensitive_table,
            partition_by=partition_by,
        )

    def id_select(self) -> ast.SelectStatement:
        """The SELECT that materializes the sensitive-ID view (§IV-A.1).

        Projects only the partition-by key of the sensitive table —
        compiling the expression down to IDs is the paper's optimization
        that avoids touching audit-only attributes during query execution.
        """
        from repro.expr.nodes import ColumnRef

        qualifier = self._sensitive_binding()
        item = ast.SelectItem(
            ColumnRef(self.partition_by, qualifier=qualifier)
        )
        return ast.SelectStatement(
            items=(item,),
            from_items=self.select.from_items,
            where=self.select.where,
            distinct=True,
        )

    def _sensitive_binding(self) -> str | None:
        """Alias under which the sensitive table is bound in FROM."""
        for item in self.select.from_items:
            binding = _binding_for(item, self.sensitive_table)
            if binding is not None:
                return binding
        return None


def _binding_for(item: ast.FromItem, table_name: str) -> str | None:
    if isinstance(item, ast.TableRef):
        if item.name.lower() == table_name:
            return item.binding_name.lower()
        return None
    if isinstance(item, ast.JoinRef):
        return _binding_for(item.left, table_name) or _binding_for(
            item.right, table_name
        )
    return None


def _referenced_tables(select: ast.SelectStatement) -> set[str]:
    tables: set[str] = set()

    def visit(item: ast.FromItem) -> None:
        if isinstance(item, ast.TableRef):
            tables.add(item.name.lower())
        elif isinstance(item, ast.JoinRef):
            visit(item.left)
            visit(item.right)
        else:
            raise AuditError(
                "audit expressions cannot use derived tables"
            )

    for item in select.from_items:
        visit(item)
    return tables
