"""Audit manager: registry of audit expressions, ID views, and triggers.

The manager is the glue between the catalog, the optimizer's
instrumentation hook, and the trigger subsystem:

* ``create_expression`` validates a CREATE AUDIT EXPRESSION, materializes
  its sensitive-ID view, and installs maintenance observers;
* ``instrument`` is handed to the optimizer as the hook that runs between
  logical and physical optimization (§IV-B);
* ``resolve_view`` supplies the physical planner with the ID container a
  physical audit operator probes;
* after a query completes, ``fire_select_triggers`` runs the actions of
  every SELECT trigger whose audit expression recorded accesses (§II-C).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable, Sequence

from repro.audit.expression import AuditExpression
from repro.audit.idview import IdView
from repro.audit.placement import (
    HEURISTIC_COST,
    HEURISTIC_HCN,
    HEURISTIC_LEAF,
    AuditTarget,
    instrument_plan,
)
from repro.errors import AuditError
from repro.plan.logical import LogicalPlan

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.catalog.catalog import Catalog
    from repro.sql import ast

#: executes the ID-materialization select, returning a set of IDs
Materializer = Callable[[AuditExpression], set]


class AuditManager:
    """Owns audit expressions and their materialized ID views."""

    def __init__(
        self,
        catalog: "Catalog",
        materializer: Materializer,
        heuristic: str = HEURISTIC_HCN,
    ) -> None:
        self._catalog = catalog
        self._materializer = materializer
        self._views: dict[str, IdView] = {}
        self.heuristic = heuristic
        #: probe structure for new ID views: 'set' (exact, default) or
        #: 'bloom' (§IV-A.2's fallback when IDs do not fit in memory;
        #: one-sided — may add false positives, never false negatives)
        self.probe_structure = "set"
        #: monotonic counter bumped whenever the set of audit expressions
        #: (or their views) changes; plan caches include it in their keys
        #: because instrumented plan shapes depend on this configuration
        self.config_version = 0
        #: set by the database's exec_mode knob: under the columnar
        #: executor a scan-fused audit probe is one bulk set sweep, so
        #: 'cost' placement prices those probes cheaper (plan caches tag
        #: columnar plans apart for exactly this reason)
        self.columnar_mode = False
        # Serializes registry mutation and the config_version bumps
        # (read-modify-write) against concurrent DDL threads.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # expression lifecycle

    def create_expression(
        self, statement: "ast.CreateAuditExpressionStatement"
    ) -> AuditExpression:
        with self._lock:
            expression = AuditExpression.from_statement(
                statement, self._catalog
            )
            if expression.name in self._views:
                raise AuditError(
                    f"audit expression {expression.name!r} already exists"
                )
            view = IdView(
                expression,
                self._catalog,
                self._materializer,
                probe_structure=self.probe_structure,
            )
            view.install_observers()
            self._views[expression.name] = view
            self._catalog.add_audit_expression(expression.name, expression)
            # Sketch the partition-by column in the sensitive table's
            # block summaries so scans under this expression's audit
            # operators can skip blocks with no sensitive rows.
            self._catalog.table(
                expression.sensitive_table
            ).register_sketch_column(expression.partition_by)
            self.config_version += 1
            return expression

    def drop_expression(self, name: str) -> None:
        with self._lock:
            key = name.lower()
            view = self._views.pop(key, None)
            if view is None:
                raise AuditError(
                    f"audit expression {name!r} does not exist"
                )
            view.uninstall_observers()
            self._catalog.drop_audit_expression(key)
            self.config_version += 1

    def expression(self, name: str) -> AuditExpression:
        return self.view(name).expression

    def has_expression(self, name: str) -> bool:
        """True when an audit expression named ``name`` is registered
        (recovery uses this to drop intents for dropped expressions)."""
        return name.lower() in self._views

    def expressions(self) -> list[AuditExpression]:
        return [view.expression for view in self._views.values()]

    def view(self, name: str) -> IdView:
        try:
            return self._views[name.lower()]
        except KeyError:
            raise AuditError(
                f"audit expression {name!r} does not exist"
            ) from None

    def resolve_view(self, name: str) -> IdView:
        """Resolver handed to the physical planner (audit operator probe)."""
        return self.view(name)

    def override_view(self, name: str, view: IdView):
        """Context manager: temporarily replace an expression's ID view
        (benchmarks use this to compare probe structures in place)."""
        manager = self

        class _Override:
            def __enter__(self) -> None:
                with manager._lock:
                    self._previous = manager._views[name.lower()]
                    manager._views[name.lower()] = view
                    manager.config_version += 1

            def __exit__(self, *exc_info) -> None:
                with manager._lock:
                    manager._views[name.lower()] = self._previous
                    manager.config_version += 1

        return _Override()

    def suspend_expression(self, name: str):
        """Context manager: temporarily exclude an expression from
        instrumentation (used by benchmarks to isolate one expression)."""
        manager = self

        class _Suspend:
            def __enter__(self) -> None:
                with manager._lock:
                    self._view = manager._views.pop(name.lower())
                    manager.config_version += 1

            def __exit__(self, *exc_info) -> None:
                with manager._lock:
                    manager._views[name.lower()] = self._view
                    manager.config_version += 1

        return _Suspend()

    # ------------------------------------------------------------------
    # instrumentation (the optimizer hook)

    def targets(
        self, names: Sequence[str] | None = None
    ) -> list[AuditTarget]:
        """Placement targets for the given (or all) audit expressions."""
        views = (
            [self.view(name) for name in names]
            if names is not None
            else list(self._views.values())
        )
        return [
            AuditTarget(
                name=view.expression.name,
                sensitive_table=view.expression.sensitive_table,
                partition_column=view.expression.partition_by,
            )
            for view in views
        ]

    def instrument(
        self,
        plan: LogicalPlan,
        names: Sequence[str] | None = None,
        heuristic: str | None = None,
    ) -> LogicalPlan:
        """Insert + place audit operators (Algorithm 1)."""
        targets = self.targets(names)
        chosen = heuristic or self.heuristic
        if chosen == HEURISTIC_COST:
            return self._instrument_costed(plan, targets)
        return instrument_plan(plan, targets, chosen)

    def _instrument_costed(
        self, plan: LogicalPlan, targets: Sequence[AuditTarget]
    ) -> LogicalPlan:
        """Pick leaf vs HCN placement by estimated probe count.

        Leaf placement probes every sensitive-table row but fuses with
        the scan's block sketches; HCN probes only rows surviving
        filters/joins but cannot consult block summaries above the scan.
        The sketch-selectivity-aware cost model prices both and the
        cheaper candidate wins (ties go to HCN, the paper's default).
        """
        from repro.optimizer.cost import CostModel  # local: cycle guard

        candidates = [
            instrument_plan(plan, targets, heuristic)
            for heuristic in (HEURISTIC_HCN, HEURISTIC_LEAF)
        ]
        model = CostModel(
            self._catalog, self.resolve_view, columnar=self.columnar_mode
        )
        return min(candidates, key=model.estimate_plan_cost)
