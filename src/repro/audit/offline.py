"""Offline auditor: the deletion-based ground truth (Definitions 2.3/2.5).

A tuple ``t`` of the sensitive table is *accessed* by query ``Q`` over
database ``D`` iff ``Q(D) ≠ Q(D − t)`` (bag semantics). The offline auditor
implements the definition directly, with the engineering optimizations that
make it usable:

* **candidate restriction** — by Claim 3.5, every accessed tuple passes a
  leaf-level scan of the sensitive table, so only sensitive tuples that
  satisfy the pushed-down scan predicates (in the main query or any
  subquery) need the deletion test;
* **lineage fast path** — for certifiable plan shapes, one
  lineage-capturing execution classifies every candidate at once
  (:mod:`repro.audit.lineage`), replacing N deletion re-runs with a
  single instrumented run. The ``offline_audit_mode`` knob on the
  database ('auto' | 'lineage' | 'deletion') selects the strategy;
* **parallel deletion fallback** — candidates the lineage engine leaves
  undecided (or every candidate, for uncertifiable plans) still get the
  literal deletion test, dispatched as chunked per-ID batches across a
  ``concurrent.futures`` thread pool when ``offline_audit_workers`` > 1;
* **sensitive-free subplan caching** — on the deletion path the same
  physical plan is executed once per candidate with a *tombstone* hiding
  that tuple; subtrees that never read the sensitive table produce
  identical rows on every run and are materialized once via
  :class:`CacheOperator`.

This component plays the role of the paper's offline auditing system [9]:
the ground truth that Figures 6 and 9 compare the heuristics against, and
the verifier for queries the SELECT-trigger layer flags.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING

from repro.audit.expression import AuditExpression
from repro.audit.lineage import LineageAuditor
from repro.errors import AuditError
from repro.exec.operators.base import PhysicalOperator
from repro.exec.operators.cache import CacheOperator
from repro.expr.nodes import (
    Expression,
    SubqueryExpression,
    conjuncts,
)
from repro.plan import logical as L
from repro.plan.logical import LogicalPlan

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.database import Database


class OfflineAuditor:
    """Computes the exact set of accessed partition-by IDs for a query."""

    def __init__(
        self,
        database: "Database",
        use_cache: bool = True,
        restrict_candidates: bool = True,
        mode: str | None = None,
        workers: int | None = None,
    ) -> None:
        self._database = database
        self._use_cache = use_cache
        #: False = the naive Definition-2.3 system: deletion-test every
        #: sensitive tuple for every query (the §V-D baseline)
        self._restrict_candidates = restrict_candidates
        #: per-auditor overrides of the database knobs (None = inherit
        #: ``offline_audit_mode`` / ``offline_audit_workers``)
        self._mode = mode
        self._workers = workers
        self._lineage = LineageAuditor(database)
        #: deletion runs performed by the last audit() call (for benches)
        self.last_deletion_runs = 0
        self.last_candidate_count = 0
        #: strategy the last audit() resolved to: 'lineage' (no deletion
        #: run at all), 'mixed' (lineage + fallback), or 'deletion'
        self.last_mode = "deletion"
        #: did the lineage engine certify the last plan?
        self.last_lineage_certified = False
        #: why it refused, when it did (telemetry for benches/tests)
        self.last_fallback_reason: str | None = None
        #: candidate tuples classified without a deletion re-run
        self.last_deletion_runs_avoided = 0
        #: thread-pool width used by the last fallback (1 = serial)
        self.last_workers = 1
        # Compiled-plan reuse across audit() calls: a full audit session
        # replays the same query once per tombstone, and a batch auditor
        # replays the same *workload* once per expression — re-parsing and
        # re-compiling each time is pure overhead. Entries are tag-checked
        # against the database's plan-cache tags and kept in LRU order
        # (hits renew, like repro.plancache), and the CacheOperator
        # store is emptied on every reuse since DML between calls can
        # change the materialized sensitive-free subtree rows.
        self._plans: OrderedDict[tuple, tuple] = OrderedDict()
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0

    # ------------------------------------------------------------------

    def audit(
        self,
        sql: str,
        audit_expression: str,
        parameters: dict[str, object] | None = None,
    ) -> set:
        """Accessed IDs of ``audit_expression`` for the given query."""
        database = self._database
        expression = database.audit_manager.expression(audit_expression)
        plan, physical = self._cached_plan(
            sql, expression.sensitive_table, parameters
        )
        return self.audit_plan(
            plan, audit_expression, parameters, physical=physical
        )

    def _cached_plan(
        self,
        sql: str,
        sensitive_table: str,
        parameters: dict[str, object] | None,
    ) -> tuple[LogicalPlan, PhysicalOperator]:
        """Logical + compiled plan for ``sql``, reused across audit calls."""
        database = self._database
        key = (sql.strip(), sensitive_table.lower(), self._use_cache)
        tags = database._plan_cache_tags()
        cached = self._plans.get(key)
        if cached is not None and cached[0] == tags:
            # true LRU: a hit renews the entry so sustained reuse of a
            # hot workload never evicts it in favor of one-off queries
            self._plans.move_to_end(key)
            _, plan, physical, store = cached
            store.clear()
            self.plan_cache_hits += 1
            return plan, physical
        self.plan_cache_misses += 1
        plan = database.plan_query(sql, parameters)
        store: dict[int, list[tuple]] = {}
        physical = self._compile(plan, sensitive_table, store)
        self._plans[key] = (tags, plan, physical, store)
        self._plans.move_to_end(key)
        if len(self._plans) > 64:
            self._plans.popitem(last=False)
        return plan, physical

    def audit_plan(
        self,
        plan: LogicalPlan,
        audit_expression: str,
        parameters: dict[str, object] | None = None,
        physical: PhysicalOperator | None = None,
    ) -> set:
        """Accessed IDs for an already-built (rewritten) logical plan."""
        database = self._database
        expression = database.audit_manager.expression(audit_expression)
        view_ids = database.audit_manager.view(audit_expression).ids()
        table = database.catalog.table(expression.sensitive_table)
        id_position = table.schema.position_of(expression.partition_by)
        pk_positions = table.schema.primary_key_positions()
        if not pk_positions:
            raise AuditError(
                "offline auditing requires a primary key on the "
                f"sensitive table {expression.sensitive_table!r}"
            )

        if self._restrict_candidates:
            candidates = self._candidate_ids(plan, expression, parameters)
            candidates &= view_ids
        else:
            candidates = set(view_ids)
        self.last_candidate_count = len(candidates)
        self.last_deletion_runs = 0
        self.last_deletion_runs_avoided = 0
        self.last_mode = "deletion"
        self.last_lineage_certified = False
        self.last_fallback_reason = None
        self.last_workers = 1
        if not candidates:
            return set()

        # group candidate tuples by ID so multi-tuple IDs test per tuple
        tuples_by_id: dict[object, list[tuple]] = {}
        for row in table.rows():
            id_value = row[id_position]
            if id_value in candidates:
                pk = tuple(row[position] for position in pk_positions)
                tuples_by_id.setdefault(id_value, []).append(pk)
        total_tuples = sum(len(pks) for pks in tuples_by_id.values())

        mode = self._mode or database.offline_audit_mode
        outcome = None
        if mode in ("auto", "lineage"):
            outcome = self._lineage.analyze(
                plan, expression, parameters, tuples_by_id
            )
            if outcome is None:
                self.last_fallback_reason = self._lineage.last_refusal

        if outcome is not None:
            self.last_lineage_certified = True
            accessed = set(outcome.accessed)
            # only undecided tuples of still-undecided IDs need a re-run
            fallback = {
                id_value: pk_list
                for id_value, pk_list in outcome.undecided.items()
                if id_value not in accessed
            }
        else:
            accessed = set()
            fallback = tuples_by_id

        if fallback:
            if physical is None:
                store: dict[int, list[tuple]] = {}
                physical = self._compile(
                    plan, expression.sensitive_table, store
                )
            baseline = Counter(
                database.run_physical(physical, parameters).rows_list()
            )
            accessed |= self._deletion_test(
                physical,
                expression.sensitive_table,
                parameters,
                baseline,
                fallback,
            )
        self.last_deletion_runs_avoided = (
            total_tuples - self.last_deletion_runs
        )
        if outcome is not None:
            self.last_mode = "lineage" if not fallback else "mixed"
        return accessed

    # ------------------------------------------------------------------
    # deletion testing (Definition 2.3 literally), serial or pooled

    def _deletion_test(
        self,
        physical: PhysicalOperator,
        table_name: str,
        parameters: dict[str, object] | None,
        baseline: Counter,
        tuples_by_id: dict[object, list[tuple]],
    ) -> set:
        """Run ``Q(D − t)`` per candidate tuple; chunked across a thread
        pool when the database's worker knob asks for one."""
        items = list(tuples_by_id.items())
        workers = self._workers or self._database.offline_audit_workers
        workers = max(1, min(workers, len(items)))
        self.last_workers = workers
        if workers == 1:
            accessed, runs = self._test_chunk(
                physical, table_name, parameters, baseline, items
            )
            self.last_deletion_runs += runs
            return accessed
        # chunk at ID granularity (the per-ID early exit must stay inside
        # one worker) with several chunks per worker for load balance;
        # round-robin so clustered hot IDs spread across the pool
        chunk_count = min(len(items), workers * 4)
        chunks = [items[index::chunk_count] for index in range(chunk_count)]
        accessed: set = set()
        runs = 0
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    self._test_chunk,
                    physical, table_name, parameters, baseline, chunk,
                )
                for chunk in chunks
            ]
            for future in futures:
                chunk_accessed, chunk_runs = future.result()
                accessed |= chunk_accessed
                runs += chunk_runs
        self.last_deletion_runs += runs
        return accessed

    def _test_chunk(
        self,
        physical: PhysicalOperator,
        table_name: str,
        parameters: dict[str, object] | None,
        baseline: Counter,
        items: list[tuple[object, list[tuple]]],
    ) -> tuple[set, int]:
        """One worker's batch: every execution gets a fresh context, so
        chunks share only the immutable plan and the pre-populated
        sensitive-free row cache."""
        database = self._database
        accessed: set = set()
        runs = 0
        for id_value, pk_list in items:
            for pk in pk_list:
                runs += 1
                result = database.run_physical(
                    physical,
                    parameters,
                    tombstones={table_name: {pk}},
                )
                if Counter(result.rows_list()) != baseline:
                    accessed.add(id_value)
                    break
        return accessed, runs

    # ------------------------------------------------------------------
    # candidate restriction (Claim 3.5)

    def _candidate_ids(
        self,
        plan: LogicalPlan,
        expression: AuditExpression,
        parameters: dict[str, object] | None,
    ) -> set:
        """IDs of sensitive tuples that pass any leaf scan of the query."""
        database = self._database
        table = database.catalog.table(expression.sensitive_table)
        id_position = table.schema.position_of(expression.partition_by)
        scans = _sensitive_scans(plan, expression.sensitive_table)
        if not scans:
            return set()
        candidates: set = set()
        rows = list(table.rows())
        for scan in scans:
            context = database.make_context(parameters)
            for row in rows:
                if scan.predicate is None or _passes_conservatively(
                    scan.predicate, row, context
                ):
                    candidates.add(row[id_position])
        return candidates

    # ------------------------------------------------------------------
    # compilation with sensitive-free subtree caching

    def _compile(
        self,
        plan: LogicalPlan,
        sensitive_table: str,
        store: dict[int, list[tuple]],
    ) -> PhysicalOperator:
        from repro.optimizer.physical import PhysicalPlanner

        cacheable: set[int] = set()
        if self._use_cache:
            _collect_topmost_insensitive(plan, sensitive_table, cacheable)

        def wrapper(
            node: LogicalPlan, operator: PhysicalOperator
        ) -> PhysicalOperator:
            if id(node) in cacheable:
                return CacheOperator(operator, store, id(node))
            return operator

        planner = PhysicalPlanner(
            self._database.catalog,
            self._database.audit_manager.resolve_view,
            node_wrapper=wrapper if self._use_cache else None,
        )
        return planner.compile(plan)


# ---------------------------------------------------------------------------
# plan analysis helpers


def _plan_expressions(node: LogicalPlan):
    if isinstance(node, L.Scan):
        if node.predicate is not None:
            yield node.predicate
    elif isinstance(node, L.Filter):
        yield node.predicate
    elif isinstance(node, L.Project):
        yield from node.expressions
    elif isinstance(node, L.Join):
        if node.condition is not None:
            yield node.condition
    elif isinstance(node, L.Aggregate):
        yield from node.group_expressions
        for spec in node.aggregates:
            if spec.argument is not None:
                yield spec.argument
    elif isinstance(node, L.Sort):
        for key in node.keys:
            yield key.expression


def _subquery_plans(expression: Expression):
    for node in expression.walk():
        if isinstance(node, SubqueryExpression) and node.plan is not None:
            yield node.plan


def _sensitive_scans(
    plan: LogicalPlan, table_name: str
) -> list[L.Scan]:
    """All scans of ``table_name``, including inside subquery plans."""
    scans: list[L.Scan] = []
    for node in plan.walk():
        if isinstance(node, L.Scan) and node.table_name == table_name:
            scans.append(node)
        for expression in _plan_expressions(node):
            for subplan in _subquery_plans(expression):
                scans.extend(_sensitive_scans(subplan, table_name))
    return scans


def plan_reads_table(plan: LogicalPlan, table_name: str) -> bool:
    """True if the plan (or any embedded subquery) scans ``table_name``."""
    for node in plan.walk():
        if isinstance(node, L.Scan) and node.table_name == table_name:
            return True
        for expression in _plan_expressions(node):
            for subplan in _subquery_plans(expression):
                if plan_reads_table(subplan, table_name):
                    return True
    return False


def _node_is_sensitive(node: LogicalPlan, table_name: str) -> bool:
    """Does this single node read the table (directly or via subqueries)?"""
    if isinstance(node, L.Scan) and node.table_name == table_name:
        return True
    for expression in _plan_expressions(node):
        for subplan in _subquery_plans(expression):
            if plan_reads_table(subplan, table_name):
                return True
    return False


def _collect_topmost_insensitive(
    plan: LogicalPlan, table_name: str, found: set[int]
) -> None:
    """Mark the topmost subtrees that never read the sensitive table."""
    if not plan_reads_table(plan, table_name):
        found.add(id(plan))
        return
    for child in plan.children():
        _collect_topmost_insensitive(child, table_name, found)


def _passes_conservatively(
    predicate: Expression, row: tuple, context
) -> bool:
    """Conservative scan-predicate test for candidate computation.

    Evaluates each conjunct; a conjunct that cannot be evaluated standalone
    (correlated references into an enclosing query) counts as passing, so
    the candidate set stays a superset of the truly accessible tuples.
    """
    from repro.expr.evaluator import evaluate

    for conjunct in conjuncts(predicate):
        try:
            verdict = evaluate(conjunct, row, context)
        except Exception:
            continue  # unevaluable here: keep the tuple as a candidate
        if verdict is not True:
            return False
    return True
