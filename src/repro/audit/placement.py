"""Audit operator placement (§III-C, Algorithm 1).

Three heuristics over logically-optimized plans:

* **leaf-node** — one audit operator directly above each leaf scan of the
  sensitive table (above the pushed single-table predicate). Guarantees no
  false negatives (Claim 3.5) but can produce many false positives.
* **highest-commutative-node (hcn)** — start at the leaves, repeatedly pull
  each audit operator above its parent while the parent *commutes with a
  filter on the partition-by slot* (Claim 3.6, Theorem 3.7). Commuting
  operators: filters, inner joins (both sides), the preserved side of
  left-outer joins, the probe side of semi/anti joins, and projections
  that keep the ID column visible. Barriers: group-by, distinct, sort,
  limit/top-k, the nullable side of outer joins, and subquery scope
  boundaries.

A note on the paper's *forced ID propagation* (§IV-A.1): SQL Server prunes
unneeded columns from intermediate rows, so the authors force partition-by
IDs to stay in the row up to the audit operator. Our engine materializes
projections only at query-block boundaries — inside a block the full join
row (including every ID) always flows — so the propagation is implicit.
When a block-boundary projection drops the ID, the audit operator simply
stays *beneath* it; since projections are row-preserving (1:1), the audit
cardinality is identical to the widened-projection placement the paper
implements, and no slot remapping of ancestor expressions is ever needed.
* **highest-node** — pulls as long as the ID column stays *visible*,
  ignoring commutativity; deliberately unsound (Example 3.2's top-k false
  negative) and kept as the paper's rejected strawman.

The instrumentation also descends into subquery plans (Example 3.8(c)):
each subquery gets its own audit operators, which can never be pulled out
of the subquery's scope.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.errors import AuditError
from repro.expr.nodes import (
    ColumnRef,
    Expression,
    SubqueryExpression,
    transform,
)
from repro.plan import logical as L
from repro.plan.logical import Audit, LogicalPlan

HEURISTIC_LEAF = "leaf-node"
HEURISTIC_HCN = "highest-commutative-node"
HEURISTIC_HIGHEST = "highest-node"
#: costed placement: the manager compiles the leaf and HCN candidates and
#: picks the one whose estimated probe count (sketch-selectivity-aware,
#: see :meth:`CostModel.estimate_plan_probes`) is lower. Not a member of
#: ``_HEURISTICS`` — it is resolved in :meth:`AuditManager.instrument`
#: before ``instrument_plan`` runs.
HEURISTIC_COST = "cost"

_HEURISTICS = (HEURISTIC_LEAF, HEURISTIC_HCN, HEURISTIC_HIGHEST)


@dataclass(frozen=True)
class AuditTarget:
    """What to instrument: one audit expression's identity columns."""

    name: str
    sensitive_table: str
    partition_column: str


def instrument_plan(
    plan: LogicalPlan,
    targets: Sequence[AuditTarget],
    heuristic: str = HEURISTIC_HCN,
) -> LogicalPlan:
    """Insert and place audit operators for every target (Algorithm 1).

    Lines 1–3 of Algorithm 1 insert one operator above each instance of
    the sensitive table; lines 4–14 pull operators up until fixpoint.
    """
    if heuristic not in _HEURISTICS:
        raise AuditError(f"unknown placement heuristic {heuristic!r}")
    if not targets:
        return plan
    original_arity = plan.arity
    plan = _instrument_subqueries(plan, targets, heuristic)
    plan = _insert_leaf_audits(plan, targets)
    if heuristic != HEURISTIC_LEAF:
        changed = True
        while changed:  # Algorithm 1's pulledUp loop
            plan, changed = _pull_up_pass(plan, heuristic)
    # Forced ID propagation may widen the root projection; re-project so
    # the user-visible result keeps its declared shape.
    if plan.arity != original_arity:
        plan = _strip_to(plan, original_arity)
    return plan


# ---------------------------------------------------------------------------
# insertion (Algorithm 1, lines 1-3)


def _insert_leaf_audits(
    plan: LogicalPlan, targets: Sequence[AuditTarget]
) -> LogicalPlan:
    children = tuple(
        _insert_leaf_audits(child, targets) for child in plan.children()
    )
    if children:
        plan = plan.replace_children(children)
    if isinstance(plan, L.Scan):
        scan = plan
        for target in targets:
            if scan.table_name == target.sensitive_table:
                slot = scan.schema.position_of(target.partition_column)
                plan = Audit(plan, target.name, slot, scan.alias)
    return plan


def _instrument_subqueries(
    plan: LogicalPlan,
    targets: Sequence[AuditTarget],
    heuristic: str,
) -> LogicalPlan:
    """Recursively instrument the plans inside subquery expressions."""

    def fix_expression(expression: Expression) -> Expression:
        def visit(node: Expression) -> Expression:
            if isinstance(node, SubqueryExpression) and node.plan is not None:
                return replace(
                    node,
                    plan=instrument_plan(node.plan, targets, heuristic),
                )
            return node

        return transform(expression, visit)

    if isinstance(plan, L.Scan):
        if plan.predicate is None:
            return plan
        return replace(plan, predicate=fix_expression(plan.predicate))
    children = tuple(
        _instrument_subqueries(child, targets, heuristic)
        for child in plan.children()
    )
    if children:
        plan = plan.replace_children(children)
    if isinstance(plan, L.Filter):
        plan = replace(plan, predicate=fix_expression(plan.predicate))
    elif isinstance(plan, L.Project):
        plan = replace(
            plan,
            expressions=tuple(
                fix_expression(e) for e in plan.expressions
            ),
        )
    elif isinstance(plan, L.Join) and plan.condition is not None:
        plan = replace(plan, condition=fix_expression(plan.condition))
    elif isinstance(plan, L.Aggregate):
        plan = replace(
            plan,
            group_expressions=tuple(
                fix_expression(e) for e in plan.group_expressions
            ),
            aggregates=tuple(
                replace(
                    spec,
                    argument=fix_expression(spec.argument)
                    if spec.argument is not None else None,
                )
                for spec in plan.aggregates
            ),
        )
    return plan


# ---------------------------------------------------------------------------
# pull-up (Algorithm 1, lines 4-14)


def _pull_up_pass(
    plan: LogicalPlan, heuristic: str
) -> tuple[LogicalPlan, bool]:
    """One bottom-up pass pulling audit children above their parents."""
    changed = False
    new_children = []
    for child in plan.children():
        new_child, child_changed = _pull_up_pass(child, heuristic)
        changed = changed or child_changed
        new_children.append(new_child)
    if new_children:
        plan = plan.replace_children(new_children)

    while True:
        pulled = _try_pull_one(plan, heuristic)
        if pulled is None:
            break
        plan = pulled
        changed = True
    return plan, changed


def _try_pull_one(
    plan: LogicalPlan, heuristic: str
) -> LogicalPlan | None:
    """Swap one Audit child above ``plan`` if they commute; else None."""
    if isinstance(plan, Audit):
        return None
    children = plan.children()
    for position, child in enumerate(children):
        if not isinstance(child, Audit):
            continue
        mapping = _commute(plan, position, child, heuristic)
        if mapping is None:
            continue
        new_parent, new_slot = mapping
        inner_children = list(children)
        inner_children[position] = child.child
        inner = new_parent.replace_children(inner_children)
        return Audit(inner, child.audit_name, new_slot, child.scan_alias)
    return None


def _commute(
    parent: LogicalPlan,
    position: int,
    audit: Audit,
    heuristic: str,
) -> tuple[LogicalPlan, int] | None:
    """Can ``audit`` move above ``parent``? Returns (parent', new slot).

    ``parent'`` is usually ``parent`` itself; for forced ID propagation it
    is a widened projection that carries the partition-by column upward.
    """
    slot = audit.id_slot

    if isinstance(parent, L.Filter):
        return parent, slot

    if isinstance(parent, L.Join):
        kind = parent.kind
        if position == 0:
            if kind in (L.JOIN_INNER, L.JOIN_SEMI, L.JOIN_ANTI):
                return parent, slot
            if kind == L.JOIN_LEFT:
                # preserved side: every left row still flows past the join
                return parent, slot
            return None
        # right input
        if kind == L.JOIN_INNER:
            return parent, slot + parent.left.arity
        # nullable side of an outer join, or the lookup side of a
        # semi/anti join: rows do not flow through — barrier
        return None

    if isinstance(parent, L.Project):
        # commutes only when the projection keeps the ID column visible;
        # otherwise the operator rests beneath it (see module docstring)
        for index, expression in enumerate(parent.expressions):
            if (
                isinstance(expression, ColumnRef)
                and expression.outer_level == 0
                and expression.index == slot
            ):
                return parent, index
        return None

    if heuristic == HEURISTIC_HIGHEST:
        # the strawman pulls through anything that keeps the ID visible
        if isinstance(parent, (L.Sort, L.Limit, L.Distinct)):
            return parent, slot
        if isinstance(parent, L.Aggregate):
            for index, expression in enumerate(parent.group_expressions):
                if (
                    isinstance(expression, ColumnRef)
                    and expression.outer_level == 0
                    and expression.index == slot
                ):
                    return parent, index
            return None
        return None

    # hcn barriers: Aggregate, Distinct, Sort, Limit (top-k), Audit chains
    return None


def _strip_to(plan: LogicalPlan, arity: int) -> LogicalPlan:
    """Final projection dropping force-propagated audit columns."""
    expressions = tuple(
        ColumnRef(plan.columns[index].name, index=index)
        for index in range(arity)
    )
    return L.Project(plan, expressions, plan.columns[:arity])


# ---------------------------------------------------------------------------
# introspection helpers (tests, EXPLAIN)


def audit_operators(plan: LogicalPlan) -> list[Audit]:
    """All audit operators in a plan, including inside subquery plans."""
    found: list[Audit] = []

    def visit_expressions(node: LogicalPlan) -> None:
        expressions: list[Expression] = []
        if isinstance(node, L.Scan) and node.predicate is not None:
            expressions.append(node.predicate)
        elif isinstance(node, L.Filter):
            expressions.append(node.predicate)
        elif isinstance(node, L.Project):
            expressions.extend(node.expressions)
        elif isinstance(node, L.Join) and node.condition is not None:
            expressions.append(node.condition)
        elif isinstance(node, L.Aggregate):
            expressions.extend(node.group_expressions)
            expressions.extend(
                spec.argument
                for spec in node.aggregates
                if spec.argument is not None
            )
        for expression in expressions:
            for part in expression.walk():
                if isinstance(part, SubqueryExpression) \
                        and part.plan is not None:
                    found.extend(audit_operators(part.plan))

    for node in plan.walk():
        if isinstance(node, Audit):
            found.append(node)
        visit_expressions(node)
    return found
