"""Lineage-based offline auditing: one instrumented run instead of N.

The deletion-test auditor implements Definition 2.3 literally — one full
re-execution of ``Q(D − t)`` per candidate sensitive tuple — which the
paper itself calls orders of magnitude too slow. This module replaces
those N runs with **one** lineage-capturing execution plus cheap per-tuple
classification, in the spirit of provenance-optimized query processing
(Niu & Glavic):

* every intermediate row carries the set of sensitive-table primary keys
  it was derived from (``rows_lineage`` on the physical operators), with
  the invariant *row survives deletion of tuple t iff t ∉ lineage*;
* for bag-semantics SPJ (select/project/join, plus order-irrelevant sort
  and intersection-lineage distinct) plans, deletion provenance equals
  lineage: tuple t is accessed iff t appears in some output row's
  lineage — one run decides every candidate;
* for plans whose *spine* ends in aggregation / HAVING / top-k, the
  certifier splits the plan into a lineage-certifiable **core** and a
  cheap **tail**. The core runs once; per candidate, only the affected
  aggregate groups are re-derived (per-function sensitivity rules with an
  exact recompute fallback) and the tail — operating on group rows, not
  base data — is replayed and compared;
* plan shapes with no exact lineage semantics (top-k directly over
  sensitive rows, subqueries that read the sensitive table, outer/anti
  joins with the sensitive table on the inner side) are refused at
  certification time and fall back to deletion testing in
  :class:`~repro.audit.offline.OfflineAuditor`.

Per-aggregate sensitivity rules (:func:`aggregate_sensitivity`):

========  ==========================================================
COUNT     changes iff any removed contribution is non-NULL
          (``COUNT(*)`` contributions are all 1 — always changes)
SUM       changes iff the removed contributions sum to non-zero, or
          the surviving rows have no non-NULL value left (SUM → NULL)
MIN/MAX   changes iff a removed value ties the group extremum and no
          surviving value does (a duplicated extremum masks deletion)
AVG &c.   undecided by rule — resolved by an exact O(|group|)
          recomputation over the surviving contributions, never by a
          deletion re-run
========  ==========================================================

Everything here is exact with respect to the deletion-test ground truth;
the differential property test in ``tests/test_offline_lineage.py``
asserts identical accessed-ID sets over random SPJA workloads.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from repro.datatypes import value_sort_key
from repro.expr.aggregates import make_accumulator
from repro.expr.compiler import (
    compile_expression,
    compile_predicate,
    compile_projector,
)
from repro.plan import logical as L
from repro.plan.logical import AggregateSpec, LogicalPlan

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.audit.expression import AuditExpression
    from repro.database import Database
    from repro.exec.context import ExecutionContext
    from repro.exec.operators.base import PhysicalOperator


# ---------------------------------------------------------------------------
# certification: which plan shapes the lineage engine handles exactly

#: unary spine operators the tail replayer can re-evaluate over small
#: intermediate row sets
_TAIL_TYPES = (
    L.Project, L.Filter, L.Sort, L.Distinct, L.Limit, L.Aggregate, L.Audit,
)


@dataclass
class Certification:
    """Split of a plan into a lineage-certifiable core and a replayable
    tail (spine operators above the core, bottom-up)."""

    core: LogicalPlan
    tail: tuple[LogicalPlan, ...]


def certify_plan(
    plan: LogicalPlan, sensitive_table: str
) -> Certification | str:
    """Certify ``plan`` for lineage auditing, or explain why not.

    Returns a :class:`Certification` on success and a human-readable
    refusal reason (the fallback telemetry) otherwise.
    """
    from repro.audit.offline import plan_reads_table

    tail: list[LogicalPlan] = []
    node = plan
    while True:
        failure = _core_failure(node, sensitive_table)
        if failure is None:
            core = node
            break
        if isinstance(node, _TAIL_TYPES):
            if _own_subqueries_read(node, sensitive_table):
                return (
                    "a pipeline operator evaluates a subquery over the "
                    "sensitive table"
                )
            tail.append(node)
            node = node.children()[0]
            continue
        return failure
    tail.reverse()
    if any(isinstance(stage, L.Limit) for stage in tail):
        # a sensitive DISTINCT below a LIMIT leaves tie order at the cut
        # boundary underdetermined between the lineage replay and a real
        # deletion re-run — refuse rather than risk an inexact answer
        for inner in core.walk():
            if isinstance(inner, L.Distinct) and plan_reads_table(
                inner, sensitive_table
            ):
                return "DISTINCT over sensitive rows beneath a LIMIT"
    return Certification(core=core, tail=tuple(tail))


def _core_failure(node: LogicalPlan, sensitive_table: str) -> str | None:
    """Why ``node``'s subtree cannot run lineage-tagged (None = it can)."""
    from repro.audit.offline import plan_reads_table

    if not plan_reads_table(node, sensitive_table):
        return None  # fixed under deletion: wrapped as a lineage-free source
    if isinstance(node, L.Limit):
        return "LIMIT/top-k boundary over sensitive rows"
    if isinstance(node, L.Aggregate):
        return "aggregation over sensitive rows"
    if _own_subqueries_read(node, sensitive_table):
        return "a subquery inside the plan reads the sensitive table"
    if (
        isinstance(node, L.Join)
        and node.kind != L.JOIN_INNER
        and plan_reads_table(node.right, sensitive_table)
    ):
        return (
            f"{node.kind} join with the sensitive table on the inner side"
        )
    for child in node.children():
        failure = _core_failure(child, sensitive_table)
        if failure is not None:
            return failure
    return None


def _own_subqueries_read(node: LogicalPlan, sensitive_table: str) -> bool:
    """Does an expression *of this node* nest a sensitive subquery?"""
    from repro.audit.offline import (
        _plan_expressions,
        _subquery_plans,
        plan_reads_table,
    )

    for expression in _plan_expressions(node):
        for subplan in _subquery_plans(expression):
            if plan_reads_table(subplan, sensitive_table):
                return True
    return False


# ---------------------------------------------------------------------------
# per-aggregate sensitivity rules


def aggregate_sensitivity(
    spec: AggregateSpec,
    removed: list,
    survivors: list,
    baseline: object,
) -> bool | None:
    """Does removing ``removed`` contributions change this aggregate?

    Returns True (provably changes), False (provably does not), or None
    (undecided by rule — caller recomputes exactly). ``baseline`` is the
    aggregate's value over *all* contributions.
    """
    if spec.distinct:
        return None  # rule-free: exact recompute is O(|group|) anyway
    name = spec.name.lower()
    removed_nonnull = [value for value in removed if value is not None]
    if name == "count":
        # COUNT(*) feeds constant 1s, COUNT(x) ignores NULLs: the count
        # changes exactly when a non-NULL contribution disappears
        return bool(removed_nonnull)
    if not removed_nonnull:
        # SUM/MIN/MAX/AVG all ignore NULL contributions entirely
        return False
    if name == "sum":
        if not any(value is not None for value in survivors):
            return True  # last non-NULL contributions gone: SUM becomes NULL
        try:
            return sum(removed_nonnull) != 0
        except TypeError:
            return None
    if name in ("min", "max"):
        if baseline is None:
            return None
        try:
            if not any(value == baseline for value in removed_nonnull):
                return False  # the extremum itself survives untouched
            return not any(
                value == baseline
                for value in survivors
                if value is not None
            )
        except TypeError:
            return None
    return None  # AVG and anything exotic: exact recompute


# ---------------------------------------------------------------------------
# tail replay: cheap re-evaluation of spine operators over row lists

TailStage = Callable[[list, "ExecutionContext"], list]


def _tail_stage(node: LogicalPlan) -> TailStage:
    """Compile one spine operator into a row-list transformer that matches
    the physical operator's semantics (including tie order)."""
    if isinstance(node, L.Project):
        projector = compile_projector(node.expressions)
        return lambda rows, context: [
            projector(row, context) for row in rows
        ]
    if isinstance(node, L.Filter):
        predicate = compile_predicate(node.predicate)
        return lambda rows, context: [
            row for row in rows if predicate(row, context) is True
        ]
    if isinstance(node, L.Sort):
        keys = node.keys
        compiled = tuple(
            compile_expression(key.expression) for key in keys
        )

        def sort_stage(rows: list, context: "ExecutionContext") -> list:
            ordered = list(rows)
            for key, closure in zip(reversed(keys), reversed(compiled)):
                ordered.sort(
                    key=lambda row: value_sort_key(closure(row, context)),
                    reverse=not key.ascending,
                )
            return ordered

        return sort_stage
    if isinstance(node, L.Distinct):

        def distinct_stage(rows: list, context: "ExecutionContext") -> list:
            seen: set = set()
            out: list = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    out.append(row)
            return out

        return distinct_stage
    if isinstance(node, L.Limit):
        count = node.count
        return lambda rows, context: rows[:count] if count > 0 else []
    if isinstance(node, L.Audit):
        return lambda rows, context: rows  # no-op viewer
    if isinstance(node, L.Aggregate):
        return _reaggregate_stage(node)
    raise AssertionError(
        f"uncertified tail operator {type(node).__name__}"
    )  # pragma: no cover - certify_plan admits only _TAIL_TYPES


def _reaggregate_stage(node: L.Aggregate) -> TailStage:
    """Full re-aggregation stage (for aggregates above the first one —
    their input is already a small intermediate row set)."""
    group_closures = tuple(
        compile_expression(expression)
        for expression in node.group_expressions
    )
    arg_closures = tuple(
        compile_expression(spec.argument)
        if spec.argument is not None
        else None
        for spec in node.aggregates
    )
    specs = node.aggregates

    def stage(rows: list, context: "ExecutionContext") -> list:
        groups: dict[tuple, list] = {}
        for row in rows:
            key = tuple(closure(row, context) for closure in group_closures)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = [
                    make_accumulator(spec.name, spec.distinct)
                    for spec in specs
                ]
                groups[key] = accumulators
            for closure, accumulator in zip(arg_closures, accumulators):
                accumulator.add(
                    1 if closure is None else closure(row, context)
                )
        if not groups and not group_closures:
            groups[()] = [
                make_accumulator(spec.name, spec.distinct) for spec in specs
            ]
        return [
            key + tuple(acc.result() for acc in accumulators)
            for key, accumulators in groups.items()
        ]

    return stage


def _replay(
    stages: Iterable[TailStage], rows: list, context: "ExecutionContext"
) -> list:
    for stage in stages:
        rows = stage(rows, context)
    return rows


# ---------------------------------------------------------------------------
# aggregate-group analysis (the first tail stage, handled incrementally)


@dataclass
class _Group:
    """One aggregate group of the single lineage run.

    ``rows`` holds ``(ordinal, lineage, contributions)`` in arrival order;
    ``baseline`` the aggregate results over all contributions.
    """

    rows: list = field(default_factory=list)
    baseline: tuple = ()


class _AggregateAnalysis:
    """Groups the core's lineage-tagged rows once; answers per-candidate
    "does deleting t change / vanish any of its groups" incrementally."""

    def __init__(self, node: L.Aggregate) -> None:
        self._node = node
        self._specs = node.aggregates
        self._group_closures = tuple(
            compile_expression(expression)
            for expression in node.group_expressions
        )
        self._arg_closures = tuple(
            compile_expression(spec.argument)
            if spec.argument is not None
            else None
            for spec in node.aggregates
        )
        self.groups: dict[tuple, _Group] = {}
        #: candidate pk -> keys of groups with that pk in some row's lineage
        self.pk_groups: dict[tuple, set] = {}

    def consume(
        self,
        pairs: list,
        context: "ExecutionContext",
        candidate_pks: set,
    ) -> None:
        groups = self.groups
        group_closures = self._group_closures
        arg_closures = self._arg_closures
        pk_groups = self.pk_groups
        for ordinal, (row, lineage) in enumerate(pairs):
            key = tuple(
                closure(row, context) for closure in group_closures
            )
            group = groups.get(key)
            if group is None:
                group = groups[key] = _Group()
            contributions = tuple(
                1 if closure is None else closure(row, context)
                for closure in arg_closures
            )
            group.rows.append((ordinal, lineage, contributions))
            for pk in lineage:
                if pk in candidate_pks:
                    pk_groups.setdefault(pk, set()).add(key)
        for group in groups.values():
            group.baseline = self._fold(
                values for _, _, values in group.rows
            )

    def _fold(self, contribution_rows: Iterable[tuple]) -> tuple:
        accumulators = [
            make_accumulator(spec.name, spec.distinct)
            for spec in self._specs
        ]
        for values in contribution_rows:
            for accumulator, value in zip(accumulators, values):
                accumulator.add(value)
        return tuple(accumulator.result() for accumulator in accumulators)

    def baseline_rows(self) -> list:
        """Aggregate output rows in the engine's emission order."""
        rows = [
            key + group.baseline for key, group in self.groups.items()
        ]
        if not rows and not self._group_closures:
            rows = [self._fold(())]
        return rows

    def group_changed(self, key: tuple, pk: tuple) -> bool:
        """Exact per-group sensitivity: rules first, recompute fallback."""
        group = self.groups[key]
        survivors: list[tuple] = []
        removed: list[tuple] = []
        for _ordinal, lineage, values in group.rows:
            (removed if pk in lineage else survivors).append(values)
        if not survivors and self._group_closures:
            return True  # the group (and its output row) vanishes
        for position, spec in enumerate(self._specs):
            removed_column = [values[position] for values in removed]
            survivor_column = [values[position] for values in survivors]
            verdict = aggregate_sensitivity(
                spec,
                removed_column,
                survivor_column,
                group.baseline[position],
            )
            if verdict is None:
                accumulator = make_accumulator(spec.name, spec.distinct)
                for value in survivor_column:
                    accumulator.add(value)
                verdict = accumulator.result() != group.baseline[position]
            if verdict:
                return True
        return False

    def rebuilt_rows(self, pk: tuple) -> list:
        """Aggregate output under deletion of ``pk``, in the order the
        engine would emit it (groups ordered by first *surviving* row)."""
        affected = self.pk_groups.get(pk, ())
        entries: list[tuple[int, tuple]] = []
        for key, group in self.groups.items():
            if key in affected:
                surviving = [
                    (ordinal, values)
                    for ordinal, lineage, values in group.rows
                    if pk not in lineage
                ]
                if not surviving:
                    if self._group_closures:
                        continue  # group vanished
                    entries.append((0, key + self._fold(())))
                    continue
                results = self._fold(values for _, values in surviving)
                entries.append((surviving[0][0], key + results))
            else:
                entries.append((group.rows[0][0], key + group.baseline))
        if not entries and not self._group_closures:
            return [self._fold(())]
        entries.sort(key=lambda entry: entry[0])
        return [row for _, row in entries]


# ---------------------------------------------------------------------------
# the auditor


@dataclass
class LineageOutcome:
    """Result of one lineage analysis over a candidate tuple set."""

    #: partition-by IDs proven accessed
    accessed: set = field(default_factory=set)
    #: id -> primary keys the analysis could not decide (deletion fallback)
    undecided: dict = field(default_factory=dict)
    #: rows produced (and tagged) by the single core execution
    tagged_rows: int = 0
    #: candidate tuples classified without any deletion run
    decided_tuples: int = 0
    #: 'spj' | 'aggregate' | 'replay' — which classification path ran
    strategy: str = "spj"


class LineageAuditor:
    """One-pass lineage analysis for the offline auditor's fast path."""

    def __init__(self, database: "Database") -> None:
        self._database = database
        #: why the last plan was refused (None = certified)
        self.last_refusal: str | None = None

    # ------------------------------------------------------------------

    def analyze(
        self,
        plan: LogicalPlan,
        expression: "AuditExpression",
        parameters: dict[str, object] | None,
        tuples_by_id: dict[object, list[tuple]],
    ) -> LineageOutcome | None:
        """Classify every candidate tuple, or None if uncertifiable.

        ``tuples_by_id`` maps candidate partition-by IDs to the primary
        keys of their sensitive-table tuples (the same granularity the
        deletion tester uses).
        """
        table_name = expression.sensitive_table
        certification = certify_plan(plan, table_name)
        if isinstance(certification, str):
            self.last_refusal = certification
            return None
        self.last_refusal = None

        physical = self._compile_core(certification.core, table_name)
        context = self._database.make_context(parameters)
        context.lineage_table = table_name
        # Classification only ever looks up candidate primary keys, so
        # scans may consult block sketches and tag rows of blocks that
        # provably hold no candidate ID with empty lineage — skipping the
        # per-row pk-set construction without changing any verdict.
        context.lineage_candidates = set(tuples_by_id)
        try:
            context.lineage_id_position = self._database.catalog.table(
                table_name
            ).schema.position_of(expression.partition_by)
        except Exception:
            context.lineage_id_position = None
        pairs = list(physical.rows_lineage(context))

        pk_to_id: dict[tuple, object] = {}
        for id_value, pk_list in tuples_by_id.items():
            for pk in pk_list:
                pk_to_id[pk] = id_value

        outcome = LineageOutcome(tagged_rows=len(pairs))
        if not certification.tail:
            self._classify_spj(pairs, pk_to_id, tuples_by_id, outcome)
        elif isinstance(certification.tail[0], L.Aggregate):
            self._classify_aggregate(
                certification.tail, pairs, context, pk_to_id,
                tuples_by_id, outcome,
            )
        else:
            self._classify_replay(
                certification.tail, pairs, context, pk_to_id,
                tuples_by_id, outcome,
            )
        total = sum(len(pks) for pks in tuples_by_id.values())
        outcome.decided_tuples = total - sum(
            len(pks) for pks in outcome.undecided.values()
        )
        return outcome

    # ------------------------------------------------------------------
    # classification strategies

    def _classify_spj(
        self,
        pairs: list,
        pk_to_id: dict,
        tuples_by_id: dict,
        outcome: LineageOutcome,
    ) -> None:
        """Bag-semantics SPJ: accessed ⇔ the tuple is in some output
        row's lineage. One set union decides every candidate."""
        outcome.strategy = "spj"
        accessed = outcome.accessed
        for _row, lineage in pairs:
            for pk in lineage:
                id_value = pk_to_id.get(pk)
                if id_value is not None:
                    accessed.add(id_value)

    def _classify_aggregate(
        self,
        tail: tuple[LogicalPlan, ...],
        pairs: list,
        context: "ExecutionContext",
        pk_to_id: dict,
        tuples_by_id: dict,
        outcome: LineageOutcome,
    ) -> None:
        """Aggregate spine: group once, then per candidate re-derive only
        the affected groups (and replay the cheap tail when it can remap
        changed group rows onto unchanged final output)."""
        outcome.strategy = "aggregate"
        analysis = _AggregateAnalysis(tail[0])  # type: ignore[arg-type]
        analysis.consume(pairs, context, set(pk_to_id))
        rest_nodes = tail[1:]
        # Sort and Audit neither drop, merge, nor rewrite rows, and the
        # final comparison is a bag comparison: group rows (which embed
        # their distinct group keys) change iff the output changes
        bag_neutral = all(
            isinstance(node, (L.Sort, L.Audit)) for node in rest_nodes
        )
        rest = [_tail_stage(node) for node in rest_nodes]
        baseline_final: Counter | None = None
        if not bag_neutral:
            baseline_final = Counter(
                _replay(rest, analysis.baseline_rows(), context)
            )
        accessed = outcome.accessed
        for id_value, pk_list in tuples_by_id.items():
            for pk in pk_list:
                if id_value in accessed:
                    break
                affected = analysis.pk_groups.get(pk)
                if not affected:
                    continue  # no group touches this tuple: unaccessed
                try:
                    if bag_neutral:
                        changed = any(
                            analysis.group_changed(key, pk)
                            for key in affected
                        )
                    else:
                        rebuilt = analysis.rebuilt_rows(pk)
                        changed = (
                            Counter(_replay(rest, rebuilt, context))
                            != baseline_final
                        )
                except Exception:
                    outcome.undecided.setdefault(id_value, []).append(pk)
                    continue
                if changed:
                    accessed.add(id_value)

    def _classify_replay(
        self,
        tail: tuple[LogicalPlan, ...],
        pairs: list,
        context: "ExecutionContext",
        pk_to_id: dict,
        tuples_by_id: dict,
        outcome: LineageOutcome,
    ) -> None:
        """Generic spine (e.g. top-k over SPJ rows): replay the tail over
        the surviving core rows per relevant candidate — still one base
        execution, with per-candidate work linear in the core output."""
        outcome.strategy = "replay"
        stages = [_tail_stage(node) for node in tail]
        base_rows = [row for row, _lineage in pairs]
        baseline_final = Counter(_replay(stages, base_rows, context))
        relevant: set = set()
        for _row, lineage in pairs:
            for pk in lineage:
                if pk in pk_to_id:
                    relevant.add(pk)
        accessed = outcome.accessed
        for id_value, pk_list in tuples_by_id.items():
            for pk in pk_list:
                if id_value in accessed:
                    break
                if pk not in relevant:
                    continue
                try:
                    survivors = [
                        row for row, lineage in pairs if pk not in lineage
                    ]
                    changed = (
                        Counter(_replay(stages, survivors, context))
                        != baseline_final
                    )
                except Exception:
                    outcome.undecided.setdefault(id_value, []).append(pk)
                    continue
                if changed:
                    accessed.add(id_value)

    # ------------------------------------------------------------------

    def _compile_core(
        self, core: LogicalPlan, table_name: str
    ) -> "PhysicalOperator":
        """Compile the core, wrapping topmost sensitive-free subtrees so
        arbitrary operators below them run in plain batch mode."""
        from repro.audit.offline import _collect_topmost_insensitive
        from repro.exec.operators import LineageFreeOperator
        from repro.optimizer.physical import PhysicalPlanner

        database = self._database
        free: set[int] = set()
        _collect_topmost_insensitive(core, table_name, free)

        def wrapper(node: LogicalPlan, operator):
            if id(node) in free:
                return LineageFreeOperator(operator)
            return operator

        planner = PhysicalPlanner(
            database.catalog,
            database.audit_manager.resolve_view,
            node_wrapper=wrapper,
        )
        planner.join_strategy = database.join_strategy
        return planner.compile(core)
