"""The paper's core contribution: SELECT-trigger auditing machinery.

* :mod:`repro.audit.expression` — audit expressions (§II-A);
* :mod:`repro.audit.idview` — materialized sensitive-ID views (§IV-A.1);
* :mod:`repro.audit.placement` — leaf-node / highest-node /
  highest-commutative-node placement (§III-C, Algorithm 1);
* :mod:`repro.audit.manager` — ties expressions, views, placement, and
  SELECT triggers into the engine;
* :mod:`repro.audit.offline` — deletion-based offline auditor
  (Definition 2.3/2.5) with cross-run subplan caching and a parallel
  fallback pool;
* :mod:`repro.audit.lineage` — one-pass lineage-based classification,
  the offline auditor's fast path;
* :mod:`repro.audit.static_analysis` — Oracle-FGA-style baseline (§VI).
"""

from repro.audit.expression import AuditExpression
from repro.audit.idview import IdView
from repro.audit.placement import (
    HEURISTIC_HCN,
    HEURISTIC_HIGHEST,
    HEURISTIC_LEAF,
    instrument_plan,
)
from repro.audit.manager import AuditManager
from repro.audit.lineage import LineageAuditor
from repro.audit.offline import OfflineAuditor
from repro.audit.static_analysis import StaticAnalysisAuditor
from repro.audit.logging import AuditLog, install_audit_log
from repro.audit.bloom import CountingBloomFilter

__all__ = [
    "AuditExpression",
    "IdView",
    "HEURISTIC_HCN",
    "HEURISTIC_HIGHEST",
    "HEURISTIC_LEAF",
    "instrument_plan",
    "AuditManager",
    "LineageAuditor",
    "OfflineAuditor",
    "StaticAnalysisAuditor",
    "AuditLog",
    "install_audit_log",
    "CountingBloomFilter",
]
