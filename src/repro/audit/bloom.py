"""Counting Bloom filter for sensitive-ID probing (§IV-A.2).

The paper assumes the sensitive IDs fit in memory and notes that
"standard optimizations such as bloom filters can be used instead" when
they do not. A Bloom probe keeps the audit framework's one-sided
guarantee: it can yield extra false *positives* (acceptable — the offline
auditor verifies) but never false *negatives* (a member always probes
true).

We use a *counting* filter (one small counter per cell instead of one
bit) so the materialized view's incremental maintenance can delete IDs.
Counters saturate at 255; a saturated cell is never decremented, which
keeps deletions conservative (no false negatives, possibly more false
positives) — the correct direction for auditing.
"""

from __future__ import annotations

import math


class CountingBloomFilter:
    """A counting Bloom filter over hashable values."""

    def __init__(
        self,
        expected_items: int,
        false_positive_rate: float = 0.01,
    ) -> None:
        if expected_items < 1:
            expected_items = 1
        if not 0.0 < false_positive_rate < 1.0:
            raise ValueError("false_positive_rate must be in (0, 1)")
        ln2 = math.log(2.0)
        size = int(
            -expected_items * math.log(false_positive_rate) / (ln2 * ln2)
        )
        self._size = max(size, 8)
        self._hash_count = max(
            1, round((self._size / expected_items) * ln2)
        )
        self._cells = bytearray(self._size)
        self._items = 0

    # ------------------------------------------------------------------

    def _positions(self, value: object):
        # double hashing: h1 + i*h2 simulates k independent hash functions.
        # Python's hash() is the identity on small ints, so run it through
        # a murmur3-style finalizer for dispersion before splitting.
        mixed = hash(value) & 0xFFFFFFFFFFFFFFFF
        mixed ^= mixed >> 33
        mixed = (mixed * 0xFF51AFD7ED558CCD) & 0xFFFFFFFFFFFFFFFF
        mixed ^= mixed >> 33
        mixed = (mixed * 0xC4CEB9FE1A85EC53) & 0xFFFFFFFFFFFFFFFF
        mixed ^= mixed >> 33
        h1 = mixed & 0xFFFFFFFF
        h2 = (mixed >> 32) | 1  # odd: full cycle over the table
        size = self._size
        for index in range(self._hash_count):
            yield (h1 + index * h2) % size

    def add(self, value: object) -> None:
        for position in self._positions(value):
            if self._cells[position] < 255:
                self._cells[position] += 1
        self._items += 1

    def discard(self, value: object) -> None:
        """Remove one previously-added occurrence.

        Contract (standard for counting Bloom filters): callers may only
        discard values they added — removing a never-added value can
        corrupt shared counters and break the no-false-negative guarantee.
        ``IdView`` honors this by checking its exact ID set first.
        Saturated counters stay put (conservative: extra false positives,
        never false negatives).
        """
        positions = list(self._positions(value))
        if any(self._cells[position] == 0 for position in positions):
            return  # definitely absent: nothing to remove
        for position in positions:
            if 0 < self._cells[position] < 255:
                self._cells[position] -= 1
        self._items = max(0, self._items - 1)

    def __contains__(self, value: object) -> bool:
        return all(
            self._cells[position] != 0 for position in self._positions(value)
        )

    def __len__(self) -> int:
        """Approximate item count (insertions minus removals)."""
        return self._items

    @property
    def size_bytes(self) -> int:
        return self._size

    def clear(self) -> None:
        self._cells = bytearray(self._size)
        self._items = 0
