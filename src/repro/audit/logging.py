"""Turn-key audit logging (the §II-C pattern, packaged).

Every §II-C example follows the same shape: a log table keyed by time,
user, SQL text, and partition-by ID, plus a SELECT trigger inserting into
it from ACCESSED. :func:`install_audit_log` creates both in one call;
:class:`AuditLog` wraps the common queries a security admin runs over it
(per-user counts, per-individual disclosure lists — the HIPAA question).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import (
    AuditError,
    AuditTrailIncompleteError,
    AuditTrailWarning,
)

if TYPE_CHECKING:  # pragma: no cover - cycle guard
    from repro.database import Database, QueryResult


@dataclass(frozen=True)
class AuditLog:
    """Handle over an installed audit log."""

    database: "Database"
    table_name: str
    expression_name: str
    id_column: str

    def _drain_checked(self) -> None:
        """Drain the pipeline, then refuse to present a damaged trail
        as complete.

        Failed or dead-lettered trigger batches and recorded journal
        gaps mean the log may be missing disclosures. Under
        ``audit_policy='fail_closed'`` reading it raises
        :class:`AuditTrailIncompleteError`; under ``'fail_open'`` it
        warns (:class:`AuditTrailWarning`) and serves what is there.
        ``Database.acknowledge_audit_failures()`` clears the condition
        once the admin has reconciled (e.g. via ``Database.recover`` or
        a dead-letter replay).
        """
        self.database.drain_triggers()
        health = self.database.audit_trail_health()
        problems = {key: count for key, count in health.items() if count}
        if not problems:
            return
        message = (
            f"audit trail of {self.table_name!r} may be incomplete: "
            + ", ".join(f"{key}={count}" for key, count in
                        sorted(problems.items()))
        )
        if self.database.audit_policy == "fail_closed":
            raise AuditTrailIncompleteError(message)
        warnings.warn(message, AuditTrailWarning, stacklevel=3)

    def entries(self) -> "QueryResult":
        """All log entries, oldest first.

        Reader methods first drain the async trigger pipeline, so in
        ``trigger_mode='async'`` the admin always sees the complete
        trail up to the queries already executed — never a prefix — and
        then verify the trail is undamaged (see :meth:`_drain_checked`).
        """
        self._drain_checked()
        return self.database.execute(
            f"SELECT ts, uid, query, {self.id_column} "
            f"FROM {self.table_name} ORDER BY ts"
        )

    def disclosures_of(self, individual_id: object) -> "QueryResult":
        """Who saw this individual's data, and with which queries.

        This is the HIPAA accounting-of-disclosures primitive
        (Example 1.1): candidate accesses recorded online; pass them to
        :class:`repro.audit.offline.OfflineAuditor` for verification.
        """
        self._drain_checked()
        return self.database.execute(
            f"SELECT DISTINCT uid, query FROM {self.table_name} "
            f"WHERE {self.id_column} = :individual",
            {"individual": individual_id},
        )

    def access_counts_by_user(self) -> "QueryResult":
        """Distinct sensitive individuals each user has touched."""
        self._drain_checked()
        return self.database.execute(
            f"SELECT uid, COUNT(DISTINCT {self.id_column}) AS individuals "
            f"FROM {self.table_name} GROUP BY uid "
            "ORDER BY individuals DESC, uid"
        )

    def clear(self) -> None:
        self.database.drain_triggers()
        self.database.execute(f"DELETE FROM {self.table_name}")


def install_audit_log(
    database: "Database",
    expression_name: str,
    table_name: str = "audit_log",
    trigger_name: str | None = None,
) -> AuditLog:
    """Create the standard log table and logging trigger for an expression.

    The log schema is the paper's (§II-C): ``(ts, uid, query, <id>)`` with
    ``<id>`` named after the audit expression's partition-by column. Safe
    to call for several expressions over the same sensitive table — they
    share the table; expressions with *different* partition-by columns
    need distinct ``table_name``s.
    """
    manager = database.audit_manager
    expression = manager.expression(expression_name)  # validates existence
    sensitive = database.catalog.table(expression.sensitive_table)
    id_column = expression.partition_by
    id_type = sensitive.schema.column(id_column).data_type.name

    if database.catalog.has_table(table_name):
        existing = database.catalog.table(table_name)
        if not existing.schema.has_column(id_column):
            raise AuditError(
                f"table {table_name!r} exists but has no column "
                f"{id_column!r}; choose a different table_name"
            )
    else:
        database.execute(
            f"CREATE TABLE {table_name} (ts VARCHAR, uid VARCHAR, "
            f"query VARCHAR, {id_column} {id_type})"
        )

    trigger = trigger_name or f"log_{expression_name}_{table_name}"
    database.execute(
        f"CREATE TRIGGER {trigger} ON ACCESS TO {expression_name} AS "
        f"INSERT INTO {table_name} "
        f"SELECT cast_varchar(now()), user_id(), sql_text(), {id_column} "
        "FROM accessed"
    )
    return AuditLog(database, table_name, expression_name, id_column)
